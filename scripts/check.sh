#!/usr/bin/env sh
# Full local gate: build, test, lint, format. Run from the repo root.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace --all-targets

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo clippy"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> ripki-lint"
cargo run -q -p ripki-lint -- check

echo "==> cargo fmt --check"
cargo fmt --check

echo "All checks passed."
