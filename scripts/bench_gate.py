#!/usr/bin/env python3
"""Bench regression gate.

Compares freshly written bench JSON files (results/BENCH_*.json) against
the checked-in baselines, and fails if any throughput metric regressed
by more than the allowed ratio (default: fresh must reach >= 70% of
baseline throughput, i.e. a >30% regression fails).

The benches overwrite their own baselines in results/, so CI must copy
the checked-in files aside BEFORE running the benches and point
--baseline-dir at the copy:

    mkdir -p /tmp/bench-baselines
    cp results/BENCH_incremental.json /tmp/bench-baselines/
    cargo bench -p ripki-bench --bench engine_incremental
    python3 scripts/bench_gate.py --baseline-dir /tmp/bench-baselines \
        results/BENCH_incremental.json

A missing baseline file is a configuration error, not a skip: the gate
exits 2 naming the file, unless --allow-missing-baseline is passed for
an explicit bootstrap run.

Each bench declares its metrics below. "higher" metrics are throughput
numbers compared directly; "lower" metrics are per-unit latencies whose
reciprocal is the throughput. Absolute floors (FLOORS) and ceilings
(CEILINGS) encode acceptance criteria that must hold regardless of the
baseline, e.g. the incremental validator's >= 10x speedup over a full
validation pass, or the serve load harness's p99 latency bound.

A bench JSON may carry a "scaling" section (per-thread-count timings
from the parallel execute stage, plus the host's cpu count). Scaling
rows are printed for the record but never gated: the gated metrics stay
the single-threaded top-level numbers, so the gate is comparable across
hosts with different core budgets.
"""

import argparse
import json
import os
import sys

# bench name (the "bench" key in the JSON) -> [(metric, sense)]
METRICS = {
    "engine_incremental": [("incremental_ms_per_epoch", "lower")],
    "engine_validate": [("incremental_ms_per_epoch", "lower")],
    "engine_proxy": [("delta_propagation_ms", "lower")],
    "engine_whatif": [("incremental_counterfactual_ms", "lower")],
    "serve_throughput": [
        ("validity_req_per_s", "higher"),
        ("vrps_json_req_per_s", "higher"),
    ],
    "serve_load": [("req_per_s", "higher")],
    "lint_workspace": [("wall_ms", "lower")],
}

# bench name -> [(metric, minimum value)]
FLOORS = {
    "engine_incremental": [("speedup", 10.0)],
    "engine_validate": [("speedup", 10.0)],
    "engine_proxy": [("speedup", 10.0)],
    # A counterfactual rides one incremental churn epoch instead of a
    # full engine rebuild + re-run; 5x is a deliberately loose floor
    # (observed gaps are far larger at bench scale).
    "engine_whatif": [("speedup", 5.0)],
    # The event-loop acceptance bar (PR 9): at least 10k concurrent
    # keep-alive sessions, every one of them visible to the server
    # (open_connections gauge), and sustained throughput no worse than
    # the retired per-connection-thread implementation's baseline.
    "serve_load": [
        ("concurrent_sessions", 10_000),
        ("server_open_connections", 10_000),
        ("throughput_vs_threadpool", 1.0),
    ],
    # The linter must actually be scanning the workspace: a refactor
    # that silently drops source directories from collection would
    # otherwise read as a (fast, clean) pass.
    "lint_workspace": [("files_scanned", 100)],
}

# bench name -> [(metric, maximum value)]. Absolute latency ceilings —
# the load harness reports the server-side p99 interpolated from the
# /metrics histogram; an event loop that holds 10k sockets by making
# every request wait would pass the throughput floor and fail here.
CEILINGS = {
    "serve_load": [("p99_seconds", 0.25)],
    # The exact analysis (lex + parse + call graph + reachability) must
    # stay cheap enough to sit in scripts/check.sh on every run: ~60 ms
    # release on the 107-file workspace today, 2 s is the absolute
    # budget before the tool stops being a pre-commit check.
    "lint_workspace": [("wall_ms", 2000.0)],
}


def load(path):
    with open(path) as f:
        data = json.load(f)
    bench = data.get("bench")
    if bench not in METRICS:
        sys.exit(f"{path}: unknown bench {bench!r} (known: {sorted(METRICS)})")
    return bench, data


def throughput(value, sense):
    if sense == "lower":
        return 1.0 / value if value > 0 else float("inf")
    return value


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "fresh",
        nargs="+",
        help="freshly written bench JSON files (results/BENCH_*.json)",
    )
    parser.add_argument(
        "--baseline-dir",
        required=True,
        help="directory holding the pre-bench copies of the baselines",
    )
    parser.add_argument(
        "--min-ratio",
        type=float,
        default=0.70,
        help="minimum fresh/baseline throughput ratio (default %(default)s)",
    )
    parser.add_argument(
        "--allow-missing-baseline",
        action="store_true",
        help="tolerate a missing baseline file (bootstrap runs only); "
        "without this flag a missing baseline exits 2",
    )
    args = parser.parse_args()

    failures = []
    for fresh_path in args.fresh:
        bench, fresh = load(fresh_path)
        baseline_path = os.path.join(
            args.baseline_dir, os.path.basename(fresh_path)
        )
        if not os.path.exists(baseline_path):
            # A silently skipped ratio check looks exactly like a pass,
            # so a missing baseline is a loud configuration error: CI
            # forgot to copy the checked-in file aside, or the baseline
            # was never committed. Bootstrap runs opt out explicitly.
            if not args.allow_missing_baseline:
                print(
                    f"bench gate: missing baseline {baseline_path} for "
                    f"{fresh_path} (copy the checked-in results/ file into "
                    "the baseline dir, or pass --allow-missing-baseline "
                    "for a bootstrap run)",
                    file=sys.stderr,
                )
                sys.exit(2)
            print(f"{fresh_path}: no baseline at {baseline_path}, skipping "
                  "ratio check (--allow-missing-baseline)")
            baseline = None
        else:
            baseline_bench, baseline = load(baseline_path)
            if baseline_bench != bench:
                sys.exit(
                    f"{baseline_path}: baseline is for bench "
                    f"{baseline_bench!r}, fresh file is {bench!r}"
                )

        for metric, sense in METRICS[bench]:
            if baseline is None or metric not in baseline:
                continue
            if metric not in fresh:
                failures.append(f"{bench}: fresh run is missing {metric!r}")
                continue
            base_tp = throughput(baseline[metric], sense)
            fresh_tp = throughput(fresh[metric], sense)
            ratio = fresh_tp / base_tp if base_tp > 0 else float("inf")
            verdict = "ok" if ratio >= args.min_ratio else "REGRESSED"
            print(
                f"{bench}/{metric}: baseline {baseline[metric]:.4g}, "
                f"fresh {fresh[metric]:.4g}, throughput ratio {ratio:.3f} "
                f"({verdict})"
            )
            if ratio < args.min_ratio:
                failures.append(
                    f"{bench}/{metric}: throughput ratio {ratio:.3f} "
                    f"< {args.min_ratio} (>{100 * (1 - args.min_ratio):.0f}% "
                    "regression)"
                )

        for metric, floor in FLOORS.get(bench, []):
            value = fresh.get(metric)
            if value is None:
                failures.append(f"{bench}: fresh run is missing {metric!r}")
                continue
            verdict = "ok" if value >= floor else "BELOW FLOOR"
            print(f"{bench}/{metric}: {value:.4g} (floor {floor}, {verdict})")
            if value < floor:
                failures.append(f"{bench}/{metric}: {value:.4g} < floor {floor}")

        for metric, ceiling in CEILINGS.get(bench, []):
            value = fresh.get(metric)
            if value is None:
                failures.append(f"{bench}: fresh run is missing {metric!r}")
                continue
            verdict = "ok" if value <= ceiling else "ABOVE CEILING"
            print(
                f"{bench}/{metric}: {value:.4g} (ceiling {ceiling}, {verdict})"
            )
            if value > ceiling:
                failures.append(
                    f"{bench}/{metric}: {value:.4g} > ceiling {ceiling}"
                )

        scaling = fresh.get("scaling")
        if isinstance(scaling, dict):
            print(f"{bench}/scaling (informational, not gated): "
                  f"host cpus {scaling.get('cpus')}")
            for row in scaling.get("threads", []):
                cells = ", ".join(
                    f"{k} {v:.4g}" if isinstance(v, float) else f"{k} {v}"
                    for k, v in row.items()
                )
                print(f"  {cells}")

    if failures:
        print("\nbench gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        sys.exit(1)
    print("\nbench gate passed")


if __name__ == "__main__":
    main()
