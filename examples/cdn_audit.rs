//! §4.2 reproduced: keyword-spot the AS assignment lists for the sixteen
//! CDNs, join against validated ROAs, and print who actually deployed.
//!
//! ```sh
//! cargo run --release --example cdn_audit
//! ```

use ripki_repro::ripki::cdn_audit::{audit_cdns, summarize};
use ripki_repro::ripki_rpki::validate;
use ripki_repro::ripki_websim::operators::CDN_SPECS;
use ripki_repro::ripki_websim::{Scenario, ScenarioConfig};

fn main() {
    println!("building ecosystem…");
    let scenario = Scenario::build(ScenarioConfig::with_domains(20_000));

    println!("validating the five RIR repositories…");
    let report = validate(&scenario.repository, scenario.now);
    println!(
        "  {} objects accepted, {} rejected, {} VRPs\n",
        report.accepted_count(),
        report.rejected_count(),
        report.vrps.len()
    );

    let names: Vec<&str> = CDN_SPECS.iter().map(|(n, _, _)| *n).collect();
    let rows = audit_cdns(&scenario.registry, &report.vrps, &names);
    println!("== CDN audit (keyword spotting on AS assignment lists) ==");
    for row in &rows {
        println!("  {row}");
        for p in &row.rpki_prefixes {
            println!("      RPKI entry: {p}");
        }
    }

    let summary = summarize(&rows, &scenario.registry, &report.vrps);
    println!("\n== summary ==");
    println!("  CDN ASes discovered:      {}", summary.total_cdn_asns);
    println!("  CDN RPKI entries:         {}", summary.total_rpki_entries);
    println!(
        "  CDNs with any deployment: {:?}",
        summary.cdns_with_deployment
    );
    println!(
        "  ISP penetration:          {:.1}%",
        summary.isp_penetration * 100.0
    );
    println!(
        "  webhoster penetration:    {:.1}%",
        summary.webhoster_penetration * 100.0
    );
    println!("\nthe paper's observation holds: \"One might mistakenly think that");
    println!("Internap has engaged widely with RPKI. However, Internap operates at");
    println!("least 41 ASes, the bulk of which are not secured via RPKI.\"");
}
