//! §5.2's business-policy conflict made runnable: "imagine that two large
//! CDNs serve secretly as backups for each other."
//!
//! Two content networks authorize each other's ASes in their ROAs so they
//! can fail over via BGP without waiting for DNS. The backup never
//! activates. A BGP route collector — the *reactive* channel — never
//! learns the relation; the RPKI — a *proactive* catalog — exposes it the
//! day the ROA is published.
//!
//! ```sh
//! cargo run --release --example roa_privacy
//! ```

use ripki_repro::ripki_bgp::collector::Collector;
use ripki_repro::ripki_bgp::propagate::{accept_all, propagate};
use ripki_repro::ripki_bgp::topology::Topology;
use ripki_repro::ripki_net::{Asn, IpPrefix};
use ripki_repro::ripki_rpki::privacy::exposure;
use ripki_repro::ripki_rpki::repo::RepositoryBuilder;
use ripki_repro::ripki_rpki::resources::Resources;
use ripki_repro::ripki_rpki::roa::RoaPrefix;
use ripki_repro::ripki_rpki::time::{Duration, SimTime};
use ripki_repro::ripki_rpki::validate;

fn main() {
    let now = SimTime::EPOCH + Duration::days(1);
    let cdn_a = Asn::new(64_701);
    let cdn_b = Asn::new(64_702);
    let prefix_a: IpPrefix = "31.10.0.0/16".parse().unwrap();
    let prefix_b: IpPrefix = "31.20.0.0/16".parse().unwrap();

    // Both CDNs publish ROAs for their prefixes — authorizing BOTH ASes,
    // so either can originate the other's space in an emergency.
    let mut b = RepositoryBuilder::new(9, SimTime::EPOCH);
    let ta = b.add_trust_anchor(
        "RIPE",
        Resources::from_prefixes(vec!["31.0.0.0/8".parse().unwrap()]),
    );
    let ca_a = b
        .add_ca(ta, "cdn-a", Resources::from_prefixes(vec![prefix_a]))
        .unwrap();
    let ca_b = b
        .add_ca(ta, "cdn-b", Resources::from_prefixes(vec![prefix_b]))
        .unwrap();
    b.add_roa(ca_a, cdn_a, vec![RoaPrefix::exact(prefix_a)])
        .unwrap();
    b.add_roa(ca_a, cdn_b, vec![RoaPrefix::exact(prefix_a)])
        .unwrap(); // the secret backup
    b.add_roa(ca_b, cdn_b, vec![RoaPrefix::exact(prefix_b)])
        .unwrap();
    b.add_roa(ca_b, cdn_a, vec![RoaPrefix::exact(prefix_b)])
        .unwrap(); // and vice versa
    let repo = b.finalize();
    let report = validate(&repo, now);
    println!("RPKI catalog ({} VRPs):", report.vrps.len());
    for vrp in &report.vrps {
        println!("  {vrp}");
    }

    // Normal operation: each CDN announces only its own prefix.
    let mut topology = Topology::generate(77, 4, 20, 100, 0.1);
    topology.add_customer_provider(cdn_a, Asn::new(1000));
    topology.add_customer_provider(cdn_b, Asn::new(1001));
    // Vantages at two tier-1s of the generated topology (ASNs 10, 11).
    let mut collector = Collector::new([Asn::new(10), Asn::new(11)]);
    collector.observe(prefix_a, &propagate(&topology, &[cdn_a], &accept_all));
    collector.observe(prefix_b, &propagate(&topology, &[cdn_b], &accept_all));
    println!("\nBGP collector view ({collector}):");
    for (p, o) in collector.observations() {
        println!("  {p} originated by {o}");
    }

    // Join the two views.
    let exposure_report = exposure(&report.vrps, collector.observations());
    println!("\nexposure analysis (paper §5.2):");
    println!(
        "  operational relations (visible in BGP anyway): {}",
        exposure_report.operational.len()
    );
    println!(
        "  LATENT relations (only the RPKI reveals them): {}",
        exposure_report.latent.len()
    );
    for auth in &exposure_report.latent {
        println!(
            "    {} may originate {} — never announced",
            auth.asn, auth.prefix
        );
    }
    println!(
        "  latent fraction: {:.0}%",
        exposure_report.latent_fraction() * 100.0
    );
    println!("\n\"As soon as at least one ROA for an IP prefix exists, all valid");
    println!("origin ASes for this IP prefix need to be assigned in the RPKI\" —");
    println!("and the backup arrangement is public before it is ever used.");
}
