//! Browse a generated RPKI repository like an RPKI monitor (cf. the
//! paper's reference to RPKI MIRO): trust anchors, publication points,
//! manifests, CRLs, ROAs — then break something and watch validation
//! reject it.
//!
//! ```sh
//! cargo run --release --example repo_inspect
//! ```

use ripki_repro::ripki_net::{Asn, IpPrefix};
use ripki_repro::ripki_rpki::faults;
use ripki_repro::ripki_rpki::repo::RepositoryBuilder;
use ripki_repro::ripki_rpki::resources::Resources;
use ripki_repro::ripki_rpki::roa::RoaPrefix;
use ripki_repro::ripki_rpki::time::{Duration, SimTime};
use ripki_repro::ripki_rpki::validate;

fn p(s: &str) -> IpPrefix {
    s.parse().unwrap()
}

fn main() {
    let now = SimTime::EPOCH + Duration::days(1);
    let mut b = RepositoryBuilder::new(1234, SimTime::EPOCH);
    let ripe = b.add_trust_anchor(
        "RIPE",
        Resources::from_prefixes(vec![p("77.0.0.0/8"), p("2a00::/12")]),
    );
    let isp = b
        .add_ca(
            ripe,
            "MegaNet",
            Resources::from_prefixes(vec![p("77.10.0.0/15")]),
        )
        .unwrap();
    let hoster = b
        .add_ca(
            ripe,
            "TinyHost",
            Resources::from_prefixes(vec![p("77.200.0.0/16")]),
        )
        .unwrap();
    b.add_roa(
        isp,
        Asn::new(64_800),
        vec![RoaPrefix::up_to(p("77.10.0.0/16"), 20)],
    )
    .unwrap();
    b.add_roa(
        isp,
        Asn::new(64_800),
        vec![RoaPrefix::exact(p("77.11.0.0/16"))],
    )
    .unwrap();
    b.add_roa(
        hoster,
        Asn::new(64_900),
        vec![RoaPrefix::exact(p("77.200.0.0/16"))],
    )
    .unwrap();
    let mut repo = b.finalize();

    println!("== repository tree ==");
    println!("{repo}\n");
    for ta in &repo.trust_anchors {
        println!("{ta}");
    }
    for key_id in faults::publication_points(&repo) {
        let pp = &repo.points[&key_id];
        println!("\npublication point {key_id}:");
        println!("  {}", pp.manifest);
        println!("  {}", pp.crl);
        for cert in &pp.child_certs {
            println!("  child: {cert}");
        }
        for roa in &pp.roas {
            println!("  {} (digest {})", roa, roa.digest().short());
        }
    }

    println!("\n== validation (healthy repository) ==");
    let report = validate(&repo, now);
    println!(
        "accepted {} / rejected {}",
        report.accepted_count(),
        report.rejected_count()
    );
    for vrp in &report.vrps {
        println!("  VRP {vrp}");
    }

    // Now sabotage MegaNet's publication point.
    println!("\n== fault injection: withholding one of MegaNet's ROAs ==");
    let meganet = ripki_repro::ripki_crypto::keystore::Keypair::derive(1234, "ca/MegaNet").key_id;
    faults::withhold_roa(&mut repo, meganet, 0);
    let report = validate(&repo, now);
    println!(
        "accepted {} / rejected {} — VRPs now: {}",
        report.accepted_count(),
        report.rejected_count(),
        report.vrps.len()
    );
    for event in report.rejections() {
        println!(
            "  rejected: {} — {}",
            event.object,
            event.rejected.as_ref().unwrap()
        );
    }
    println!("\nthe manifest made the withheld object detectable, and the");
    println!("whole publication point is discarded under strict validation —");
    println!("TinyHost's ROA survives unaffected.");
}
