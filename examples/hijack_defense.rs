//! The paper's attacker model (§2.3) made runnable: hijack a website's
//! prefix on a realistic AS topology and watch what ROAs + route origin
//! validation change.
//!
//! Three acts:
//!   1. origin hijack, no RPKI anywhere — the attacker splits the world;
//!   2. subprefix hijack, no RPKI — the attacker takes *everything*
//!      ("TLS does not necessarily protect against such an attack");
//!   3. the same attacks against a ROA'd prefix under increasing ROV
//!      deployment — the capture rate collapses.
//!
//! ```sh
//! cargo run --release --example hijack_defense
//! ```

use ripki_repro::ripki_bgp::hijack::{deployment_sweep, run, HijackScenario};
use ripki_repro::ripki_bgp::rov::{RouteOriginValidator, VrpTriple};
use ripki_repro::ripki_bgp::topology::Topology;
use ripki_repro::ripki_net::{Asn, IpPrefix};
use std::collections::BTreeSet;

fn main() {
    // An Internet-like arena: 5 tier-1s, 40 regional ISPs, 400 stubs.
    let topology = Topology::generate(2015, 5, 40, 400, 0.08);
    let victim = Asn::new(10_007); // a stub hosting "the website"
    let attacker = Asn::new(10_311); // another stub, far away
    let prefix: IpPrefix = "85.201.0.0/16".parse().unwrap();
    let subprefix: IpPrefix = "85.201.128.0/17".parse().unwrap();

    println!("arena: {topology}");
    println!(
        "victim AS{} announces {prefix}; attacker is AS{}\n",
        victim.value(),
        attacker.value()
    );

    // Act 1: origin hijack, no RPKI.
    let origin_attack = HijackScenario::origin_hijack(victim, attacker, prefix);
    let no_rpki = RouteOriginValidator::new();
    let out = run(&topology, &origin_attack, &no_rpki, &BTreeSet::new());
    println!("== act 1: origin hijack, no RPKI ==");
    println!(
        "  attacker captures {:.1}% of ASes ({} hijacked, {} safe)",
        out.capture_rate() * 100.0,
        out.hijacked.len(),
        out.safe.len()
    );
    println!("  → 'the attacker can harm specific subsets of clients'\n");

    // Act 2: subprefix hijack, no RPKI.
    let sub_attack = HijackScenario::subprefix_hijack(victim, attacker, prefix, subprefix);
    let out = run(&topology, &sub_attack, &no_rpki, &BTreeSet::new());
    println!("== act 2: subprefix hijack ({subprefix}), no RPKI ==");
    println!(
        "  attacker captures {:.1}% of ASes — longest-prefix match beats path length",
        out.capture_rate() * 100.0
    );
    println!("  → this is the Pakistan-Telecom/YouTube shape of attack\n");

    // Act 3: the victim creates a ROA (maxLength pinned to /16!) and the
    // world gradually deploys ROV.
    let validator = RouteOriginValidator::from_vrps([VrpTriple {
        prefix,
        max_length: 16,
        asn: victim,
    }]);
    println!("== act 3: ROA published (maxLength 16), sweeping ROV deployment ==");
    println!("  ROV deployed   origin-hijack capture   subprefix-hijack capture");
    let fractions = [0.0, 0.1, 0.25, 0.5, 0.75, 1.0];
    let origin_sweep = deployment_sweep(&topology, &origin_attack, &validator, &fractions, 7);
    let sub_sweep = deployment_sweep(&topology, &sub_attack, &validator, &fractions, 7);
    for ((f, origin_rate), (_, sub_rate)) in origin_sweep.iter().zip(&sub_sweep) {
        println!(
            "  {:>10.0}%   {:>19.1}%   {:>22.1}%",
            f * 100.0,
            origin_rate * 100.0,
            sub_rate * 100.0
        );
    }
    println!("\n  with full ROV and a correct ROA, both attacks die.");
    println!("  without the ROA, ROV has nothing to filter — which is why the");
    println!("  paper's finding (CDNs don't create ROAs) matters.");
}
