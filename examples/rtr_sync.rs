//! End-to-end RTR over real TCP on localhost: validate the scenario's
//! RPKI, serve the VRPs from an RFC 6810 cache, let a router client
//! synchronize (full load, then an incremental delta after the next
//! validation run), and use the synced set for origin validation.
//!
//! ```sh
//! cargo run --release --example rtr_sync
//! ```

use ripki_repro::ripki_bgp::rov::{RpkiState, VrpTriple};
use ripki_repro::ripki_rpki::{faults, validate};
use ripki_repro::ripki_rtr::{CacheServer, Client, SyncOutcome};
use ripki_repro::ripki_websim::{Scenario, ScenarioConfig};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

fn to_triples(report: &ripki_repro::ripki_rpki::ValidationReport) -> Vec<VrpTriple> {
    report
        .vrps
        .iter()
        .map(|v| VrpTriple {
            prefix: v.prefix,
            max_length: v.max_length,
            asn: v.asn,
        })
        .collect()
}

fn main() {
    println!("building ecosystem and validating the RPKI…");
    let mut scenario = Scenario::build(ScenarioConfig::with_domains(10_000));
    let report = validate(&scenario.repository, scenario.now);
    println!(
        "validation run #1: {} VRPs ({} objects accepted)",
        report.vrps.len(),
        report.accepted_count()
    );

    // The cache loads run #1 and listens on localhost.
    let cache = Arc::new(CacheServer::new(0x1715));
    cache.update(to_triples(&report));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind localhost");
    let addr = listener.local_addr().unwrap();
    println!(
        "RTR cache listening on {addr} (session {:#06x})",
        cache.session_id()
    );
    let server_cache = cache.clone();
    std::thread::spawn(move || {
        for conn in listener.incoming().flatten() {
            let cache = server_cache.clone();
            std::thread::spawn(move || {
                let _ = cache.serve_connection(conn);
            });
        }
    });

    // A router connects and performs its initial Reset Query.
    let mut router = Client::new(TcpStream::connect(addr).expect("connect"));
    match router.sync().expect("initial sync") {
        SyncOutcome::Updated {
            serial,
            announced,
            withdrawn,
        } => println!(
            "router synced: serial {serial}, +{announced} −{withdrawn} ({} VRPs held)",
            router.vrps().len()
        ),
    }

    // The router can now do RFC 6811 with what it fetched.
    let validator = router.to_validator();
    let sample = router.vrps().iter().next().expect("at least one VRP");
    println!(
        "spot check: {} from {} validates {}",
        sample.prefix,
        sample.asn,
        validator.validate(&sample.prefix, sample.asn)
    );
    println!(
        "           {} from AS4199999999 validates {}",
        sample.prefix,
        validator.validate(
            &sample.prefix,
            ripki_repro::ripki_net::Asn::new(4_199_999_999)
        )
    );

    // Time passes; a CA's publication point breaks; the next validation
    // run loses its VRPs and the cache serial bumps.
    let victim_ca = faults::publication_points(&scenario.repository)
        .into_iter()
        .find(|ca| !scenario.repository.points[ca].roas.is_empty())
        .expect("a CA with ROAs");
    let lost = scenario.repository.points[&victim_ca].roas.len();
    faults::stale_crl(&mut scenario.repository, victim_ca);
    let report2 = validate(&scenario.repository, scenario.now);
    println!(
        "\nvalidation run #2 after a CA's CRL went stale: {} VRPs (lost ≈{lost})",
        report2.vrps.len()
    );
    cache.update(to_triples(&report2));

    // The router picks up the *delta* with a Serial Query.
    match router.sync().expect("incremental sync") {
        SyncOutcome::Updated {
            serial,
            announced,
            withdrawn,
        } => println!(
            "router delta sync: serial {serial}, +{announced} −{withdrawn} ({} VRPs held)",
            router.vrps().len()
        ),
    }
    assert_eq!(router.vrps().len(), report2.vrps.len());

    // The lost ROAs' routes degrade from Valid to NotFound at the router.
    let validator2 = router.to_validator();
    let gone = report
        .vrps
        .iter()
        .find(|v| !report2.vrps.contains(v))
        .expect("something was lost");
    println!(
        "\nroute {} from {}: was {}, now {}",
        gone.prefix,
        gone.asn,
        RpkiState::Valid,
        validator2.validate(&gone.prefix, gone.asn)
    );
    println!("— a stale CRL silently downgrades protection, router-side.");
}
