//! The complete study at configurable scale: every figure, the table,
//! the headline numbers, and the CDN audit — the paper's §4 end to end.
//!
//! ```sh
//! cargo run --release --example full_study            # 100k domains
//! cargo run --release --example full_study -- 1000000 # the paper's 1M
//! ```

use ripki_repro::ripki::cdn_audit;
use ripki_repro::ripki::classify::HttpArchiveClassifier;
use ripki_repro::ripki::figures;
use ripki_repro::ripki::report::HeadlineStats;
use ripki_repro::ripki::tables;
use ripki_repro::ripki_rpki::validate;
use ripki_repro::ripki_websim::operators::CDN_SPECS;

fn print_series(label: &str, s: &ripki_repro::ripki::BinnedSeries, pct: bool) {
    print!("{label:<26}");
    for m in &s.means {
        match m {
            Some(v) if pct => print!(" {:>6.2}", v * 100.0),
            Some(v) => print!(" {v:>6.3}"),
            None => print!("      -"),
        }
    }
    println!();
}

fn main() {
    let domains: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    let bin = (domains / 10).max(1);

    println!("== RiPKI full study: {domains} domains, bin {bin} ==\n");
    let t0 = std::time::Instant::now();
    let (scenario, results) = ripki_repro::run_default_study(domains);
    println!("world built + measured in {:.1?}\n", t0.elapsed());

    println!("-- headline (§4) --");
    println!("{}\n", HeadlineStats::compute(&results));

    println!("-- Figure 1: www vs w/o-www equal prefixes (% per bin) --");
    let fig1 = figures::fig1_www_overlap(&results, bin);
    print_series("equal prefixes", &fig1, true);

    println!("\n-- Figure 2: RPKI validation outcome (% per bin) --");
    let fig2 = figures::fig2_rpki_outcome(&results, bin);
    print_series("valid", &fig2.valid, true);
    print_series("invalid", &fig2.invalid, true);
    print_series("not found", &fig2.not_found, true);

    println!("\n-- Figure 3: CDN share by classifier (% per bin) --");
    let patterns: Vec<String> = scenario
        .cdn_infras
        .iter()
        .map(|i| format!("{}-sim.net", i.name))
        .collect();
    let classifier = HttpArchiveClassifier::new(&scenario.zones, patterns);
    let fig3 = figures::fig3_cdn_popularity(&results, &classifier, bin);
    print_series("CNAME heuristic", &fig3.cname_heuristic, true);
    print_series("HTTPArchive", &fig3.httparchive, true);

    println!("\n-- Figure 4: RPKI-enabled share (% per bin) --");
    let fig4 = figures::fig4_rpki_on_cdns(&results, bin);
    print_series("all domains", &fig4.rpki_enabled, true);
    print_series("CDN-hosted only", &fig4.rpki_enabled_on_cdns, true);

    println!("\n-- Table 1: top domains with RPKI coverage --");
    let rows = tables::table1_top_covered(&results, 10);
    print!("{}", tables::render_table1(&rows));

    println!("\n-- §4.2 CDN audit --");
    let report = validate(&scenario.repository, scenario.now);
    let names: Vec<&str> = CDN_SPECS.iter().map(|(n, _, _)| *n).collect();
    let audit = cdn_audit::audit_cdns(&scenario.registry, &report.vrps, &names);
    let summary = cdn_audit::summarize(&audit, &scenario.registry, &report.vrps);
    println!(
        "CDN ASes: {}   CDN RPKI entries: {}   deployers: {:?}",
        summary.total_cdn_asns, summary.total_rpki_entries, summary.cdns_with_deployment
    );
    println!(
        "ISP penetration: {:.1}%   webhoster penetration: {:.1}%",
        summary.isp_penetration * 100.0,
        summary.webhoster_penetration * 100.0
    );

    println!("\ntotal runtime {:.1?}", t0.elapsed());
}
