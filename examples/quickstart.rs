//! Quickstart: build a small synthetic web ecosystem, run the RiPKI
//! four-step measurement pipeline on it, and print the key findings.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ripki_repro::ripki::figures;
use ripki_repro::ripki::report::HeadlineStats;
use ripki_repro::ripki::tables;

fn main() {
    let domains = 20_000;
    println!("building synthetic web ecosystem ({domains} domains)…");
    let (scenario, results) = ripki_repro::run_default_study(domains);

    println!("\n== headline statistics (paper §4) ==");
    let stats = HeadlineStats::compute(&results);
    println!("{stats}");

    let bin = domains / 10;
    let fig2 = figures::fig2_rpki_outcome(&results, bin);
    println!("\n== RPKI validation outcome by rank bin (Figure 2) ==");
    println!("bin_start   valid    invalid  notfound");
    for (i, ((v, inv), nf)) in fig2
        .valid
        .means
        .iter()
        .zip(&fig2.invalid.means)
        .zip(&fig2.not_found.means)
        .enumerate()
    {
        println!(
            "{:>9}   {:>6.3}%  {:>6.3}%  {:>6.2}%",
            i * bin,
            v.unwrap_or(0.0) * 100.0,
            inv.unwrap_or(0.0) * 100.0,
            nf.unwrap_or(0.0) * 100.0,
        );
    }
    let top = fig2.valid.range_mean(0, domains / 10).unwrap_or(0.0);
    let tail = fig2
        .valid
        .range_mean(domains * 9 / 10, domains)
        .unwrap_or(0.0);
    println!(
        "\nperversely, the popular head ({:.2}%) is LESS secured than the tail ({:.2}%)",
        top * 100.0,
        tail * 100.0
    );

    println!("\n== top domains with any RPKI coverage (Table 1) ==");
    let rows = tables::table1_top_covered(&results, 10);
    print!("{}", tables::render_table1(&rows));

    println!("\nworld summary: {}", scenario.repository);
    println!("               {}", scenario.topology);
}
