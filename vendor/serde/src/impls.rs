//! `Serialize`/`Deserialize` impls for std types.

use crate::value::{Number, Value};
use crate::{DeError, Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u128))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                let n = v.as_u128().ok_or_else(|| {
                    DeError::custom(format!(
                        "expected {}, found {}", stringify!($t), v.kind()
                    ))
                })?;
                <$t>::try_from(n).map_err(|_| {
                    DeError::custom(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i128;
                if v < 0 {
                    Value::Number(Number::NegInt(v))
                } else {
                    Value::Number(Number::PosInt(v as u128))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                let n = v.as_i128().ok_or_else(|| {
                    DeError::custom(format!(
                        "expected {}, found {}", stringify!($t), v.kind()
                    ))
                })?;
                <$t>::try_from(n).map_err(|_| {
                    DeError::custom(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, i128, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<f64, DeError> {
        v.as_f64()
            .ok_or_else(|| DeError::custom(format!("expected f64, found {}", v.kind())))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<f32, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, DeError> {
        v.as_bool()
            .ok_or_else(|| DeError::custom(format!("expected bool, found {}", v.kind())))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::custom(format!("expected string, found {}", v.kind())))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<char, DeError> {
        let s = v
            .as_str()
            .ok_or_else(|| DeError::custom(format!("expected char, found {}", v.kind())))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom("expected single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Box<T>, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::custom(format!("expected array, found {}", v.kind())))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let arr = v.as_array().ok_or_else(|| {
                    DeError::custom(format!("expected tuple array, found {}", v.kind()))
                })?;
                let expected = [$($idx),+].len();
                if arr.len() != expected {
                    return Err(DeError::custom(format!(
                        "expected {expected}-tuple, found {} elements", arr.len()
                    )));
                }
                Ok(($($name::from_value(&arr[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError::custom(format!("expected object, found {}", v.kind())))?;
        obj.iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output (HashMap iteration order is not).
        let mut entries: Vec<_> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Object(
            entries
                .into_iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError::custom(format!("expected object, found {}", v.kind())))?;
        obj.iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

macro_rules! impl_display_fromstr {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::String(self.to_string())
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                let s = v.as_str().ok_or_else(|| {
                    DeError::custom(format!(
                        "expected {} string, found {}", stringify!($t), v.kind()
                    ))
                })?;
                s.parse().map_err(|_| {
                    DeError::custom(format!("invalid {}: {s:?}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_display_fromstr!(IpAddr, Ipv4Addr, Ipv6Addr);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<(), DeError> {
        match v {
            Value::Null => Ok(()),
            other => Err(DeError::custom(format!(
                "expected null, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(v: &Value) -> Result<std::collections::BTreeSet<T>, DeError> {
        let arr = v
            .as_array()
            .ok_or_else(|| DeError::custom(format!("expected array, found {}", v.kind())))?;
        arr.iter().map(Deserialize::from_value).collect()
    }
}
