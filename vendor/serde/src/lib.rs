//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal serialization framework with the same *surface*
//! as serde — `#[derive(Serialize, Deserialize)]`, the
//! `#[serde(transparent)]` and `#[serde(default)]` attributes — but a
//! radically simpler contract underneath: serialization converts to an
//! in-memory [`Value`] tree, deserialization reads from one. The
//! vendored `serde_json` crate renders and parses that tree.
//!
//! This is **not** the visitor-based zero-copy architecture of real
//! serde; it is just enough for the JSON round-trips this workspace
//! performs. Derived impls mirror serde's external representation:
//! structs become objects, newtype structs their inner value, unit enum
//! variants strings, and data-carrying variants single-key objects.

pub mod value;

mod impls;

pub use value::{Map, Number, Value};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// Types convertible into a [`Value`] tree.
pub trait Serialize {
    /// Convert to a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstruct from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Deserialization failure: a human-readable path/type mismatch report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Build from any displayable message.
    pub fn custom(msg: impl fmt::Display) -> DeError {
        DeError {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}
