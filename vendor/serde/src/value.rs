//! The in-memory JSON-like value tree.

/// A JSON-like value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// A key-value object (insertion order preserved).
    Object(Map),
}

impl Value {
    /// Borrow as object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow as string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Read as bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Read as `u128` if the number is a non-negative integer.
    pub fn as_u128(&self) -> Option<u128> {
        match self {
            Value::Number(Number::PosInt(n)) => Some(*n),
            Value::Number(Number::NegInt(_)) => None,
            Value::Number(Number::Float(f))
                if f.fract() == 0.0 && *f >= 0.0 && *f < 2f64.powi(127) =>
            {
                Some(*f as u128)
            }
            _ => None,
        }
    }

    /// Read as `i128` if the number is an integer.
    pub fn as_i128(&self) -> Option<i128> {
        match self {
            Value::Number(Number::PosInt(n)) => i128::try_from(*n).ok(),
            Value::Number(Number::NegInt(n)) => Some(*n),
            Value::Number(Number::Float(f)) if f.fract() == 0.0 && f.abs() < 2f64.powi(126) => {
                Some(*f as i128)
            }
            _ => None,
        }
    }

    /// Read as `f64` from any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::PosInt(n)) => Some(*n as f64),
            Value::Number(Number::NegInt(n)) => Some(*n as f64),
            Value::Number(Number::Float(f)) => Some(*f),
            _ => None,
        }
    }

    /// A short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// A JSON number, kept wide enough to round-trip every integer type in
/// the workspace (including `u128`) without precision loss.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u128),
    /// Negative integer.
    NegInt(i128),
    /// Anything with a fractional part or exponent.
    Float(f64),
}

/// An insertion-ordered string-keyed map.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Empty map.
    pub fn new() -> Map {
        Map::default()
    }

    /// Insert, replacing any existing entry for `key` in place.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Look up by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Map {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

/// Upstream `serde_json` lets tests write `value["key"][0]`; missing
/// keys and type mismatches index to `Null` instead of panicking.
static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.as_object().and_then(|m| m.get(key)).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, i: usize) -> &Value {
        self.as_array().and_then(|a| a.get(i)).unwrap_or(&NULL)
    }
}

macro_rules! impl_value_from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(Number::PosInt(v as u128))
            }
        }
    )*};
}
impl_value_from_uint!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_value_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                if v < 0 {
                    Value::Number(Number::NegInt(v as i128))
                } else {
                    Value::Number(Number::PosInt(v as u128))
                }
            }
        }
    )*};
}
impl_value_from_int!(i8, i16, i32, i64, i128, isize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::Float(v))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}
