//! Offline stand-in for the `loom` concurrency model checker.
//!
//! The real `loom` instruments `Arc`, `Mutex`, `RwLock`, and atomics so
//! that `loom::model` can *exhaustively* explore thread interleavings
//! (with partial-order reduction). This build environment has no
//! crates.io access, so this stand-in ships the same API surface over
//! `std` primitives and replaces exhaustive exploration with **bounded
//! randomized stress iteration**: `model(f)` runs `f` many times under
//! real threads, perturbing the schedule with cooperative yields seeded
//! differently per iteration.
//!
//! That is strictly weaker than model checking — it can miss rare
//! interleavings — but it preserves two properties the workspace relies
//! on:
//!
//! 1. The concurrency tests in `crates/serve/tests/loom_model.rs` and
//!    `crates/rtr/tests/loom_serial.rs` are written against loom's API
//!    (`loom::sync::*`, `loom::thread`, `loom::model`), so swapping in
//!    the real crate is a `vendor/` replacement, not a test rewrite.
//! 2. Invariant violations (non-monotonic epochs observed by a reader,
//!    lost jobs on pool shutdown, serial-wrap history leaks) still
//!    surface as panics inside `model`, across hundreds of schedules
//!    per run instead of one.
//!
//! Iteration count: `LOOM_MAX_PREEMPTIONS` is accepted-and-ignored for
//! CLI compatibility; `LOOM_STANDIN_ITERS` (default 200) controls the
//! number of stress iterations.

use std::sync::atomic::{AtomicU32, Ordering as StdOrdering};

/// Run `f` repeatedly under perturbed schedules. Panics inside `f`
/// propagate to the caller (failing the enclosing test), as with real
/// loom.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    let iters: u32 = std::env::var("LOOM_STANDIN_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    for seed in 0..iters {
        SCHEDULE_SEED.store(seed, StdOrdering::SeqCst);
        f();
    }
}

// Seed for the per-iteration schedule perturbation; relaxed reads in
// `thread::maybe_yield` are fine — any torn view only changes how often
// we yield, never correctness.
static SCHEDULE_SEED: AtomicU32 = AtomicU32::new(0);

/// Thread handling — `std` threads plus a schedule-perturbing spawn.
pub mod thread {
    pub use std::thread::{current, park, yield_now, JoinHandle};

    use std::sync::atomic::Ordering as StdOrdering;

    /// Spawn a thread inside the model. Yields before the body runs on
    /// a seed-dependent subset of iterations so spawn/run orderings
    /// differ across iterations.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let seed = super::SCHEDULE_SEED.load(StdOrdering::SeqCst);
        std::thread::spawn(move || {
            // Cheap xorshift over the seed decides how eagerly this
            // thread starts, de-correlating thread start order between
            // model iterations.
            let mut x = seed.wrapping_add(0x9e37_79b9);
            x ^= x << 13;
            x ^= x >> 17;
            for _ in 0..(x % 4) {
                std::thread::yield_now();
            }
            f()
        })
    }
}

/// Synchronization primitives — `std`'s, re-exported under loom paths.
pub mod sync {
    pub use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard};

    /// Atomics — `std`'s, re-exported under loom paths.
    pub mod atomic {
        pub use std::sync::atomic::{
            fence, AtomicBool, AtomicU16, AtomicU32, AtomicU64, AtomicUsize, Ordering,
        };
    }
}

/// Model-internal hints (`loom::hint::spin_loop` in real loom).
pub mod hint {
    pub use std::hint::spin_loop;
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicU64, Ordering};
    use super::sync::Arc;

    #[test]
    fn model_runs_many_iterations() {
        let count = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&count);
        super::model(move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
        assert!(count.load(Ordering::SeqCst) >= 100);
    }

    #[test]
    fn spawned_threads_run_and_join() {
        super::model(|| {
            let flag = Arc::new(AtomicU64::new(0));
            let f = Arc::clone(&flag);
            let handle = super::thread::spawn(move || f.store(7, Ordering::SeqCst));
            handle.join().expect("spawned thread panicked");
            assert_eq!(flag.load(Ordering::SeqCst), 7);
        });
    }
}
