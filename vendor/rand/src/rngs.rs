//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard generator: SplitMix64.
///
/// Small, fast, passes BigCrush at this output width, and — the only
/// property callers here rely on — fully determined by its seed.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        // Pre-mix so that small, similar seeds diverge immediately.
        let mut rng = StdRng {
            state: seed ^ 0x5851_f42d_4c95_7f2d,
        };
        rng.next_u64();
        rng
    }
}
