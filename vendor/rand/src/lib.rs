//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of the `rand 0.8` API it uses: `StdRng` seeded via
//! `SeedableRng::seed_from_u64`, the `Rng` extension methods `gen`,
//! `gen_bool` and `gen_range`, and the `SliceRandom` helpers `shuffle`
//! and `choose_multiple`.
//!
//! The generator is SplitMix64, **not** the ChaCha12 stream the real
//! `StdRng` uses — sequences differ from upstream, but every consumer in
//! this workspace seeds explicitly and only relies on determinism and
//! reasonable statistical quality, both of which hold.

pub mod rngs;
pub mod seq;

pub use seq::SliceRandom;

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (the only constructor this workspace uses).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly over their whole domain
/// (the `rng.gen::<T>()` surface).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> i128 {
        u128::sample(rng) as i128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        f64::sample(rng) as f32
    }
}

/// Ranges that `gen_range` accepts. Generic over the sampled type (as
/// in the real crate) so integer-literal ranges infer their type from
/// the call site, e.g. `let i: usize = rng.gen_range(0..4);`.
pub trait SampleRange<T> {
    /// Draw uniformly from the range. Panics when the range is empty,
    /// as the real crate does.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((u128::sample(rng) % span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full-domain inclusive range.
                    return u128::sample(rng) as $t;
                }
                lo.wrapping_add((u128::sample(rng) % span) as $t)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing extension trait (`rand::Rng`).
pub trait Rng: RngCore {
    /// Sample a value uniformly over its whole domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Rg: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0..=32u8);
            assert!(w <= 32);
            let f = rng.gen_range(0.5..1.5);
            assert!((0.5..1.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn choose_multiple_distinct() {
        let mut rng = StdRng::seed_from_u64(5);
        let v: Vec<u32> = (0..10).collect();
        let picked: Vec<u32> = v.choose_multiple(&mut rng, 4).copied().collect();
        assert_eq!(picked.len(), 4);
        let mut uniq = picked.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 4);
    }
}
