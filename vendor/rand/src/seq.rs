//! Sequence helpers (`rand::seq`).

use crate::RngCore;

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Sample `amount` distinct elements (fewer if the slice is
    /// shorter), yielding references in selection order.
    fn choose_multiple<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> SliceChooseIter<'_, Self::Item>;

    /// Sample one element, or `None` from an empty slice.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }

    fn choose_multiple<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> SliceChooseIter<'_, T> {
        let amount = amount.min(self.len());
        // Partial Fisher–Yates over an index table: O(len) setup,
        // O(amount) draws, distinct by construction.
        let mut indices: Vec<usize> = (0..self.len()).collect();
        for i in 0..amount {
            let j = i + (rng.next_u64() % (indices.len() - i) as u64) as usize;
            indices.swap(i, j);
        }
        indices.truncate(amount);
        SliceChooseIter {
            slice: self,
            indices,
            next: 0,
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[(rng.next_u64() % self.len() as u64) as usize])
        }
    }
}

/// Iterator over elements picked by
/// [`choose_multiple`](SliceRandom::choose_multiple).
#[derive(Debug)]
pub struct SliceChooseIter<'a, T> {
    slice: &'a [T],
    indices: Vec<usize>,
    next: usize,
}

impl<'a, T> Iterator for SliceChooseIter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        let idx = *self.indices.get(self.next)?;
        self.next += 1;
        Some(&self.slice[idx])
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.indices.len() - self.next;
        (left, Some(left))
    }
}
