//! Offline stand-in for `serde_derive`.
//!
//! The real crate parses items with `syn`; neither `syn` nor `quote`
//! is available offline, so this macro walks the raw
//! [`proc_macro::TokenStream`] directly. It supports exactly the item
//! shapes this workspace derives on:
//!
//! * structs with named fields (`#[serde(default)]` honoured per field);
//! * tuple structs (single-field ones serialize as their inner value,
//!   matching serde's newtype behaviour; `#[serde(transparent)]` is
//!   accepted and implied);
//! * enums whose variants are unit or carry unnamed fields (externally
//!   tagged, like serde: `"Variant"` or `{"Variant": ...}`).
//!
//! Generic types, struct variants, and renaming attributes are
//! rejected with a `compile_error!`, so unsupported shapes fail loudly
//! at compile time instead of serializing wrongly at run time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (value-tree flavour).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Trait::Serialize)
}

/// Derive `serde::Deserialize` (value-tree flavour).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Trait::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Trait {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, which: Trait) -> TokenStream {
    let generated = match parse_item(input) {
        Ok(item) => match which {
            Trait::Serialize => gen_serialize(&item),
            Trait::Deserialize => gen_deserialize(&item),
        },
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    generated
        .parse()
        .expect("serde_derive generated invalid Rust")
}

struct Field {
    name: String,
    /// `#[serde(default)]`: missing input yields `Default::default()`.
    default: bool,
}

enum Shape {
    Named(Vec<Field>),
    /// Unnamed fields; the count. One field = serde newtype semantics.
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Item {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Cursor over the top-level token trees of the derive input.
struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Cursor {
        Cursor {
            toks: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == word)
    }

    fn at_punct(&self, c: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == c)
    }

    /// Skip `#[...]` attributes; returns serde attribute flags seen:
    /// (transparent, default). Unknown serde attributes are an error.
    fn skip_attrs(&mut self) -> Result<(bool, bool), String> {
        let mut transparent = false;
        let mut default = false;
        while self.at_punct('#') {
            self.next();
            let group = match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
                _ => return Err("expected [...] after #".to_string()),
            };
            let inner: Vec<TokenTree> = group.stream().into_iter().collect();
            let is_serde =
                matches!(inner.first(), Some(TokenTree::Ident(i)) if i.to_string() == "serde");
            if !is_serde {
                continue; // doc comments, cfg, other derives' helpers
            }
            let args = match inner.get(1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
                _ => return Err("expected #[serde(...)]".to_string()),
            };
            for tok in args {
                match tok {
                    TokenTree::Ident(i) if i.to_string() == "transparent" => transparent = true,
                    TokenTree::Ident(i) if i.to_string() == "default" => default = true,
                    TokenTree::Punct(p) if p.as_char() == ',' => {}
                    other => {
                        return Err(format!(
                            "unsupported serde attribute `{other}` (vendored serde_derive \
                             supports only `transparent` and `default`)"
                        ))
                    }
                }
            }
        }
        Ok((transparent, default))
    }

    /// Skip `pub` / `pub(...)` if present.
    fn skip_visibility(&mut self) {
        if self.at_ident("pub") {
            self.next();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.next();
            }
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut c = Cursor::new(input);
    c.skip_attrs()?;
    c.skip_visibility();
    let kind = match c.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected struct/enum, found {other:?}")),
    };
    let name = match c.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    if c.at_punct('<') {
        return Err(format!(
            "vendored serde_derive cannot handle generic type `{name}`"
        ));
    }
    match kind.as_str() {
        "struct" => {
            let shape = match c.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
                other => return Err(format!("unexpected struct body {other:?}")),
            };
            Ok(Item::Struct { name, shape })
        }
        "enum" => {
            let body = match c.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => return Err(format!("unexpected enum body {other:?}")),
            };
            Ok(Item::Enum {
                name,
                variants: parse_variants(body)?,
            })
        }
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<Field>, String> {
    let mut c = Cursor::new(body);
    let mut fields = Vec::new();
    while c.peek().is_some() {
        let (_, default) = c.skip_attrs()?;
        c.skip_visibility();
        let name = match c.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        if !c.at_punct(':') {
            return Err(format!("expected `:` after field `{name}`"));
        }
        c.next();
        skip_type(&mut c);
        fields.push(Field { name, default });
    }
    Ok(fields)
}

/// Skip a type expression up to a top-level `,` (angle-bracket aware;
/// commas inside `<...>` or grouped tokens do not terminate).
fn skip_type(c: &mut Cursor) {
    let mut angle_depth = 0i32;
    while let Some(tok) = c.peek() {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                c.next();
                return;
            }
            _ => {}
        }
        c.next();
    }
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let mut c = Cursor::new(body);
    let mut count = 0;
    while c.peek().is_some() {
        // Field attrs are possible but unused in this workspace; the
        // attr tokens are skipped by skip_type's flat walk anyway.
        count += 1;
        skip_type(&mut c);
    }
    count
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let mut c = Cursor::new(body);
    let mut variants = Vec::new();
    while c.peek().is_some() {
        c.skip_attrs()?;
        let name = match c.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        let shape = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let count = count_tuple_fields(g.stream());
                c.next();
                Shape::Tuple(count)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                return Err(format!(
                    "vendored serde_derive cannot handle struct variant `{name}`"
                ));
            }
            _ => Shape::Unit,
        };
        if c.at_punct(',') {
            c.next();
        }
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Named(fields) => {
                    let mut s = String::from("let mut __m = ::serde::Map::new();\n");
                    for f in fields {
                        s.push_str(&format!(
                            "__m.insert(::std::string::String::from({n:?}), \
                             ::serde::Serialize::to_value(&self.{n}));\n",
                            n = f.name
                        ));
                    }
                    s.push_str("::serde::Value::Object(__m)");
                    s
                }
                Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Shape::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", elems.join(", "))
                }
                Shape::Unit => "::serde::Value::Null".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::String(\
                         ::std::string::String::from({v:?})),\n",
                        v = v.name
                    )),
                    Shape::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let elems: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{v}({binds}) => {{\n\
                             let mut __m = ::serde::Map::new();\n\
                             __m.insert(::std::string::String::from({v:?}), {inner});\n\
                             ::serde::Value::Object(__m)\n}}\n",
                            v = v.name,
                            binds = binders.join(", ")
                        ));
                    }
                    Shape::Named(_) => unreachable!("struct variants rejected in parse"),
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{\n{arms}}}\n}}\n}}\n"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let body = match item {
        Item::Struct { name, shape } => match shape {
            Shape::Named(fields) => {
                let mut inits = String::new();
                for f in fields {
                    let missing = if f.default {
                        "::core::default::Default::default()".to_string()
                    } else {
                        format!(
                            "return ::core::result::Result::Err(::serde::DeError::custom(\
                             concat!({name:?}, \": missing field `\", {n:?}, \"`\")))",
                            n = f.name
                        )
                    };
                    inits.push_str(&format!(
                        "{n}: match __obj.get({n:?}) {{\n\
                         ::core::option::Option::Some(__x) => \
                         ::serde::Deserialize::from_value(__x)?,\n\
                         ::core::option::Option::None => {missing},\n}},\n",
                        n = f.name
                    ));
                }
                format!(
                    "let __obj = __v.as_object().ok_or_else(|| \
                     ::serde::DeError::custom(concat!({name:?}, \": expected object\")))?;\n\
                     ::core::result::Result::Ok({name} {{\n{inits}}})"
                )
            }
            Shape::Tuple(1) => format!(
                "::core::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
            ),
            Shape::Tuple(n) => {
                let elems: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                    .collect();
                format!(
                    "let __arr = __v.as_array().ok_or_else(|| \
                     ::serde::DeError::custom(concat!({name:?}, \": expected array\")))?;\n\
                     if __arr.len() != {n} {{\n\
                     return ::core::result::Result::Err(::serde::DeError::custom(\
                     concat!({name:?}, \": wrong tuple length\")));\n}}\n\
                     ::core::result::Result::Ok({name}({elems}))",
                    elems = elems.join(", ")
                )
            }
            Shape::Unit => format!(
                "match __v {{\n\
                 ::serde::Value::Null => ::core::result::Result::Ok({name}),\n\
                 _ => ::core::result::Result::Err(::serde::DeError::custom(\
                 concat!({name:?}, \": expected null\"))),\n}}"
            ),
        },
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                match &v.shape {
                    Shape::Unit => unit_arms.push_str(&format!(
                        "{v:?} => ::core::result::Result::Ok({name}::{v}),\n",
                        v = v.name
                    )),
                    Shape::Tuple(1) => data_arms.push_str(&format!(
                        "{v:?} => ::core::result::Result::Ok({name}::{v}(\
                         ::serde::Deserialize::from_value(__val)?)),\n",
                        v = v.name
                    )),
                    Shape::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "{v:?} => {{\n\
                             let __arr = __val.as_array().ok_or_else(|| \
                             ::serde::DeError::custom(\"expected variant array\"))?;\n\
                             if __arr.len() != {n} {{\n\
                             return ::core::result::Result::Err(\
                             ::serde::DeError::custom(\"wrong variant arity\"));\n}}\n\
                             ::core::result::Result::Ok({name}::{v}({elems}))\n}}\n",
                            v = v.name,
                            elems = elems.join(", ")
                        ));
                    }
                    Shape::Named(_) => unreachable!("struct variants rejected in parse"),
                }
            }
            format!(
                "match __v {{\n\
                 ::serde::Value::String(__s) => match __s.as_str() {{\n{unit_arms}\
                 __other => ::core::result::Result::Err(::serde::DeError::custom(\
                 format!(\"unknown {{}} variant {{:?}}\", {name:?}, __other))),\n}},\n\
                 ::serde::Value::Object(__m) if __m.len() == 1 => {{\n\
                 let (__key, __val) = __m.iter().next().expect(\"len checked\");\n\
                 match __key.as_str() {{\n{data_arms}\
                 __other => ::core::result::Result::Err(::serde::DeError::custom(\
                 format!(\"unknown {{}} variant {{:?}}\", {name:?}, __other))),\n}}\n}},\n\
                 _ => ::core::result::Result::Err(::serde::DeError::custom(\
                 concat!({name:?}, \": expected variant string or single-key object\"))),\n}}"
            )
        }
    };
    let name = match item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> \
         ::core::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}\n"
    )
}
