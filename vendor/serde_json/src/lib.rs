//! Offline stand-in for the `serde_json` crate.
//!
//! Renders and parses JSON text over the vendored `serde` crate's
//! [`Value`] tree. Covers the API this workspace uses:
//! [`to_string`], [`to_string_pretty`], [`to_value`], [`from_str`],
//! [`Value`], and [`Map`].
//!
//! Fidelity notes: objects keep insertion order; integers up to `u128`
//! round-trip exactly (arbitrary-precision floats do not); `NaN` and
//! infinities serialize as `null`, as in the real crate.

pub use serde::value::{Map, Number, Value};

use serde::{Deserialize, Serialize};

/// Deserialization/parsing failure.
pub type Error = serde::DeError;

/// Convert any serializable value into a [`Value`] tree.
///
/// Infallible for the value-tree model, but returns `Result` to match
/// the real crate's signature.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Reconstruct a deserializable type from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value)
}

/// Render compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Render human-readable JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Parse JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    T::from_value(&value)
}

// ------------------------------------------------------------- rendering

fn write_value(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_value(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_number(n: Number, out: &mut String) {
    match n {
        Number::PosInt(v) => out.push_str(&v.to_string()),
        Number::NegInt(v) => out.push_str(&v.to_string()),
        Number::Float(f) if f.is_finite() => {
            if f.fract() == 0.0 && f.abs() < 1e15 {
                // Keep the ".0" so the value re-parses as a float,
                // mirroring serde_json.
                out.push_str(&format!("{f:.1}"));
            } else {
                out.push_str(&format!("{f}"));
            }
        }
        // serde_json renders non-finite floats as null.
        Number::Float(_) => out.push_str("null"),
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err<T>(&self, why: &str) -> Result<T, Error> {
        Err(Error::custom(format!("{why} at byte {}", self.pos)))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), Error> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected {:?}", expected as char))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            self.err(&format!("expected `{lit}`"))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null").map(|()| Value::Null),
            Some(b't') => self.eat_literal("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat_literal("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return self.err("expected `,` or `]`"),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return self.err("expected `,` or `}`"),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            match hex.and_then(char::from_u32) {
                                Some(c) => {
                                    out.push(c);
                                    self.pos += 4;
                                }
                                None => return self.err("bad \\u escape"),
                            }
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number chars");
        if !is_float {
            if let Ok(v) = text.parse::<u128>() {
                return Ok(Value::Number(Number::PosInt(v)));
            }
            if let Ok(v) = text.parse::<i128>() {
                return Ok(Value::Number(Number::NegInt(v)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::Float(f)))
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrip() {
        let mut obj = Map::new();
        obj.insert("name".into(), Value::String("a \"b\"\nc".into()));
        obj.insert(
            "count".into(),
            Value::Number(Number::PosInt(u64::MAX as u128 + 5)),
        );
        obj.insert("neg".into(), Value::Number(Number::NegInt(-42)));
        obj.insert("ratio".into(), Value::Number(Number::Float(0.25)));
        obj.insert("whole".into(), Value::Number(Number::Float(3.0)));
        obj.insert("flag".into(), Value::Bool(true));
        obj.insert("gap".into(), Value::Null);
        obj.insert(
            "items".into(),
            Value::Array(vec![Value::Number(Number::PosInt(1)), Value::Null]),
        );
        let v = Value::Object(obj);
        let compact: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(compact, v);
        let pretty: Value = from_str(&to_string_pretty(&v).unwrap()).unwrap();
        assert_eq!(pretty, v);
    }

    #[test]
    fn pretty_output_shape() {
        let mut obj = Map::new();
        obj.insert("a".into(), Value::Number(Number::PosInt(1)));
        let text = to_string_pretty(&Value::Object(obj)).unwrap();
        assert_eq!(text, "{\n  \"a\": 1\n}");
    }

    #[test]
    fn whitespace_and_escapes_parse() {
        let v: Value = from_str(" { \"k\" : [ 1 , \"\\u0041\\t\" ] } ").unwrap();
        let obj = v.as_object().unwrap();
        let arr = obj.get("k").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_u128(), Some(1));
        assert_eq!(arr[1].as_str(), Some("A\t"));
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<Value>("{oops}").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
