//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of the criterion API its benches use:
//! `criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with `sample_size`/`throughput`, and `Bencher::iter`.
//!
//! No statistics are computed: each benchmark is warmed up briefly and
//! then timed over a fixed batch, reporting mean wall-clock time per
//! iteration. That is enough to compare implementations within one run,
//! which is all this workspace's benches do.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(v: T) -> T {
    std_black_box(v)
}

/// Work-per-iteration hint, echoed in the report as a rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Times one benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled by [`iter`](Bencher::iter).
    ns_per_iter: f64,
}

impl Bencher {
    /// Time `f`, storing mean ns/iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + calibration: run until ~20ms or 3 iterations.
        let calib = Instant::now();
        let mut calib_iters: u32 = 0;
        while calib.elapsed() < Duration::from_millis(20) || calib_iters < 3 {
            std_black_box(f());
            calib_iters += 1;
            if calib_iters >= 1_000_000 {
                break;
            }
        }
        // Measure a batch sized to roughly 100ms based on calibration.
        let per_iter = calib.elapsed().as_secs_f64() / calib_iters as f64;
        let batch = ((0.1 / per_iter.max(1e-9)) as u64).clamp(1, 10_000_000) as u32;
        let start = Instant::now();
        for _ in 0..batch {
            std_black_box(f());
        }
        self.ns_per_iter = start.elapsed().as_secs_f64() * 1e9 / batch as f64;
    }
}

fn report(id: &str, ns: f64, throughput: Option<Throughput>) {
    let time = if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else {
        format!("{:.2} ms", ns / 1_000_000.0)
    };
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / (ns / 1e9);
            println!("{id:<50} {time:>12}/iter  {rate:>14.0} elem/s");
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / (ns / 1e9) / (1024.0 * 1024.0);
            println!("{id:<50} {time:>12}/iter  {rate:>11.1} MiB/s");
        }
        None => println!("{id:<50} {time:>12}/iter"),
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        report(id, b.ns_per_iter, None);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            _parent: self,
        }
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    name: String,
    throughput: Option<Throughput>,
    _parent: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub's batch sizing is
    /// time-based, so the requested sample count is not used.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Set the throughput hint for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id),
            b.ns_per_iter,
            self.throughput,
        );
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
