//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the `bytes` API it actually uses: an
//! append-only [`BytesMut`], an immutable [`Bytes`], and cursor-style
//! [`Buf`]/[`BufMut`] traits. Semantics match the real crate for this
//! subset (big-endian integer accessors, `Buf` advancing `&[u8]` in
//! place); none of the zero-copy machinery is reproduced.

use std::ops::{Deref, DerefMut};

/// Immutable byte buffer (plain owned storage; no refcounted views).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Bytes {
        Bytes { data: Vec::new() }
    }

    /// Copy `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: data.to_vec(),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.data == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self.data == other
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { data: Vec::new() }
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Append raw bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }

    /// Copy out as a plain vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Read-cursor over a byte source.
///
/// All integer accessors are big-endian, as in the real crate; reading
/// past the end panics (matching `bytes`' documented behaviour).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skip `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Read a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let c = self.chunk();
        let v = u16::from_be_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Read a big-endian `u128`.
    fn get_u128(&mut self) -> u128 {
        let mut b = [0u8; 16];
        self.copy_to_slice(&mut b);
        u128::from_be_bytes(b)
    }

    /// Fill `dst` from the front of the buffer.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Append-cursor over a growable byte sink (big-endian writers).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian `u128`.
    fn put_u128(&mut self, v: u128) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_integers() {
        let mut w = BytesMut::with_capacity(16);
        w.put_u8(7);
        w.put_u16(0x0102);
        w.put_u32(0xdead_beef);
        let frozen = w.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.remaining(), 7);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 0x0102);
        assert_eq!(r.get_u32(), 0xdead_beef);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn copy_and_advance() {
        let data = [1u8, 2, 3, 4, 5];
        let mut r: &[u8] = &data;
        r.advance(1);
        let mut out = [0u8; 2];
        r.copy_to_slice(&mut out);
        assert_eq!(out, [2, 3]);
        assert_eq!(r.chunk(), &[4, 5]);
    }
}
