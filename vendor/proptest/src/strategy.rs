//! The [`Strategy`] trait and primitive combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values.
///
/// Object-safe core (`generate`) plus `Sized`-gated combinators, so
/// `Box<dyn Strategy<Value = T>>` works for `prop_oneof!`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always produce a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between same-typed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Choose uniformly among `arms`.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.below(self.arms.len() as u64) as usize;
        self.arms[pick].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add(rng.below_u128(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    return ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) as $t;
                }
                lo.wrapping_add(rng.below_u128(span) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<u128> {
    type Value = u128;
    fn generate(&self, rng: &mut TestRng) -> u128 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below_u128(self.end - self.start)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        // 53 uniform mantissa bits in [0, 1).
        let unit = rng.below_u128(1u128 << 53) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        let unit = rng.below_u128((1u128 << 53) + 1) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
