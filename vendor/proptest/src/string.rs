//! String strategies from regular expressions (`proptest::string`).
//!
//! Supports the generative subset the workspace's tests use: literal
//! characters, character classes with ranges (`[a-z0-9-]`, `[ -~]`),
//! groups, alternation, and the quantifiers `?`, `*`, `+`, `{m}`,
//! `{m,n}`, `{m,}`. Unsupported syntax returns an [`Error`] rather than
//! generating wrong strings.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::fmt;

/// Regex-parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unsupported regex: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Unbounded quantifiers (`*`, `+`, `{m,}`) generate at most this many
/// extra repetitions.
const UNBOUNDED_REPEAT_CAP: u32 = 8;

#[derive(Debug, Clone)]
enum Node {
    /// Concatenation of parts.
    Seq(Vec<Node>),
    /// One alternative among several (`a|b`).
    Alt(Vec<Node>),
    /// One character from a set of inclusive ranges.
    Class(Vec<(char, char)>),
    /// A literal character.
    Literal(char),
    /// `node{min,max}` (inclusive).
    Repeat { node: Box<Node>, min: u32, max: u32 },
}

impl Node {
    fn generate_into(&self, rng: &mut TestRng, out: &mut String) {
        match self {
            Node::Seq(parts) => {
                for p in parts {
                    p.generate_into(rng, out);
                }
            }
            Node::Alt(arms) => {
                let pick = rng.below(arms.len() as u64) as usize;
                arms[pick].generate_into(rng, out);
            }
            Node::Class(ranges) => {
                let total: u64 = ranges
                    .iter()
                    .map(|(lo, hi)| *hi as u64 - *lo as u64 + 1)
                    .sum();
                let mut pick = rng.below(total);
                for (lo, hi) in ranges {
                    let span = *hi as u64 - *lo as u64 + 1;
                    if pick < span {
                        out.push(char::from_u32(*lo as u32 + pick as u32).expect("range"));
                        return;
                    }
                    pick -= span;
                }
                unreachable!("pick within total");
            }
            Node::Literal(c) => out.push(*c),
            Node::Repeat { node, min, max } => {
                let n = min + rng.below((*max - *min + 1) as u64) as u32;
                for _ in 0..n {
                    node.generate_into(rng, out);
                }
            }
        }
    }
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    source: &'a str,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, why: &str) -> Result<T, Error> {
        Err(Error(format!("{why} in {:?}", self.source)))
    }

    /// alternation := sequence ('|' sequence)*
    fn alternation(&mut self) -> Result<Node, Error> {
        let mut arms = vec![self.sequence()?];
        while self.chars.peek() == Some(&'|') {
            self.chars.next();
            arms.push(self.sequence()?);
        }
        Ok(if arms.len() == 1 {
            arms.pop().expect("one arm")
        } else {
            Node::Alt(arms)
        })
    }

    /// sequence := (atom quantifier?)*
    fn sequence(&mut self) -> Result<Node, Error> {
        let mut parts = Vec::new();
        while let Some(&c) = self.chars.peek() {
            if c == ')' || c == '|' {
                break;
            }
            let atom = self.atom()?;
            parts.push(self.quantified(atom)?);
        }
        Ok(Node::Seq(parts))
    }

    fn atom(&mut self) -> Result<Node, Error> {
        match self.chars.next() {
            Some('[') => self.class(),
            Some('(') => {
                let inner = self.alternation()?;
                if self.chars.next() != Some(')') {
                    return self.err("unclosed group");
                }
                Ok(inner)
            }
            Some('.') => Ok(Node::Class(vec![(' ', '~')])),
            Some('\\') => match self.chars.next() {
                Some(
                    c @ ('.' | '\\' | '-' | '[' | ']' | '(' | ')' | '|' | '?' | '*' | '+' | '{'
                    | '}'),
                ) => Ok(Node::Literal(c)),
                Some('d') => Ok(Node::Class(vec![('0', '9')])),
                _ => self.err("unsupported escape"),
            },
            Some(c @ ('?' | '*' | '+' | '{')) => self.err(&format!("dangling quantifier {c:?}")),
            Some(c) => Ok(Node::Literal(c)),
            None => self.err("unexpected end"),
        }
    }

    fn quantified(&mut self, atom: Node) -> Result<Node, Error> {
        let (min, max) = match self.chars.peek() {
            Some('?') => (0, 1),
            Some('*') => (0, UNBOUNDED_REPEAT_CAP),
            Some('+') => (1, UNBOUNDED_REPEAT_CAP),
            Some('{') => {
                self.chars.next();
                return self.braced_quantifier(atom);
            }
            _ => return Ok(atom),
        };
        self.chars.next();
        Ok(Node::Repeat {
            node: Box::new(atom),
            min,
            max,
        })
    }

    /// Already past '{': parse `m}`, `m,}`, or `m,n}`.
    fn braced_quantifier(&mut self, atom: Node) -> Result<Node, Error> {
        let min = self.number()?;
        let max = match self.chars.next() {
            Some('}') => {
                return Ok(Node::Repeat {
                    node: Box::new(atom),
                    min,
                    max: min,
                })
            }
            Some(',') => match self.chars.peek() {
                Some('}') => min + UNBOUNDED_REPEAT_CAP,
                _ => self.number()?,
            },
            _ => return self.err("malformed {m,n}"),
        };
        if self.chars.next() != Some('}') {
            return self.err("malformed {m,n}");
        }
        if max < min {
            return self.err("quantifier max below min");
        }
        Ok(Node::Repeat {
            node: Box::new(atom),
            min,
            max,
        })
    }

    fn number(&mut self) -> Result<u32, Error> {
        let mut digits = String::new();
        while let Some(c) = self.chars.peek() {
            if c.is_ascii_digit() {
                digits.push(*c);
                self.chars.next();
            } else {
                break;
            }
        }
        if digits.is_empty() {
            return self.err("expected number");
        }
        digits
            .parse()
            .map_err(|_| Error(format!("bad number in {:?}", self.source)))
    }

    /// Already past '[': parse ranges until ']'.
    fn class(&mut self) -> Result<Node, Error> {
        if self.chars.peek() == Some(&'^') {
            return self.err("negated classes unsupported");
        }
        let mut ranges = Vec::new();
        loop {
            let lo = match self.chars.next() {
                Some(']') => break,
                Some('\\') => match self.chars.next() {
                    Some(c) => c,
                    None => return self.err("unexpected end in class"),
                },
                Some(c) => c,
                None => return self.err("unclosed class"),
            };
            // `-` is a range only between two chars; trailing `-` is
            // literal.
            if self.chars.peek() == Some(&'-') {
                self.chars.next();
                match self.chars.peek() {
                    Some(']') | None => {
                        ranges.push((lo, lo));
                        ranges.push(('-', '-'));
                    }
                    Some(_) => {
                        let hi = self.chars.next().expect("peeked");
                        if hi < lo {
                            return self.err("inverted class range");
                        }
                        ranges.push((lo, hi));
                    }
                }
            } else {
                ranges.push((lo, lo));
            }
        }
        if ranges.is_empty() {
            return self.err("empty class");
        }
        Ok(Node::Class(ranges))
    }
}

/// Strategy generating strings matched by the source regex.
#[derive(Debug, Clone)]
pub struct RegexStrategy {
    root: Node,
}

impl Strategy for RegexStrategy {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        self.root.generate_into(rng, &mut out);
        out
    }
}

/// Build a string strategy from `pattern` (full-string match).
pub fn string_regex(pattern: &str) -> Result<RegexStrategy, Error> {
    let mut parser = Parser {
        chars: pattern.chars().peekable(),
        source: pattern,
    };
    let root = parser.alternation()?;
    if parser.chars.next().is_some() {
        return Err(Error(format!("trailing input in {pattern:?}")));
    }
    Ok(RegexStrategy { root })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn samples(pattern: &str, n: u32) -> Vec<String> {
        let strat = string_regex(pattern).unwrap();
        (0..n)
            .map(|i| {
                let mut rng = TestRng::for_case("regex", i);
                strat.generate(&mut rng)
            })
            .collect()
    }

    #[test]
    fn label_pattern_shapes() {
        for s in samples("[a-z0-9]([a-z0-9-]{0,10}[a-z0-9])?", 200) {
            assert!(!s.is_empty() && s.len() <= 12, "{s:?}");
            assert!(
                s.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'),
                "{s:?}"
            );
            assert!(!s.starts_with('-') && !s.ends_with('-'), "{s:?}");
        }
    }

    #[test]
    fn printable_ascii_pattern() {
        for s in samples("[ -~]{0,40}", 100) {
            assert!(s.len() <= 40);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn exact_and_open_quantifiers() {
        for s in samples("a{3}", 10) {
            assert_eq!(s, "aaa");
        }
        for s in samples("b{2,}", 50) {
            assert!(s.len() >= 2 && s.chars().all(|c| c == 'b'), "{s:?}");
        }
        for s in samples("(ab|cd)+", 50) {
            assert!(!s.is_empty() && s.len() % 2 == 0, "{s:?}");
        }
    }

    #[test]
    fn unsupported_syntax_is_an_error() {
        assert!(string_regex("[^a]").is_err());
        assert!(string_regex("(a").is_err());
        assert!(string_regex("a{2,1}").is_err());
    }
}
