//! Collection strategies (`prop::collection`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// Accepted size specifications for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            min: *r.start(),
            max: *r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n + 1 }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.min + rng.below((self.max - self.min) as u64) as usize
    }
}

/// `Vec` of values from `element`, sized within `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `BTreeSet` of values from `element`; the size range bounds the
/// number of *attempted* insertions, so duplicates may make the set
/// smaller (as in the real crate).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let attempts = self.size.pick(rng);
        (0..attempts).map(|_| self.element.generate(rng)).collect()
    }
}
