//! Deterministic case generation machinery.

/// Per-test configuration (`ProptestConfig` in the prelude).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Config {
    /// Run `cases` cases per property.
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Config {
        // The real crate defaults to 256; 64 keeps the offline suite
        // fast while exercising the same generators.
        Config { cases: 64 }
    }
}

/// SplitMix64 stream seeded from (test path, case index): every case is
/// reproducible without a persistence file.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Deterministic generator for one case of one property.
    pub fn for_case(test_path: &str, case: u32) -> TestRng {
        // FNV-1a over the path, then fold in the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h ^= case as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
        let mut rng = TestRng { state: h };
        rng.next_u64();
        rng
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw below `bound` (0 when `bound` is 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    /// Uniform 128-bit draw below `bound` (0 when `bound` is 0).
    pub fn below_u128(&mut self, bound: u128) -> u128 {
        if bound == 0 {
            return 0;
        }
        let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
        wide % bound
    }
}
