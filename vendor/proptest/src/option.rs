//! `Option<T>` strategies (`prop::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Generate `Some` from the inner strategy about half the time, `None`
/// otherwise (the real crate's default probability).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// Strategy returned by [`of`].
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(2) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}
