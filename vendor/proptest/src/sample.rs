//! Sampling helpers (`prop::sample`).

use crate::arbitrary::Arbitrary;
use crate::test_runner::TestRng;

/// A length-agnostic index: generated once, projected onto any
/// collection length via [`index`](Index::index).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index {
    raw: usize,
}

impl Index {
    /// Project onto a collection of `len` elements. Panics if `len` is
    /// zero, as the real crate does.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "cannot index an empty collection");
        self.raw % len
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Index {
        Index {
            raw: rng.next_u64() as usize,
        }
    }
}
