//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of the proptest API its tests use: the
//! `proptest!` macro, `prop_assert*!`, `prop_oneof!`, `any::<T>()`,
//! range and tuple strategies, `prop::collection::{vec, btree_set}`,
//! `prop::sample::Index`, and `string::string_regex`.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking.** A failing case panics with the assertion message
//!   (which includes the generated values for `prop_assert_eq!`); it is
//!   not minimised.
//! * **Generation is deterministic.** Cases are seeded from the test's
//!   module path, name, and case index, so failures reproduce exactly
//!   without a persistence file.
//! * The default case count is 64 (the real crate's 256), keeping the
//!   full suite fast; `ProptestConfig::with_cases` overrides it as
//!   usual.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The `proptest::prelude` the tests import.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirror of `proptest::prelude::prop`: module shorthands.
    pub mod prop {
        pub use crate::{collection, option, sample, strategy, string};
    }
}

/// Assert inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            @cfg($crate::test_runner::Config::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::Config = $cfg;
            let __strategies = ($($strat,)+);
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                let ($($pat,)+) =
                    $crate::strategy::Strategy::generate(&__strategies, &mut __rng);
                $body
            }
        }
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u32> {
        any::<u32>().prop_map(|v| v & !1)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(a in 5u32..10, b in 0u128..1000, c in 1usize..=4) {
            prop_assert!((5..10).contains(&a));
            prop_assert!(b < 1000);
            prop_assert!((1..=4).contains(&c));
        }

        #[test]
        fn map_and_oneof(v in prop_oneof![arb_even(), Just(7u32)]) {
            prop_assert!(v % 2 == 0 || v == 7);
        }

        #[test]
        fn collections_sized(
            mut xs in prop::collection::vec(any::<u8>(), 2..6),
            set in prop::collection::btree_set(0u32..50, 0..8),
        ) {
            prop_assert!((2..6).contains(&xs.len()));
            xs.sort_unstable();
            prop_assert!(set.len() < 8);
        }

        #[test]
        fn index_picks_in_range(ix in any::<prop::sample::Index>()) {
            prop_assert!(ix.index(17) < 17);
        }

        #[test]
        fn regex_shapes(s in prop::string::string_regex("[a-z]([a-z0-9-]{0,4}[a-z])?").unwrap()) {
            prop_assert!(!s.is_empty() && s.len() <= 6, "{s:?}");
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));
            prop_assert!(!s.starts_with('-') && !s.ends_with('-'));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = crate::collection::vec(crate::arbitrary::any::<u64>(), 0..10);
        let one: Vec<Vec<u64>> = (0..20)
            .map(|case| {
                let mut rng = crate::test_runner::TestRng::for_case("det", case);
                Strategy::generate(&strat, &mut rng)
            })
            .collect();
        let two: Vec<Vec<u64>> = (0..20)
            .map(|case| {
                let mut rng = crate::test_runner::TestRng::for_case("det", case);
                Strategy::generate(&strat, &mut rng)
            })
            .collect();
        assert_eq!(one, two);
    }
}
