//! `any::<T>()` — whole-domain generation.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical whole-domain generator.
pub trait Arbitrary: Sized {
    /// Draw one value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Bias to ASCII half the time, like the real crate's char logic
        // favours simple values; always a valid scalar.
        if rng.next_u64() & 1 == 0 {
            (rng.below(0x80) as u8) as char
        } else {
            char::from_u32(rng.below(0x11_0000 - 0x800) as u32 + 0x800).unwrap_or('\u{fffd}')
        }
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T> {
    _marker: PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`'s whole domain.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: PhantomData,
    }
}
