//! Integration: the attacker model (§2.3) on the *measured* world — the
//! same VRPs the pipeline validated drive ROV in the hijack simulation,
//! and the scenario's real topology is the battlefield.

use ripki_repro::ripki::pipeline::{Pipeline, PipelineConfig};
use ripki_repro::ripki_bgp::hijack::{run, HijackScenario};
use ripki_repro::ripki_bgp::rov::RpkiState;
use ripki_repro::ripki_net::Asn;
use ripki_repro::ripki_websim::{Scenario, ScenarioConfig};
use std::collections::BTreeSet;

fn build() -> (
    Scenario,
    ripki_repro::ripki::pipeline::StudyResults,
    Pipeline<'static>,
) {
    // Leak the scenario to get 'static borrows for the pipeline —
    // test-only convenience.
    let scenario = Box::leak(Box::new(Scenario::build(ScenarioConfig::with_domains(
        10_000,
    ))));
    let pipeline = Pipeline::new(
        &scenario.zones,
        &scenario.rib,
        &scenario.repository,
        PipelineConfig {
            bogus_dns_ppm: 0,
            now: scenario.now,
            ..Default::default()
        },
    );
    let results = pipeline.run(&scenario.ranking);
    (
        Scenario::build(ScenarioConfig::with_domains(10_000)),
        results,
        pipeline,
    )
}

#[test]
fn measured_valid_prefix_is_defendable() {
    let (scenario, results, pipeline) = build();
    // Find a domain the pipeline measured as fully Valid.
    let victim_domain = results
        .domains
        .iter()
        .find(|d| {
            !d.bare.pairs.is_empty() && d.bare.pairs.iter().all(|p| p.state == RpkiState::Valid)
        })
        .expect("some domain is fully valid at this scale");
    let pair = victim_domain.bare.pairs[0];
    assert_eq!(
        pipeline.validator().validate(&pair.prefix, pair.origin),
        RpkiState::Valid
    );

    // The announcing AS defends its prefix against a stub attacker.
    let victim_as = pair.origin;
    assert!(
        scenario.topology.contains(victim_as),
        "victim AS in topology"
    );
    let attacker = scenario
        .topology
        .asns()
        .find(|a| *a != victim_as && scenario.topology.node(*a).unwrap().is_stub())
        .expect("an attacker stub exists");
    let attack = HijackScenario::origin_hijack(victim_as, attacker, pair.prefix);

    // Without ROV: some capture.
    let none = run(
        &scenario.topology,
        &attack,
        pipeline.validator(),
        &BTreeSet::new(),
    );
    // With universal ROV over the *measured* VRPs: zero capture.
    let everyone: BTreeSet<Asn> = scenario.topology.asns().collect();
    let full = run(&scenario.topology, &attack, pipeline.validator(), &everyone);
    assert_eq!(full.capture_rate(), 0.0, "ROA-covered prefix defended");
    assert!(none.capture_rate() >= full.capture_rate());
}

#[test]
fn unprotected_prefix_stays_hijackable_even_with_rov() {
    let (scenario, results, pipeline) = build();
    // Find a NotFound-only domain: the common case the paper worries
    // about.
    let victim_domain = results
        .domains
        .iter()
        .find(|d| {
            !d.bare.pairs.is_empty() && d.bare.pairs.iter().all(|p| p.state == RpkiState::NotFound)
        })
        .expect("most domains are uncovered");
    let pair = victim_domain.bare.pairs[0];
    let victim_as = pair.origin;
    let attacker = scenario
        .topology
        .asns()
        .find(|a| *a != victim_as && scenario.topology.node(*a).unwrap().is_stub())
        .unwrap();
    let attack = HijackScenario::origin_hijack(victim_as, attacker, pair.prefix);
    let everyone: BTreeSet<Asn> = scenario.topology.asns().collect();
    let out = run(&scenario.topology, &attack, pipeline.validator(), &everyone);
    // ROV filters Invalid only; NotFound passes — the attack succeeds
    // against someone.
    assert!(
        out.capture_rate() > 0.0,
        "no ROA ⇒ ROV cannot help: capture {}",
        out.capture_rate()
    );
}
