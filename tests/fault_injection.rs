//! Integration: misbehaving authorities vs the measurement pipeline.
//!
//! When a CA's repository breaks (stale CRL, withheld objects, corrupted
//! signatures), the relying party loses exactly that CA's VRPs, and the
//! measured "valid" share of the web drops accordingly — never does a
//! broken repository *create* coverage.

use ripki_repro::ripki::figures::fig2_rpki_outcome;
use ripki_repro::ripki::pipeline::{Pipeline, PipelineConfig};
use ripki_repro::ripki_rpki::faults;
use ripki_repro::ripki_websim::{Scenario, ScenarioConfig};

fn valid_share(scenario: &Scenario) -> (f64, usize) {
    let pipeline = Pipeline::new(
        &scenario.zones,
        &scenario.rib,
        &scenario.repository,
        PipelineConfig {
            bogus_dns_ppm: 0,
            now: scenario.now,
            ..Default::default()
        },
    );
    let vrps = pipeline.validator().len();
    let results = pipeline.run(&scenario.ranking);
    let fig2 = fig2_rpki_outcome(&results, 1_000);
    (fig2.valid.overall_mean().unwrap_or(0.0), vrps)
}

#[test]
fn breaking_all_publication_points_zeroes_coverage() {
    let mut scenario = Scenario::build(ScenarioConfig::with_domains(6_000));
    let (before, vrps_before) = valid_share(&scenario);
    assert!(before > 0.0 && vrps_before > 0);

    for ca in faults::publication_points(&scenario.repository) {
        faults::stale_crl(&mut scenario.repository, ca);
    }
    let (after, vrps_after) = valid_share(&scenario);
    assert_eq!(vrps_after, 0, "no VRP survives universal CRL staleness");
    assert_eq!(after, 0.0);
}

#[test]
fn corrupting_roa_signatures_only_removes_coverage() {
    let mut scenario = Scenario::build(ScenarioConfig::with_domains(6_000));
    let (before, vrps_before) = valid_share(&scenario);
    for ca in faults::publication_points(&scenario.repository) {
        faults::corrupt_roa_signatures(&mut scenario.repository, ca);
    }
    let (after, vrps_after) = valid_share(&scenario);
    assert!(vrps_after < vrps_before);
    assert!(after <= before);
    assert_eq!(after, 0.0, "all ROAs were corrupted");
}

#[test]
fn unpublishing_one_point_is_contained() {
    let mut scenario = Scenario::build(ScenarioConfig::with_domains(6_000));
    let (_, vrps_before) = valid_share(&scenario);
    // Remove one *non-TA* publication point that actually holds ROAs.
    let candidate = faults::publication_points(&scenario.repository)
        .into_iter()
        .find(|ca| !scenario.repository.points[ca].roas.is_empty())
        .expect("some CA publishes ROAs");
    let removed = scenario.repository.points[&candidate].roas.len();
    faults::unpublish(&mut scenario.repository, candidate);
    let (_, vrps_after) = valid_share(&scenario);
    // Exactly that CA's ROA payloads disappear; everyone else's survive.
    assert!(vrps_after < vrps_before);
    assert!(
        vrps_before - vrps_after <= removed + 4,
        "collateral damage too large: {vrps_before} -> {vrps_after} (removed {removed})"
    );
    assert!(vrps_after > 0, "other CAs unaffected");
}
