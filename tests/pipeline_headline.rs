//! Workspace-level integration: the §4 headline numbers keep their shape
//! at a moderate scale, and the table-dump round trip does not change a
//! single measurement (the pipeline is a pure function of its inputs,
//! like re-running the study from archived RIS dumps).

use ripki_repro::ripki::pipeline::{Pipeline, PipelineConfig};
use ripki_repro::ripki::report::HeadlineStats;
use ripki_repro::ripki_bgp::dump::TableDump;
use ripki_repro::ripki_websim::{Scenario, ScenarioConfig};

#[test]
fn headline_shapes_hold() {
    let (_, results) = ripki_repro::run_default_study(30_000);
    let stats = HeadlineStats::compute(&results);
    assert_eq!(stats.domains, 30_000);
    // The paper gathered ≈1.17 addresses per domain; our popular head is
    // multi-address too. Loose sanity band.
    let per_domain = stats.bare_addresses as f64 / stats.domains as f64;
    assert!(
        (1.0..2.0).contains(&per_domain),
        "addresses per domain {per_domain}"
    );
    // More prefix-AS pairs than addresses (aggregates + specifics +
    // MOAS), like the paper's 1,369,030 pairs over 1,167,086 addresses.
    assert!(stats.www_pairs >= stats.www_addresses);
    assert!(stats.bare_pairs >= stats.bare_addresses);
    let ratio = stats.pairs_per_address();
    assert!((1.0..1.5).contains(&ratio), "pairs per address {ratio}");
    // Noise floors in the right decade.
    assert!(stats.invalid_dns_fraction > 0.0001 && stats.invalid_dns_fraction < 0.003);
    assert!(stats.unreachable_fraction < 0.003);
    // Service names (CDN-internal hosts) have no www form; a small
    // number of resolution failures is expected and matches the paper's
    // "n/a" Table 1 cells.
    let failure_share = stats.resolve_failures as f64 / stats.domains as f64;
    assert!(failure_share < 0.02, "failure share {failure_share}");
}

#[test]
fn table_dump_roundtrip_preserves_measurements() {
    let scenario = Scenario::build(ScenarioConfig::with_domains(2_000));
    let config = PipelineConfig {
        bogus_dns_ppm: 0,
        now: scenario.now,
        threads: 2,
        ..Default::default()
    };

    // Archive the table like a RIS dump, reload, re-measure.
    let text = TableDump::to_string(&scenario.rib);
    let reloaded = TableDump::parse(&text).expect("own dump parses");
    assert_eq!(reloaded.len(), scenario.rib.len());

    let direct = Pipeline::new(
        &scenario.zones,
        &scenario.rib,
        &scenario.repository,
        config.clone(),
    )
    .run(&scenario.ranking);
    let replayed = Pipeline::new(&scenario.zones, &reloaded, &scenario.repository, config)
        .run(&scenario.ranking);

    assert_eq!(direct.domains.len(), replayed.domains.len());
    for (a, b) in direct.domains.iter().zip(&replayed.domains) {
        assert_eq!(a.bare.pairs, b.bare.pairs, "at rank {}", a.rank);
        assert_eq!(a.www.pairs, b.www.pairs, "at rank {}", a.rank);
        assert_eq!(a.bare.as_set_skipped, b.bare.as_set_skipped);
    }
}

#[test]
fn dns_noise_does_not_change_rpki_conclusions() {
    // The 0.07% bogus answers must not move the valid share measurably.
    let scenario = Scenario::build(ScenarioConfig::with_domains(8_000));
    let run_with = |ppm: u32| {
        let pipeline = Pipeline::new(
            &scenario.zones,
            &scenario.rib,
            &scenario.repository,
            PipelineConfig {
                bogus_dns_ppm: ppm,
                now: scenario.now,
                ..Default::default()
            },
        );
        let results = pipeline.run(&scenario.ranking);
        ripki_repro::ripki::figures::fig2_rpki_outcome(&results, 1_000)
            .valid
            .overall_mean()
            .unwrap()
    };
    let clean = run_with(0);
    let noisy = run_with(700);
    assert!(
        (clean - noisy).abs() < 0.005,
        "bogus answers shifted valid share: {clean} vs {noisy}"
    );
}
