//! Integration: topology/table coherence. Rebuilding the BGP table with
//! AS paths from actual policy routing changes the paths but not a
//! single measurement — and the rebuilt paths are genuine routes of the
//! scenario topology.

use ripki_repro::ripki::pipeline::{Pipeline, PipelineConfig};
use ripki_repro::ripki_bgp::topology::Relationship;
use ripki_repro::ripki_net::Asn;
use ripki_repro::ripki_websim::scenario::COLLECTOR_PEERS;
use ripki_repro::ripki_websim::{Scenario, ScenarioConfig};

#[test]
fn propagated_paths_preserve_measurements() {
    let scenario = Scenario::build(ScenarioConfig::with_domains(3_000));
    let realistic = scenario.rebuild_rib_with_propagated_paths();

    let config = PipelineConfig {
        bogus_dns_ppm: 0,
        now: scenario.now,
        threads: 2,
        ..Default::default()
    };
    let synthetic_results = Pipeline::new(
        &scenario.zones,
        &scenario.rib,
        &scenario.repository,
        config.clone(),
    )
    .run(&scenario.ranking);
    let realistic_results =
        Pipeline::new(&scenario.zones, &realistic, &scenario.repository, config)
            .run(&scenario.ranking);

    // Pair-for-pair identical measurements: prefixes, origins, states.
    for (a, b) in synthetic_results
        .domains
        .iter()
        .zip(&realistic_results.domains)
    {
        let mut pa = a.bare.pairs.clone();
        let mut pb = b.bare.pairs.clone();
        pa.sort_by_key(|p| (p.prefix, p.origin));
        pb.sort_by_key(|p| (p.prefix, p.origin));
        assert_eq!(pa, pb, "rank {}", a.rank);
    }
}

#[test]
fn propagated_paths_are_real_topology_walks() {
    let scenario = Scenario::build(ScenarioConfig::with_domains(2_000));
    let realistic = scenario.rebuild_rib_with_propagated_paths();
    let peers: Vec<Asn> = COLLECTOR_PEERS.iter().map(|p| Asn::new(*p)).collect();

    let mut checked = 0usize;
    for entry in realistic.iter().take(2_000) {
        let Some(_) = entry.path.origin().asn() else {
            continue;
        };
        assert!(peers.contains(&entry.peer));
        // Every consecutive hop pair is an actual topology edge, starting
        // from the peer itself.
        let hops: Vec<Asn> = std::iter::once(entry.peer)
            .chain(entry.path.segments().iter().flat_map(|s| match s {
                ripki_repro::ripki_bgp::path::Segment::Sequence(v) => v.clone(),
                ripki_repro::ripki_bgp::path::Segment::Set(v) => v.clone(),
            }))
            .collect();
        for w in hops.windows(2) {
            let rel = scenario.topology.relationship(w[0], w[1]);
            assert!(
                matches!(
                    rel,
                    Some(Relationship::Provider)
                        | Some(Relationship::Customer)
                        | Some(Relationship::Peer)
                ),
                "hop AS{}→AS{} is not a topology edge",
                w[0].value(),
                w[1].value()
            );
        }
        checked += 1;
    }
    assert!(checked > 500, "checked only {checked} entries");
}

#[test]
fn path_lengths_become_realistic() {
    // Synthetic paths are exactly 2 hops; propagated ones vary.
    let scenario = Scenario::build(ScenarioConfig::with_domains(2_000));
    let realistic = scenario.rebuild_rib_with_propagated_paths();
    let lengths: std::collections::BTreeSet<usize> = realistic
        .iter()
        .filter(|e| e.path.origin().asn().is_some())
        .map(|e| e.path.hop_count())
        .collect();
    assert!(
        lengths.len() > 1,
        "propagated paths should vary in length, got {lengths:?}"
    );
    assert!(*lengths.iter().max().unwrap() >= 3);
}
