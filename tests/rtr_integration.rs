//! Integration: the whole delivery chain of step 4 — repository →
//! cryptographic validation → RTR cache → router client — yields a
//! router-side validator that agrees exactly with the pipeline's own.

use ripki_repro::ripki::pipeline::{Pipeline, PipelineConfig};
use ripki_repro::ripki_bgp::rov::VrpTriple;
use ripki_repro::ripki_rpki::validate;
use ripki_repro::ripki_rtr::{CacheServer, Client};
use ripki_repro::ripki_websim::{Scenario, ScenarioConfig};
use std::os::unix::net::UnixStream;
use std::sync::Arc;

#[test]
fn router_via_rtr_agrees_with_pipeline_validator() {
    let scenario = Scenario::build(ScenarioConfig::with_domains(5_000));
    let report = validate(&scenario.repository, scenario.now);
    assert!(!report.vrps.is_empty());

    // Serve the validated VRPs over RTR.
    let cache = Arc::new(CacheServer::new(42));
    cache.update(report.vrps.iter().map(|v| VrpTriple {
        prefix: v.prefix,
        max_length: v.max_length,
        asn: v.asn,
    }));
    let (a, b) = UnixStream::pair().unwrap();
    let server = cache.clone();
    let handle = std::thread::spawn(move || {
        let _ = server.serve_connection(b);
    });
    let mut router = Client::new(a);
    router.sync().unwrap();
    assert_eq!(router.vrps().len(), report.vrps.len());
    let router_validator = router.to_validator();

    // The pipeline's internal validator and the router's RTR-fed one
    // classify every measured pair identically.
    let pipeline = Pipeline::new(
        &scenario.zones,
        &scenario.rib,
        &scenario.repository,
        PipelineConfig {
            bogus_dns_ppm: 0,
            now: scenario.now,
            ..Default::default()
        },
    );
    let results = pipeline.run(&scenario.ranking);
    let mut pairs_checked = 0usize;
    for d in &results.domains {
        for pair in d.bare.pairs.iter().chain(d.www.pairs.iter()) {
            let via_rtr = router_validator.validate(&pair.prefix, pair.origin);
            assert_eq!(via_rtr, pair.state, "disagreement on {pair:?}");
            pairs_checked += 1;
        }
    }
    assert!(pairs_checked > 1_000, "checked {pairs_checked} pairs");
    drop(router);
    let _ = handle.join();
}
