//! # ripki-repro
//!
//! Umbrella crate for the reproduction of *RiPKI: The Tragic Story of
//! RPKI Deployment in the Web Ecosystem* (Wählisch et al., ACM HotNets
//! 2015). It re-exports every workspace crate so that examples and
//! integration tests can address the whole system through one dependency:
//!
//! * [`ripki_net`] — prefixes, ASNs, tries, IANA registries;
//! * [`ripki_crypto`] — SHA-256, TLV encoding, simulated signatures;
//! * [`ripki_rpki`] — RPKI objects, repositories, top-down validation;
//! * [`ripki_bgp`] — RIBs, dumps, RFC 6811, topology + hijack simulation;
//! * [`ripki_dns`] — zones, resolver simulation, vantage points;
//! * [`ripki_rtr`] — the RPKI-to-Router protocol (RFC 6810);
//! * [`ripki_serve`] — the epoch-consistent HTTP query plane;
//! * [`ripki_websim`] — the calibrated synthetic web ecosystem;
//! * [`ripki`] — the paper's four-step measurement pipeline, figures,
//!   tables, and the CDN audit.
//!
//! See `README.md` for a quickstart and `DESIGN.md`/`EXPERIMENTS.md` for
//! the system inventory and the per-figure reproduction records.

pub use ripki;
pub use ripki_bgp;
pub use ripki_crypto;
pub use ripki_dns;
pub use ripki_net;
pub use ripki_rpki;
pub use ripki_rtr;
pub use ripki_serve;
pub use ripki_websim;

/// Convenience: build a scenario and run the full study engine at the
/// given scale with default calibration — what most examples start from.
pub fn run_default_study(
    domains: usize,
) -> (ripki_websim::Scenario, ripki::pipeline::StudyResults) {
    let scenario =
        ripki_websim::Scenario::build(ripki_websim::ScenarioConfig::with_domains(domains));
    let engine = ripki::engine::StudyEngine::new(
        scenario.zones.clone(),
        scenario.rib.clone(),
        &scenario.repository,
        ripki::pipeline::PipelineConfig {
            bogus_dns_ppm: scenario.config.bogus_dns_ppm,
            now: scenario.now,
            ..Default::default()
        },
    );
    let results = engine.run(&scenario.ranking);
    (scenario, results)
}

#[cfg(test)]
mod tests {
    #[test]
    fn run_default_study_smoke() {
        let (scenario, results) = super::run_default_study(500);
        assert_eq!(scenario.ranking.len(), 500);
        assert_eq!(results.domains.len(), 500);
    }
}
