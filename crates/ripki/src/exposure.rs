//! Hijack exposure of measured domains — the paper's two halves joined.
//!
//! §2.3 supplies the attacker model (prefix hijacking of web-server
//! infrastructure); §4 measures who is protected. This module composes
//! them: for measured domains, simulate origin hijacks of their actual
//! hosting prefixes on the scenario's real AS topology, under a partially
//! ROV-deployed world using the *measured* VRPs. The result is the
//! paper's tragedy as a single number per domain: the fraction of the
//! Internet an attacker captures.
//!
//! Because popular domains are less RPKI-covered (Fig 2) their expected
//! capture rate is *higher* — "prominent websites would be better
//! protected against routing attacks without CDNs".

use crate::pipeline::DomainMeasurement;
use crate::stats::BinnedSeries;
use ripki_bgp::hijack::{run, HijackScenario};
use ripki_bgp::rov::RouteOriginValidator;
use ripki_bgp::topology::Topology;
use ripki_net::Asn;
use std::collections::BTreeSet;

/// Configuration of the exposure experiment.
#[derive(Debug, Clone)]
pub struct ExposureConfig {
    /// Fraction of ASes deploying ROV (deterministically selected).
    pub rov_deployment: f64,
    /// Attackers sampled per domain (stub ASes, deterministic).
    pub attackers_per_domain: usize,
    /// Measure every `stride`-th domain (1 = all; exposure runs a full
    /// routing propagation per attacker, so sampling keeps cost linear).
    pub stride: usize,
    /// Seed for attacker/deployment selection.
    pub seed: u64,
    /// ASes that filter Invalids regardless of the sampled
    /// `rov_deployment` fraction — counterfactual levers ("operators of
    /// the top-k ranks drop Invalid routes") layered on top of the same
    /// deterministic base deployment so baseline and what-if runs stay
    /// comparable.
    pub extra_deployers: Vec<Asn>,
}

impl Default for ExposureConfig {
    fn default() -> ExposureConfig {
        ExposureConfig {
            rov_deployment: 0.5,
            attackers_per_domain: 3,
            stride: 50,
            seed: 7,
            extra_deployers: Vec::new(),
        }
    }
}

/// Per-domain outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct DomainExposure {
    /// Rank of the domain.
    pub rank: usize,
    /// Mean capture rate over the sampled attackers (0 = fully defended).
    pub capture_rate: f64,
    /// Whether the domain's measured pairs were all RPKI-covered.
    pub fully_covered: bool,
}

/// Run the exposure experiment over measured domains.
///
/// Domains whose measurement produced no usable (prefix, origin) pair,
/// or whose origin AS is not in the topology, are skipped.
pub fn exposure_curve(
    domains: &[DomainMeasurement],
    topology: &Topology,
    validator: &RouteOriginValidator,
    config: &ExposureConfig,
) -> Vec<DomainExposure> {
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xe9_05_u64);
    // Deterministic ROV deployment set.
    let mut asns: Vec<Asn> = topology.asns().collect();
    asns.shuffle(&mut rng);
    let n_deploy = ((asns.len() as f64) * config.rov_deployment).round() as usize;
    let mut deployed: BTreeSet<Asn> = asns.iter().take(n_deploy).copied().collect();
    deployed.extend(config.extra_deployers.iter().copied());
    // Attacker pool: stub ASes.
    let stubs: Vec<Asn> = topology
        .iter()
        .filter(|(_, node)| node.is_stub())
        .map(|(asn, _)| asn)
        .collect();
    if stubs.is_empty() {
        return Vec::new();
    }

    let mut out = Vec::new();
    for d in domains.iter().step_by(config.stride.max(1)) {
        let Some(pair) = d.bare.pairs.first() else {
            continue;
        };
        let victim = pair.origin;
        if !topology.contains(victim) {
            continue;
        }
        let mut rates = Vec::new();
        for k in 0..config.attackers_per_domain {
            let attacker = stubs[(d.rank * 31 + k * 7 + config.seed as usize) % stubs.len()];
            if attacker == victim {
                continue;
            }
            let scenario = HijackScenario::origin_hijack(victim, attacker, pair.prefix);
            let outcome = run(topology, &scenario, validator, &deployed);
            rates.push(outcome.capture_rate());
        }
        if rates.is_empty() {
            continue;
        }
        let capture_rate = rates.iter().sum::<f64>() / rates.len() as f64;
        let fully_covered = d.bare.covered_fraction() == Some(1.0);
        out.push(DomainExposure {
            rank: d.rank,
            capture_rate,
            fully_covered,
        });
    }
    out
}

/// Bin the exposure curve like the figures.
pub fn binned(exposures: &[DomainExposure], total: usize, bin: usize) -> BinnedSeries {
    BinnedSeries::from_samples(
        exposures.iter().map(|e| (e.rank, Some(e.capture_rate))),
        total,
        bin,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{NameMeasurement, PairState};
    use ripki_bgp::rov::{RpkiState, VrpTriple};
    use ripki_dns::DomainName;
    use ripki_net::IpPrefix;

    fn topology() -> Topology {
        Topology::generate(3, 3, 10, 60, 0.1)
    }

    fn dm(rank: usize, prefix: &str, origin: u32, state: RpkiState) -> DomainMeasurement {
        DomainMeasurement {
            rank,
            listed: DomainName::parse(&format!("d{rank}.example")).unwrap(),
            www: NameMeasurement::default(),
            bare: NameMeasurement {
                pairs: vec![PairState {
                    prefix: prefix.parse().unwrap(),
                    origin: Asn::new(origin),
                    state,
                }],
                ..Default::default()
            },
        }
    }

    #[test]
    fn covered_domains_are_less_exposed_under_rov() {
        let topo = topology();
        let prefix: IpPrefix = "85.1.0.0/16".parse().unwrap();
        // Victim AS 10_000 (a stub) is ROA-covered; AS 10_001 is not.
        let validator = RouteOriginValidator::from_vrps([VrpTriple {
            prefix,
            max_length: 16,
            asn: Asn::new(10_000),
        }]);
        let domains = vec![
            dm(0, "85.1.0.0/16", 10_000, RpkiState::Valid),
            dm(1, "85.2.0.0/16", 10_001, RpkiState::NotFound),
        ];
        let config = ExposureConfig {
            rov_deployment: 1.0,
            attackers_per_domain: 4,
            stride: 1,
            seed: 1,
            ..Default::default()
        };
        let exposures = exposure_curve(&domains, &topo, &validator, &config);
        assert_eq!(exposures.len(), 2);
        let covered = &exposures[0];
        let uncovered = &exposures[1];
        assert!(covered.fully_covered);
        assert_eq!(covered.capture_rate, 0.0, "full ROV + ROA = defended");
        assert!(!uncovered.fully_covered);
        assert!(uncovered.capture_rate > 0.0, "no ROA = still hijackable");
    }

    #[test]
    fn zero_rov_deployment_leaves_everyone_exposed() {
        let topo = topology();
        let prefix: IpPrefix = "85.1.0.0/16".parse().unwrap();
        let validator = RouteOriginValidator::from_vrps([VrpTriple {
            prefix,
            max_length: 16,
            asn: Asn::new(10_000),
        }]);
        let domains = vec![dm(0, "85.1.0.0/16", 10_000, RpkiState::Valid)];
        let config = ExposureConfig {
            rov_deployment: 0.0,
            attackers_per_domain: 3,
            stride: 1,
            seed: 2,
            ..Default::default()
        };
        let exposures = exposure_curve(&domains, &topo, &validator, &config);
        assert!(exposures[0].capture_rate > 0.0, "ROA without ROV is inert");
    }

    #[test]
    fn extra_deployers_filter_on_top_of_the_sampled_fraction() {
        let topo = topology();
        let prefix: IpPrefix = "85.1.0.0/16".parse().unwrap();
        let validator = RouteOriginValidator::from_vrps([VrpTriple {
            prefix,
            max_length: 16,
            asn: Asn::new(10_000),
        }]);
        let domains = vec![dm(0, "85.1.0.0/16", 10_000, RpkiState::Valid)];
        let base = ExposureConfig {
            rov_deployment: 0.0,
            attackers_per_domain: 3,
            stride: 1,
            seed: 2,
            ..Default::default()
        };
        let exposed = exposure_curve(&domains, &topo, &validator, &base);
        // Same config, but every AS additionally drops Invalids: the
        // counterfactual lever alone must flip the outcome.
        let config = ExposureConfig {
            extra_deployers: topo.asns().collect(),
            ..base
        };
        let defended = exposure_curve(&domains, &topo, &validator, &config);
        assert!(exposed[0].capture_rate > 0.0);
        assert_eq!(defended[0].capture_rate, 0.0, "extra deployers filter");
    }

    #[test]
    fn skips_unmeasurable_domains() {
        let topo = topology();
        let validator = RouteOriginValidator::new();
        let empty = DomainMeasurement {
            rank: 0,
            listed: DomainName::parse("x.example").unwrap(),
            www: NameMeasurement::default(),
            bare: NameMeasurement::default(),
        };
        let off_topology = dm(1, "9.9.0.0/16", 4_000_000, RpkiState::NotFound);
        let exposures = exposure_curve(
            &[empty, off_topology],
            &topo,
            &validator,
            &ExposureConfig {
                stride: 1,
                ..Default::default()
            },
        );
        assert!(exposures.is_empty());
    }

    #[test]
    fn stride_samples() {
        let topo = topology();
        let validator = RouteOriginValidator::new();
        let domains: Vec<DomainMeasurement> = (0..10)
            .map(|r| dm(r, "85.1.0.0/16", 10_000, RpkiState::NotFound))
            .collect();
        let exposures = exposure_curve(
            &domains,
            &topo,
            &validator,
            &ExposureConfig {
                stride: 4,
                attackers_per_domain: 1,
                ..Default::default()
            },
        );
        assert_eq!(exposures.len(), 3); // ranks 0, 4, 8
        let series = binned(&exposures, 10, 5);
        assert_eq!(series.len(), 2);
    }
}
