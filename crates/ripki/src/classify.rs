//! CDN classification (paper §4.3).
//!
//! Two independent classifiers, compared in Fig 3:
//!
//! * [`cname_chain_is_cdn`] — the paper's own heuristic: "We say a domain
//!   is served by a CDN, if the IP address of its domain name is
//!   indirectly accessed via two or more CNAMEs." Conservative: misses
//!   single-CNAME and direct-A CDN deployments.
//! * [`HttpArchiveClassifier`] — the cross-check: "HTTPArchive classifies
//!   the first 300k Alexa domains based on DNS pattern matching of
//!   CNAMEs", from a geographically distinct vantage (Redwood City).

use crate::pipeline::DomainMeasurement;
use ripki_dns::resolver::Resolver;
use ripki_dns::vantage::Vantage;
use ripki_dns::zone::ZoneStore;
use ripki_dns::DomainName;

/// HTTPArchive's classification covered only the first 300k ranks.
pub const HTTPARCHIVE_LIMIT: usize = 300_000;

/// The paper's CNAME-chain heuristic over a measured domain: CDN-served
/// iff either name form needed ≥ `threshold` DNS indirections
/// (paper value: 2).
pub fn cname_chain_is_cdn(m: &DomainMeasurement, threshold: usize) -> bool {
    m.www.indirections() >= threshold || m.bare.indirections() >= threshold
}

/// An HTTPArchive-style classifier: pattern matching of CNAME targets
/// against known CDN domain suffixes, resolved from its own vantage.
pub struct HttpArchiveClassifier<'z> {
    zones: &'z ZoneStore,
    patterns: Vec<String>,
    vantage: Vantage,
    /// Rank limit (HTTPArchive covered 300k; tests may shrink it).
    pub limit: usize,
}

impl<'z> HttpArchiveClassifier<'z> {
    /// Build a classifier with the given CDN suffix patterns (e.g.
    /// `"akamai-sim.net"`).
    pub fn new(zones: &'z ZoneStore, patterns: Vec<String>) -> HttpArchiveClassifier<'z> {
        HttpArchiveClassifier {
            zones,
            patterns: patterns
                .into_iter()
                .map(|p| p.to_ascii_lowercase())
                .collect(),
            vantage: Vantage::HTTPARCHIVE_REDWOOD,
            limit: HTTPARCHIVE_LIMIT,
        }
    }

    /// Whether a CNAME target matches any CDN pattern.
    fn matches_pattern(&self, name: &DomainName) -> bool {
        self.patterns.iter().any(|p| name.has_suffix(p))
    }

    /// Classify one domain: `None` if out of coverage (rank ≥ limit),
    /// otherwise whether any CNAME in either name form's chain matches a
    /// CDN pattern.
    pub fn classify(&self, rank: usize, listed: &DomainName) -> Option<bool> {
        if rank >= self.limit {
            return None;
        }
        let resolver = Resolver::new(self.zones, self.vantage);
        let bare = listed.without_www();
        let www = bare.with_www();
        let mut is_cdn = false;
        for name in [&www, &bare] {
            if let Ok(res) = resolver.resolve(name) {
                if res.cname_chain.iter().any(|c| self.matches_pattern(c)) {
                    is_cdn = true;
                }
            }
        }
        Some(is_cdn)
    }
}

/// Precision/recall of a classifier against ground truth — used by the
/// threshold ablation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClassifierScore {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
    /// True negatives.
    pub tn: usize,
}

impl ClassifierScore {
    /// Add one (predicted, actual) observation.
    pub fn observe(&mut self, predicted: bool, actual: bool) {
        match (predicted, actual) {
            (true, true) => self.tp += 1,
            (true, false) => self.fp += 1,
            (false, true) => self.fn_ += 1,
            (false, false) => self.tn += 1,
        }
    }

    /// Precision (1.0 when no positives were predicted).
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall (1.0 when there were no actual positives).
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::NameMeasurement;

    fn n(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    fn measurement(www_chain: &[&str], bare_chain: &[&str]) -> DomainMeasurement {
        let chain = |names: &[&str]| NameMeasurement {
            cname_chain: names.iter().map(|s| n(s)).collect(),
            ..Default::default()
        };
        DomainMeasurement {
            rank: 0,
            listed: n("x.example"),
            www: chain(www_chain),
            bare: chain(bare_chain),
        }
    }

    #[test]
    fn chain_heuristic_threshold() {
        let two = measurement(&["a.cdn.net", "edge.cdn.net"], &[]);
        assert!(cname_chain_is_cdn(&two, 2));
        let one = measurement(&["edge.cdn.net"], &[]);
        assert!(!cname_chain_is_cdn(&one, 2));
        assert!(cname_chain_is_cdn(&one, 1));
        let none = measurement(&[], &[]);
        assert!(!cname_chain_is_cdn(&none, 1));
        // Either form suffices.
        let bare_only = measurement(&[], &["a.cdn.net", "b.cdn.net"]);
        assert!(cname_chain_is_cdn(&bare_only, 2));
    }

    fn zones() -> ZoneStore {
        let mut z = ZoneStore::new();
        // CDN chain visible from the HTTPArchive vantage.
        z.add_cname(n("www.shop.example"), n("shop.edgesuite.akamai-sim.net"));
        z.add_cname(n("shop.edgesuite.akamai-sim.net"), n("a9.g.akamai-sim.net"));
        z.add_addr(n("a9.g.akamai-sim.net"), "8.8.8.8".parse().unwrap());
        z.add_addr(n("shop.example"), "9.9.9.9".parse().unwrap());
        // Plain host.
        z.add_addr(n("plain.example"), "9.9.9.1".parse().unwrap());
        z.add_addr(n("www.plain.example"), "9.9.9.1".parse().unwrap());
        // Single CNAME into CDN space: pattern classifier catches it,
        // chain-length-2 heuristic would not.
        z.add_cname(n("www.single.example"), n("e1.g.cloudflare-sim.net"));
        z.add_addr(n("e1.g.cloudflare-sim.net"), "7.7.7.7".parse().unwrap());
        z.add_addr(n("single.example"), "7.7.7.8".parse().unwrap());
        z
    }

    #[test]
    fn httparchive_matches_patterns() {
        let z = zones();
        let c = HttpArchiveClassifier::new(
            &z,
            vec!["akamai-sim.net".into(), "cloudflare-sim.net".into()],
        );
        assert_eq!(c.classify(0, &n("shop.example")), Some(true));
        assert_eq!(c.classify(1, &n("plain.example")), Some(false));
        assert_eq!(c.classify(2, &n("single.example")), Some(true));
    }

    #[test]
    fn httparchive_limit_respected() {
        let z = zones();
        let mut c = HttpArchiveClassifier::new(&z, vec!["akamai-sim.net".into()]);
        c.limit = 2;
        assert!(c.classify(1, &n("shop.example")).is_some());
        assert_eq!(c.classify(2, &n("shop.example")), None);
    }

    #[test]
    fn pattern_match_respects_label_boundaries() {
        let z = {
            let mut z = ZoneStore::new();
            z.add_cname(n("www.t.example"), n("notakamai-sim.net"));
            z.add_addr(n("notakamai-sim.net"), "5.5.5.5".parse().unwrap());
            z.add_addr(n("t.example"), "5.5.5.6".parse().unwrap());
            z
        };
        let c = HttpArchiveClassifier::new(&z, vec!["akamai-sim.net".into()]);
        assert_eq!(c.classify(0, &n("t.example")), Some(false));
    }

    #[test]
    fn classifier_score_math() {
        let mut s = ClassifierScore::default();
        s.observe(true, true);
        s.observe(true, true);
        s.observe(true, false);
        s.observe(false, true);
        s.observe(false, false);
        assert_eq!(s.tp, 2);
        assert!((s.precision() - 2.0 / 3.0).abs() < 1e-9);
        assert!((s.recall() - 2.0 / 3.0).abs() < 1e-9);
        let empty = ClassifierScore::default();
        assert_eq!(empty.precision(), 1.0);
        assert_eq!(empty.recall(), 1.0);
    }
}
