//! # ripki
//!
//! The RiPKI measurement methodology (Wählisch et al., HotNets 2015, §3),
//! implemented over the workspace's substrates:
//!
//! 1. **Selecting domain names** — the ranked list (an Alexa stand-in
//!    from `ripki-websim`, or any list you provide).
//! 2. **Mapping domains to IP addresses** — resolve each name and its
//!    `www` twin via `ripki-dns`, exclude IANA special-purpose answers.
//! 3. **Mapping IP addresses to prefixes and ASNs** — all covering
//!    prefixes from the BGP table, right-most-ASN origins, `AS_SET`
//!    entries excluded (`ripki-bgp`).
//! 4. **RPKI validation** — RFC 6811 against the VRPs produced by
//!    cryptographic validation of the repository (`ripki-rpki`).
//!
//! On top of the pipeline ([`pipeline`]):
//!
//! * [`stats`] — the 10k-domain binning used by every figure;
//! * [`classify`] — the CNAME-chain CDN heuristic and the
//!   HTTPArchive-style pattern classifier (Fig 3);
//! * [`figures`] / [`tables`] — builders regenerating Figures 1–4 and
//!   Table 1;
//! * [`cdn_audit`] — §4.2's keyword-spotting audit of CDN ASes;
//! * [`report`] — headline statistics and CSV/JSON export.
//!
//! The measurement core is the snapshot-based [`engine`]: an
//! `Arc`-shared, epoch-versioned `WorldSnapshot` owned by a
//! `StudyEngine`, with memoized CNAME-tail resolution and panic-tolerant
//! sharded runs — a 1M-domain study is embarrassingly parallel.
//! [`pipeline`] keeps the result types and a borrow-compatible façade.

pub mod cdn_audit;
pub mod classify;
pub mod engine;
pub mod exposure;
pub mod figures;
pub mod model;
pub mod pipeline;
pub mod report;
pub mod stats;
pub mod tables;

pub use engine::{EngineError, EpochDelta, StudyEngine, WorldSnapshot};
pub use model::{DomainMeasurement, NameMeasurement, PairState, PipelineConfig, StudyResults};
pub use pipeline::Pipeline;
pub use report::HeadlineStats;
pub use stats::BinnedSeries;
