//! The §4.2 CDN audit: keyword spotting on AS assignment lists joined
//! against the RPKI.
//!
//! "To derive the AS numbers of these CDNs, we apply keyword spotting on
//! common AS assignment lists. […] We discover 199 ASes operated by these
//! CDNs. From these, we find only four entries in the RPKI. These four
//! prefixes are owned by Internap and are tied to three origin ASes."
//! The audit also computes the contrast class: "web hosters or common
//! ISPs … have far higher levels of penetration (> 5%)."

use ripki_net::{Asn, IpPrefix};
use ripki_rpki::validate::Vrp;
use ripki_websim::operators::OperatorClass;
use ripki_websim::registry::AsRegistry;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Audit result for one CDN keyword.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CdnAuditRow {
    /// The keyword searched (CDN name).
    pub cdn: String,
    /// ASes matched by keyword spotting.
    pub as_count: usize,
    /// RPKI entries (VRP prefixes) originated by those ASes.
    pub rpki_prefixes: Vec<IpPrefix>,
    /// Distinct origin ASes among those entries.
    pub origin_asns: BTreeSet<Asn>,
}

impl fmt::Display for CdnAuditRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<12} {:>4} ASes, {:>3} RPKI prefixes, {:>2} origin ASes",
            self.cdn,
            self.as_count,
            self.rpki_prefixes.len(),
            self.origin_asns.len(),
        )
    }
}

/// Run the keyword audit for the given CDN names.
pub fn audit_cdns(registry: &AsRegistry, vrps: &[Vrp], cdn_names: &[&str]) -> Vec<CdnAuditRow> {
    cdn_names
        .iter()
        .map(|name| {
            let asns: BTreeSet<Asn> = registry.search(name).into_iter().collect();
            let mut rpki_prefixes: Vec<IpPrefix> = Vec::new();
            let mut origin_asns = BTreeSet::new();
            for vrp in vrps {
                if asns.contains(&vrp.asn) {
                    rpki_prefixes.push(vrp.prefix);
                    origin_asns.insert(vrp.asn);
                }
            }
            rpki_prefixes.sort();
            rpki_prefixes.dedup();
            CdnAuditRow {
                cdn: name.to_string(),
                as_count: asns.len(),
                rpki_prefixes,
                origin_asns,
            }
        })
        .collect()
}

/// Penetration of a class: fraction of its ASes originating at least one
/// VRP (the paper's ">5%" for ISPs/webhosters).
pub fn class_penetration(registry: &AsRegistry, vrps: &[Vrp], class: OperatorClass) -> f64 {
    let asns = registry.asns_of_class(class);
    if asns.is_empty() {
        return 0.0;
    }
    let with_roa: BTreeSet<Asn> = vrps.iter().map(|v| v.asn).collect();
    let covered = asns.iter().filter(|a| with_roa.contains(a)).count();
    covered as f64 / asns.len() as f64
}

/// Summary over all audited CDNs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CdnAuditSummary {
    /// Total ASes found by keyword spotting (paper: 199).
    pub total_cdn_asns: usize,
    /// Total RPKI entries across the audited CDNs (paper: 4).
    pub total_rpki_entries: usize,
    /// CDNs with at least one entry (paper: only Internap).
    pub cdns_with_deployment: Vec<String>,
    /// ISP penetration (paper: > 5%).
    pub isp_penetration: f64,
    /// Webhoster penetration (paper: > 5%).
    pub webhoster_penetration: f64,
}

/// Compute the summary.
pub fn summarize(rows: &[CdnAuditRow], registry: &AsRegistry, vrps: &[Vrp]) -> CdnAuditSummary {
    CdnAuditSummary {
        total_cdn_asns: rows.iter().map(|r| r.as_count).sum(),
        total_rpki_entries: rows.iter().map(|r| r.rpki_prefixes.len()).sum(),
        cdns_with_deployment: rows
            .iter()
            .filter(|r| !r.rpki_prefixes.is_empty())
            .map(|r| r.cdn.clone())
            .collect(),
        isp_penetration: class_penetration(registry, vrps, OperatorClass::Isp),
        webhoster_penetration: class_penetration(registry, vrps, OperatorClass::Webhoster),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripki_websim::operators::OperatorId;
    use ripki_websim::registry::AsInfo;

    fn registry() -> AsRegistry {
        let mut r = AsRegistry::new();
        for (asn, name, class) in [
            (100u32, "INTERNAP-SIM-1, Internap Inc.", OperatorClass::Cdn),
            (101, "INTERNAP-SIM-2, Internap Inc.", OperatorClass::Cdn),
            (200, "AKAMAI-SIM-1, Akamai Inc.", OperatorClass::Cdn),
            (300, "ISP-0-NET-1, ISP-0 Telecom", OperatorClass::Isp),
            (301, "ISP-1-NET-1, ISP-1 Telecom", OperatorClass::Isp),
            (
                400,
                "HOSTER-0-NET-1, HOSTER-0 Hosting GmbH",
                OperatorClass::Webhoster,
            ),
        ] {
            r.insert(
                Asn::new(asn),
                AsInfo {
                    name: name.into(),
                    operator: OperatorId(asn),
                    class,
                    rir: 0,
                },
            );
        }
        r
    }

    fn vrp(prefix: &str, asn: u32) -> Vrp {
        Vrp {
            prefix: prefix.parse().unwrap(),
            max_length: 16,
            asn: Asn::new(asn),
        }
    }

    #[test]
    fn keyword_audit_counts_entries() {
        let reg = registry();
        let vrps = vec![
            vrp("9.0.0.0/16", 100),
            vrp("9.1.0.0/16", 100),
            vrp("9.2.0.0/16", 101),
            vrp("77.0.0.0/16", 300), // ISP, not a CDN match
        ];
        let rows = audit_cdns(&reg, &vrps, &["Internap", "Akamai", "Cloudflare"]);
        assert_eq!(rows[0].as_count, 2);
        assert_eq!(rows[0].rpki_prefixes.len(), 3);
        assert_eq!(rows[0].origin_asns.len(), 2);
        assert_eq!(rows[1].as_count, 1);
        assert!(rows[1].rpki_prefixes.is_empty());
        assert_eq!(rows[2].as_count, 0);
    }

    #[test]
    fn penetration_math() {
        let reg = registry();
        let vrps = vec![vrp("77.0.0.0/16", 300), vrp("78.0.0.0/16", 400)];
        assert!((class_penetration(&reg, &vrps, OperatorClass::Isp) - 0.5).abs() < 1e-9);
        assert!((class_penetration(&reg, &vrps, OperatorClass::Webhoster) - 1.0).abs() < 1e-9);
        assert_eq!(class_penetration(&reg, &[], OperatorClass::Isp), 0.0);
        assert_eq!(
            class_penetration(&reg, &vrps, OperatorClass::Enterprise),
            0.0
        );
    }

    #[test]
    fn summary_identifies_deployers() {
        let reg = registry();
        let vrps = vec![vrp("9.0.0.0/16", 100)];
        let rows = audit_cdns(&reg, &vrps, &["Internap", "Akamai"]);
        let s = summarize(&rows, &reg, &vrps);
        assert_eq!(s.total_cdn_asns, 3);
        assert_eq!(s.total_rpki_entries, 1);
        assert_eq!(s.cdns_with_deployment, vec!["Internap".to_string()]);
    }

    #[test]
    fn duplicate_vrp_prefixes_deduplicated() {
        let reg = registry();
        let vrps = vec![vrp("9.0.0.0/16", 100), vrp("9.0.0.0/16", 100)];
        let rows = audit_cdns(&reg, &vrps, &["Internap"]);
        assert_eq!(rows[0].rpki_prefixes.len(), 1);
    }

    #[test]
    fn row_display() {
        let reg = registry();
        let rows = audit_cdns(&reg, &[], &["Akamai"]);
        let s = rows[0].to_string();
        assert!(s.contains("Akamai"));
        assert!(s.contains("1 ASes"));
    }
}
