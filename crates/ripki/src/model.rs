//! The measurement data model: per-name, per-domain, and study-wide
//! result types plus the pipeline configuration.
//!
//! Extracted from `pipeline.rs` so the engine, the façade, the report
//! writers, and the incremental-update machinery all share one
//! definition of what a measurement *is*. The types are deliberately
//! dumb data: all production logic lives in [`crate::engine`].

use ripki_bgp::rov::RpkiState;
use ripki_dns::vantage::Vantage;
use ripki_dns::DomainName;
use ripki_net::{Asn, IpPrefix};
use ripki_rpki::time::SimTime;
use serde::{Deserialize, Serialize};
use std::net::IpAddr;

/// One (covering prefix, origin AS) pair with its RFC 6811 state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PairState {
    /// The covering prefix found in the table dump.
    pub prefix: IpPrefix,
    /// Its origin AS.
    pub origin: Asn,
    /// Validation outcome.
    pub state: RpkiState,
}

/// Step 2–4 results for one name form (`www` or bare).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NameMeasurement {
    /// Addresses kept after excluding special-purpose answers.
    pub addresses: Vec<IpAddr>,
    /// Special-purpose answers discarded (the paper's "incorrect DNS
    /// answers", 0.07%).
    pub excluded_invalid: usize,
    /// Addresses with no covering prefix in the table (the paper's
    /// "0.01% … not reachable from our BGP vantage points").
    pub unreachable: usize,
    /// CNAME chain traversed during resolution.
    pub cname_chain: Vec<DomainName>,
    /// Distinct (prefix, origin) pairs with validation state.
    pub pairs: Vec<PairState>,
    /// Table entries skipped because their origin was an `AS_SET`.
    pub as_set_skipped: usize,
    /// Resolution failed entirely (NXDOMAIN etc.).
    pub resolve_failed: bool,
    /// Whether the resolution was DNSSEC-authenticated end to end
    /// (extension: the paper's future-work DNSSEC comparison).
    #[serde(default)]
    pub dnssec_authenticated: bool,
}

impl NameMeasurement {
    /// Distinct prefixes among the pairs.
    pub fn prefixes(&self) -> Vec<IpPrefix> {
        let mut v: Vec<IpPrefix> = self.pairs.iter().map(|p| p.prefix).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Fraction of pairs in `state` (`None` if no pairs — the paper
    /// assigns per-domain probabilities like "3/5 RPKI coverage").
    pub fn state_fraction(&self, state: RpkiState) -> Option<f64> {
        if self.pairs.is_empty() {
            return None;
        }
        let n = self.pairs.iter().filter(|p| p.state == state).count();
        Some(n as f64 / self.pairs.len() as f64)
    }

    /// Fraction of pairs covered by the RPKI (Valid or Invalid) — the
    /// paper's "RPKI coverage" of a name.
    pub fn covered_fraction(&self) -> Option<f64> {
        self.state_fraction(RpkiState::NotFound).map(|nf| 1.0 - nf)
    }

    /// Covered/total prefix counts as printed in Table 1, e.g. `(1, 3)`.
    pub fn coverage_counts(&self) -> (usize, usize) {
        let covered = self
            .pairs
            .iter()
            .filter(|p| p.state != RpkiState::NotFound)
            .count();
        (covered, self.pairs.len())
    }

    /// DNS indirection count (the CDN heuristic input).
    pub fn indirections(&self) -> usize {
        self.cname_chain.len()
    }
}

/// Full measurement of one ranked domain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DomainMeasurement {
    /// Rank in the input list (0-based).
    pub rank: usize,
    /// The name as listed.
    pub listed: DomainName,
    /// Measurement of the `www.`-prefixed form.
    pub www: NameMeasurement,
    /// Measurement of the bare ("w/o www") form.
    pub bare: NameMeasurement,
}

impl DomainMeasurement {
    /// Whether both name forms mapped to exactly equal prefix sets
    /// (Fig 1's quantity).
    pub fn equal_prefixes(&self) -> bool {
        self.www.prefixes() == self.bare.prefixes()
    }
}

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Resolver vantage (the paper's default: Google DNS from Berlin).
    pub vantage: Vantage,
    /// DNS corruption rate in ppm (700 = the paper's 0.07%).
    pub bogus_dns_ppm: u32,
    /// Seed for the deterministic DNS corruption.
    pub dns_fault_seed: u64,
    /// Simulated instant at which the RPKI is validated.
    pub now: SimTime,
    /// Number of worker threads (0 = available parallelism). An
    /// explicit value is honored as given; see
    /// [`worker_threads`](Self::worker_threads).
    pub threads: usize,
    /// When an incremental `apply_events` finds more affected ranks
    /// than this, it abandons the per-rank re-measure and falls back to
    /// the sharded full-run path (`None` = always incremental). A
    /// massive churn batch re-measured rank by rank would be slower
    /// than a full run; the two paths are equivalence-tested.
    pub full_remeasure_threshold: Option<usize>,
    /// Test-only fault hook: measuring this listed domain panics,
    /// exercising the skip-and-count isolation path that a real
    /// measurement bug would hit. `None` (the default) in production.
    pub poison_domain: Option<DomainName>,
}

impl PipelineConfig {
    /// The worker count every parallel plane actually uses — the
    /// sharded full run, the incremental validator's execute stage, and
    /// the incremental re-measure all read this one knob.
    ///
    /// The `RIPKI_THREADS` environment variable, when set to a positive
    /// integer, overrides the configured value (`RIPKI_THREADS=0`
    /// forces auto-detection). Otherwise an explicit `threads` value is
    /// taken at face value — callers who ask for 256 workers get 256.
    /// Only the auto-detected path (`threads == 0`) is clamped to 64:
    /// `available_parallelism` on very wide machines would otherwise
    /// spawn far more workers than the sharding can keep busy.
    pub fn worker_threads(&self) -> usize {
        let configured = std::env::var("RIPKI_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(self.threads);
        if configured > 0 {
            configured
        } else {
            std::thread::available_parallelism()
                .map_or(4, std::num::NonZero::get)
                .clamp(1, 64)
        }
    }
}

impl Default for PipelineConfig {
    fn default() -> PipelineConfig {
        PipelineConfig {
            vantage: Vantage::GOOGLE_DNS_BERLIN,
            bogus_dns_ppm: 700,
            dns_fault_seed: 0x0ddf_a017,
            now: SimTime::start_of_study(),
            threads: 0,
            full_remeasure_threshold: None,
            poison_domain: None,
        }
    }
}

/// Aggregate study output.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StudyResults {
    /// Per-domain measurements in rank order.
    pub domains: Vec<DomainMeasurement>,
    /// Count of VRPs used for validation.
    pub vrp_count: usize,
    /// Objects rejected during cryptographic RPKI validation.
    pub rpki_rejected: usize,
    /// Epoch of the snapshot that produced (or last revalidated) these
    /// results; 0 for hand-built results.
    pub epoch: u64,
    /// Ranks whose measurement panicked and was skipped (empty on a
    /// healthy run).
    pub skipped: Vec<usize>,
}
