//! Figure builders: the exact per-bin series of the paper's four graphs.

use crate::classify::{cname_chain_is_cdn, HttpArchiveClassifier};
use crate::pipeline::StudyResults;
use crate::stats::BinnedSeries;
use ripki_bgp::rov::RpkiState;
use serde::{Deserialize, Serialize};

/// Figure 1: fraction of domains whose `www` and bare forms map to equal
/// prefix sets, per rank bin.
pub fn fig1_www_overlap(results: &StudyResults, bin: usize) -> BinnedSeries {
    let total = results.domains.len();
    BinnedSeries::from_samples(
        results.domains.iter().map(|d| {
            // Only domains where both forms produced prefixes count.
            if d.www.pairs.is_empty() && d.bare.pairs.is_empty() {
                (d.rank, None)
            } else {
                (d.rank, Some(if d.equal_prefixes() { 1.0 } else { 0.0 }))
            }
        }),
        total,
        bin,
    )
}

/// Figure 2: the three RFC 6811 outcome series (per-domain probabilities
/// for the bare name form, as the paper's per-domain "RPKI coverage").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig2Series {
    /// Mean fraction of valid pairs per bin.
    pub valid: BinnedSeries,
    /// Mean fraction of invalid pairs per bin.
    pub invalid: BinnedSeries,
    /// Mean fraction of uncovered pairs per bin.
    pub not_found: BinnedSeries,
}

/// Build Figure 2.
pub fn fig2_rpki_outcome(results: &StudyResults, bin: usize) -> Fig2Series {
    let total = results.domains.len();
    let series = |state: RpkiState| {
        BinnedSeries::from_samples(
            results
                .domains
                .iter()
                .map(|d| (d.rank, d.bare.state_fraction(state))),
            total,
            bin,
        )
    };
    Fig2Series {
        valid: series(RpkiState::Valid),
        invalid: series(RpkiState::Invalid),
        not_found: series(RpkiState::NotFound),
    }
}

/// Figure 3: CDN share per bin as seen by the two classifiers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3Series {
    /// The paper's CNAME-chain (≥2 indirections) heuristic.
    pub cname_heuristic: BinnedSeries,
    /// The HTTPArchive pattern classifier (first 300k ranks only).
    pub httparchive: BinnedSeries,
}

/// Build Figure 3. `classifier` supplies the HTTPArchive side; pass the
/// scenario's CDN patterns to construct it.
pub fn fig3_cdn_popularity(
    results: &StudyResults,
    classifier: &HttpArchiveClassifier<'_>,
    bin: usize,
) -> Fig3Series {
    let total = results.domains.len();
    let cname_heuristic = BinnedSeries::from_samples(
        results.domains.iter().map(|d| {
            (
                d.rank,
                Some(if cname_chain_is_cdn(d, 2) { 1.0 } else { 0.0 }),
            )
        }),
        total,
        bin,
    );
    let httparchive = BinnedSeries::from_samples(
        results.domains.iter().map(|d| {
            let verdict = classifier
                .classify(d.rank, &d.listed)
                .map(|c| if c { 1.0 } else { 0.0 });
            (d.rank, verdict)
        }),
        total,
        bin,
    );
    Fig3Series {
        cname_heuristic,
        httparchive,
    }
}

/// Figure 4: RPKI-enabled share per bin, overall vs CDN-hosted only.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4Series {
    /// All domains: mean covered fraction (Valid or Invalid).
    pub rpki_enabled: BinnedSeries,
    /// Only domains the CNAME heuristic classifies as CDN-hosted.
    pub rpki_enabled_on_cdns: BinnedSeries,
}

/// Build Figure 4.
pub fn fig4_rpki_on_cdns(results: &StudyResults, bin: usize) -> Fig4Series {
    let total = results.domains.len();
    let rpki_enabled = BinnedSeries::from_samples(
        results
            .domains
            .iter()
            .map(|d| (d.rank, d.bare.covered_fraction())),
        total,
        bin,
    );
    let rpki_enabled_on_cdns = BinnedSeries::from_samples(
        results.domains.iter().map(|d| {
            if cname_chain_is_cdn(d, 2) {
                // CDN-hosted: the www form is the CDN-served one.
                (d.rank, d.www.covered_fraction())
            } else {
                (d.rank, None)
            }
        }),
        total,
        bin,
    );
    Fig4Series {
        rpki_enabled,
        rpki_enabled_on_cdns,
    }
}

/// Extension (paper §7 future work): RPKI coverage vs DNSSEC signing
/// across the ranking.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExtDnssecSeries {
    /// Mean RPKI-covered fraction per bin (bare form; as Fig 4 overall).
    pub rpki_covered: BinnedSeries,
    /// Fraction of domains whose bare-name resolution authenticated.
    pub dnssec_signed: BinnedSeries,
}

/// Build the RPKI-vs-DNSSEC comparison.
pub fn ext_dnssec_comparison(results: &StudyResults, bin: usize) -> ExtDnssecSeries {
    let total = results.domains.len();
    ExtDnssecSeries {
        rpki_covered: BinnedSeries::from_samples(
            results
                .domains
                .iter()
                .map(|d| (d.rank, d.bare.covered_fraction())),
            total,
            bin,
        ),
        dnssec_signed: BinnedSeries::from_samples(
            results.domains.iter().map(|d| {
                if d.bare.resolve_failed {
                    (d.rank, None)
                } else {
                    (
                        d.rank,
                        Some(if d.bare.dnssec_authenticated {
                            1.0
                        } else {
                            0.0
                        }),
                    )
                }
            }),
            total,
            bin,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{DomainMeasurement, NameMeasurement, PairState};
    use ripki_net::Asn;

    fn nm(states: &[RpkiState], chain: usize) -> NameMeasurement {
        NameMeasurement {
            pairs: states
                .iter()
                .enumerate()
                .map(|(i, s)| PairState {
                    prefix: format!("10.{i}.0.0/16").parse().unwrap(),
                    origin: Asn::new(1),
                    state: *s,
                })
                .collect(),
            cname_chain: (0..chain)
                .map(|i| ripki_dns::DomainName::parse(&format!("c{i}.cdn-x.net")).unwrap())
                .collect(),
            ..Default::default()
        }
    }

    fn dm(rank: usize, states: &[RpkiState], chain: usize) -> DomainMeasurement {
        DomainMeasurement {
            rank,
            listed: ripki_dns::DomainName::parse(&format!("d{rank}.example")).unwrap(),
            www: nm(states, chain),
            bare: nm(states, 0),
        }
    }

    fn results(domains: Vec<DomainMeasurement>) -> StudyResults {
        StudyResults {
            domains,
            ..Default::default()
        }
    }

    use RpkiState::*;

    #[test]
    fn fig2_probabilities() {
        let r = results(vec![
            dm(0, &[Valid, NotFound], 0),
            dm(1, &[Invalid], 0),
            dm(2, &[NotFound, NotFound], 0),
        ]);
        let f = fig2_rpki_outcome(&r, 10);
        assert_eq!(f.valid.means[0], Some((0.5 + 0.0 + 0.0) / 3.0));
        assert_eq!(f.invalid.means[0], Some(1.0 / 3.0));
        assert!((f.not_found.means[0].unwrap() - (0.5 + 0.0 + 1.0) / 3.0).abs() < 1e-12);
        // The three series sum to 1 where defined.
        let s =
            f.valid.means[0].unwrap() + f.invalid.means[0].unwrap() + f.not_found.means[0].unwrap();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fig2_skips_unresolvable_domains() {
        let r = results(vec![dm(0, &[], 0), dm(1, &[Valid], 0)]);
        let f = fig2_rpki_outcome(&r, 10);
        assert_eq!(f.valid.counts[0], 1);
        assert_eq!(f.valid.means[0], Some(1.0));
    }

    #[test]
    fn fig1_equality() {
        let mut equal = dm(0, &[Valid], 0);
        equal.www = equal.bare.clone();
        let differing = dm(1, &[Valid, NotFound], 0); // www has 2 pairs, bare 2 — same
                                                      // Make bare differ.
        let mut differing = differing;
        differing.bare = nm(&[Valid], 0);
        let r = results(vec![equal, differing]);
        let f = fig1_www_overlap(&r, 10);
        assert_eq!(f.means[0], Some(0.5));
    }

    #[test]
    fn fig4_cdn_conditioning() {
        let r = results(vec![
            dm(0, &[Valid], 2),    // CDN-hosted (chain 2), covered
            dm(1, &[NotFound], 0), // not CDN
            dm(2, &[NotFound], 2), // CDN-hosted, uncovered
        ]);
        let f = fig4_rpki_on_cdns(&r, 10);
        // Overall: mean of (1, 0, 0) = 1/3.
        assert!((f.rpki_enabled.means[0].unwrap() - 1.0 / 3.0).abs() < 1e-12);
        // CDN-only: ranks 0 and 2 → mean of (1, 0) = 0.5.
        assert_eq!(f.rpki_enabled_on_cdns.counts[0], 2);
        assert_eq!(f.rpki_enabled_on_cdns.means[0], Some(0.5));
    }
}
