//! The snapshot-based study engine.
//!
//! The original [`Pipeline`](crate::pipeline::Pipeline) borrowed its
//! substrate (`&ZoneStore`, `&Rib`) for a lifetime `'w`, which made it
//! impossible to share a configured study across threads that outlive
//! the caller, to swap in a fresh RPKI state without rebuilding
//! everything, or to hand the RTR cache a live view of the validated
//! VRPs. This module replaces that design with:
//!
//! * [`WorldSnapshot`] — an immutable, `Arc`-shared view of one
//!   observation instant: zones + RIB + the validated VRP set, stamped
//!   with a monotonically increasing **epoch**. All measurement runs
//!   against a snapshot, so concurrent readers never observe a
//!   half-updated world.
//! * [`StudyEngine`] — owns the current snapshot behind an
//!   `RwLock<Arc<_>>`. Installing a re-fetched RPKI repository is an
//!   epoch swap: the DNS/BGP substrate is structurally shared (`Arc`
//!   clones), only the validator is rebuilt, and an [`EpochDelta`]
//!   records the announced/withdrawn VRPs — exactly what an RTR cache
//!   needs to bump its serial.
//! * A memoized resolution layer: each snapshot carries a
//!   [`ResolutionCache`] pinned to its vantage, so shared CNAME tails
//!   (the CDN case) are resolved once per epoch instead of once per
//!   referring domain. RPKI epoch swaps reuse the cache — the DNS world
//!   did not change — while a different vantage or zone set gets a
//!   fresh engine and hence a fresh cache.
//!
//! Worker panics during a sharded run no longer abort the study: each
//! domain is measured under a panic guard and failures are reported as
//! skipped ranks ([`StudyResults::skipped`]) or as a structured
//! [`EngineError`] from [`StudyEngine::try_run`].
//!
//! ## Plan / execute / commit
//!
//! Both parallel paths — the sharded full [`run`](WorldSnapshot::run)
//! and the incremental re-measure inside
//! [`apply_events`](StudyEngine::apply_events) — follow one shape, with
//! the execute stage on `ripki_par`'s work-stealing executor:
//!
//! 1. **Plan** (serial): derive an independent work list — the full
//!    ranking, or the affected ranks recovered from the reverse indices
//!    — with everything a worker needs captured per item.
//! 2. **Execute** (parallel): [`ripki_par::run_indexed`] maps each item
//!    to a pure `(measurement, touched)` outcome with one resolver per
//!    worker and per-item panic isolation. No shared mutable state.
//! 3. **Commit** (serial): fold the outcomes *in plan order* — pair
//!    diffs, index patches, result writes. Outcomes come back in item
//!    order regardless of scheduling, so results are byte-identical at
//!    any thread count (property-tested in
//!    `tests/engine_parallel_prop.rs`); a panicked item commits as a
//!    skipped rank instead of poisoning the epoch.
//!
//! The incremental RPKI validator runs the same shape internally (see
//! `ripki_rpki::incremental`); [`PipelineConfig::worker_threads`] is the
//! single knob for all three planes.

use crate::model::{DomainMeasurement, NameMeasurement, PairState, PipelineConfig, StudyResults};
use ripki_bgp::rib::{Rib, RibChanges, RibDelta};
use ripki_bgp::rov::{RouteOriginValidator, ValidityDetail, VrpTriple};
use ripki_dns::cache::ResolutionCache;
use ripki_dns::faults::FaultyResolver;
use ripki_dns::resolver::Resolver;
use ripki_dns::zone::{ZoneChanges, ZoneDelta, ZoneStore};
use ripki_dns::DomainName;
use ripki_net::special::SpecialRegistry;
use ripki_net::{Asn, IpPrefix, PrefixTrie};
use ripki_rpki::incremental::{ApplyStats, IncrementalValidator, VrpDelta};
use ripki_rpki::repo::Repository;
use ripki_rpki::time::SimTime;
use ripki_rpki::validate::{ValidationOptions, Vrp};
use ripki_websim::churn::{EpochChurn, WorldEvent};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::{Arc, Mutex, RwLock};

/// An immutable view of the measured world at one epoch.
///
/// Cheap to clone through its [`Arc`] handles; all measurement methods
/// take `&self` and are safe to call from many threads at once.
pub struct WorldSnapshot {
    epoch: u64,
    zones: Arc<ZoneStore>,
    rib: Arc<Rib>,
    cache: Arc<ResolutionCache>,
    validator: RouteOriginValidator,
    vrp_count: usize,
    rpki_rejected: usize,
    config: PipelineConfig,
}

impl WorldSnapshot {
    /// Assemble a snapshot from an already-validated VRP set (the
    /// incremental validator's output).
    fn assemble(
        epoch: u64,
        zones: Arc<ZoneStore>,
        rib: Arc<Rib>,
        cache: Arc<ResolutionCache>,
        vrps: &[Vrp],
        rpki_rejected: usize,
        config: PipelineConfig,
    ) -> WorldSnapshot {
        let validator = RouteOriginValidator::from_vrps(vrps.iter().map(|v| VrpTriple {
            prefix: v.prefix,
            max_length: v.max_length,
            asn: v.asn,
        }));
        WorldSnapshot {
            epoch,
            zones,
            rib,
            cache,
            vrp_count: vrps.len(),
            rpki_rejected,
            validator,
            config,
        }
    }

    /// The snapshot's epoch (1 for a fresh engine, +1 per RPKI swap).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The DNS substrate.
    pub fn zones(&self) -> &ZoneStore {
        &self.zones
    }

    /// The BGP table.
    pub fn rib(&self) -> &Rib {
        &self.rib
    }

    /// The origin validator built from this epoch's validated VRPs.
    pub fn validator(&self) -> &RouteOriginValidator {
        &self.validator
    }

    /// Full RFC 6811 verdict for one announcement, with the covering
    /// VRPs partitioned by match outcome — the payload of a validity
    /// query API. Consistent with the states [`measure_domain`]
    /// (Self::measure_domain) stamps on pairs at this epoch.
    pub fn validity(&self, prefix: &IpPrefix, origin: Asn) -> ValidityDetail {
        self.validator.validity(prefix, origin)
    }

    /// This epoch's validated VRPs, in insertion order — the payload an
    /// RTR cache serves (see `CacheServer::install_snapshot`).
    pub fn vrps(&self) -> &[VrpTriple] {
        self.validator.vrps()
    }

    /// Count of VRPs used for validation.
    pub fn vrp_count(&self) -> usize {
        self.vrp_count
    }

    /// Objects rejected during cryptographic RPKI validation.
    pub fn rpki_rejected(&self) -> usize {
        self.rpki_rejected
    }

    /// The configuration this snapshot was built with.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The memoized resolution cache (hit/miss counters for benches).
    pub fn resolution_cache(&self) -> &ResolutionCache {
        &self.cache
    }

    /// A resolver over this snapshot's zones. Constructing one is not
    /// free (it captures the fault-injection state), so `run` builds
    /// one per worker thread rather than one per name.
    pub fn resolver(&self) -> FaultyResolver<'_> {
        FaultyResolver::new(
            Resolver::new(&self.zones, self.config.vantage),
            self.config.bogus_dns_ppm,
            self.config.dns_fault_seed,
        )
    }

    /// Measure one name form with a caller-provided (per-worker)
    /// resolver, going through the memoized resolution cache. This is
    /// the single implementation of steps 2–4; every other entry point
    /// (full runs, the `Pipeline` façade, incremental re-measurement)
    /// routes through it.
    ///
    /// The second return value is the resolution's *touched set*: every
    /// name whose zone data the walk consulted. A zone delta touching
    /// none of those names cannot change this measurement — the
    /// invalidation rule the incremental engine relies on.
    fn measure_name_traced(
        &self,
        resolver: &FaultyResolver<'_>,
        name: &DomainName,
    ) -> (NameMeasurement, Vec<DomainName>) {
        let mut m = NameMeasurement::default();
        let traced = resolver.resolve_cached_traced(name, &self.cache);
        let touched = traced.touched;
        let Ok(resolution) = traced.outcome else {
            m.resolve_failed = true;
            return (m, touched);
        };
        m.cname_chain = resolution.cname_chain;
        m.dnssec_authenticated = resolution.authenticated;
        let registry = SpecialRegistry::global();
        // Within one epoch the state is a function of (prefix, origin),
        // so deduplicating on the pair before validating preserves the
        // old `Vec::contains` output while dropping the O(n²) scan and
        // the redundant validator lookups.
        let mut seen: HashSet<(IpPrefix, Asn)> = HashSet::new();
        for addr in resolution.addresses {
            // Step 2 exclusion: special-purpose answers are invalid.
            if registry.is_invalid_answer(addr) {
                m.excluded_invalid += 1;
                continue;
            }
            m.addresses.push(addr);
            // Step 3: all covering prefixes and origins.
            let mapping = self.rib.origins_for_addr(addr);
            m.as_set_skipped += mapping.as_set_skipped;
            if !mapping.is_reachable() {
                m.unreachable += 1;
                continue;
            }
            for po in mapping.pairs {
                if !seen.insert((po.prefix, po.origin)) {
                    continue;
                }
                // Step 4: RFC 6811 per pair.
                let state = self.validator.validate(&po.prefix, po.origin);
                m.pairs.push(PairState {
                    prefix: po.prefix,
                    origin: po.origin,
                    state,
                });
            }
        }
        (m, touched)
    }

    /// Measure one ranked domain (both name forms).
    pub fn measure_domain(&self, rank: usize, listed: &DomainName) -> DomainMeasurement {
        self.measure_domain_with(&self.resolver(), rank, listed)
    }

    fn measure_domain_with(
        &self,
        resolver: &FaultyResolver<'_>,
        rank: usize,
        listed: &DomainName,
    ) -> DomainMeasurement {
        self.measure_domain_traced(resolver, rank, listed).0
    }

    /// Measure both name forms and return the union of their touched
    /// name sets (sorted, deduplicated) for index maintenance.
    fn measure_domain_traced(
        &self,
        resolver: &FaultyResolver<'_>,
        rank: usize,
        listed: &DomainName,
    ) -> (DomainMeasurement, Vec<DomainName>) {
        assert!(
            self.config.poison_domain.as_ref() != Some(listed),
            "injected measurement fault for {listed:?} (PipelineConfig::poison_domain)"
        );
        let bare = listed.without_www();
        let www = bare.with_www();
        let (www_m, mut touched) = self.measure_name_traced(resolver, &www);
        let (bare_m, bare_touched) = self.measure_name_traced(resolver, &bare);
        touched.extend(bare_touched);
        touched.sort();
        touched.dedup();
        (
            DomainMeasurement {
                rank,
                listed: listed.clone(),
                www: www_m,
                bare: bare_m,
            },
            touched,
        )
    }

    /// Re-apply this snapshot's VRPs to an existing study's (prefix,
    /// origin) pairs without repeating DNS resolution or table lookups —
    /// what a longitudinal study does when only the RPKI changed between
    /// observations. Returns the number of pair states that changed and
    /// restamps `results` with this snapshot's epoch and VRP counters.
    ///
    /// Equivalent to a full [`run`](Self::run) whenever only the
    /// repository differs between the two snapshots.
    pub fn revalidate(&self, results: &mut StudyResults) -> usize {
        let mut changed = 0;
        for d in &mut results.domains {
            for m in [&mut d.www, &mut d.bare] {
                for pair in &mut m.pairs {
                    let state = self.validator.validate(&pair.prefix, pair.origin);
                    if state != pair.state {
                        pair.state = state;
                        changed += 1;
                    }
                }
            }
        }
        results.vrp_count = self.vrp_count;
        results.rpki_rejected = self.rpki_rejected;
        results.epoch = self.epoch;
        changed
    }

    /// Run the full study over a ranked list, sharded across threads.
    /// A domain whose measurement panics is skipped and its rank
    /// recorded in [`StudyResults::skipped`] — one bad domain cannot
    /// kill a million-domain study.
    pub fn run(&self, ranking: &[DomainName]) -> StudyResults {
        let (domains, skipped) = self.run_sharded(ranking);
        StudyResults {
            domains,
            vrp_count: self.vrp_count,
            rpki_rejected: self.rpki_rejected,
            epoch: self.epoch,
            skipped,
        }
    }

    /// Like [`run`](Self::run), but any skipped domain turns the whole
    /// study into a structured [`EngineError`] for callers that must
    /// not publish partial results.
    pub fn try_run(&self, ranking: &[DomainName]) -> Result<StudyResults, EngineError> {
        let results = self.run(ranking);
        if results.skipped.is_empty() {
            Ok(results)
        } else {
            Err(EngineError::DomainsPanicked {
                ranks: results.skipped,
            })
        }
    }

    fn run_sharded(&self, ranking: &[DomainName]) -> (Vec<DomainMeasurement>, Vec<usize>) {
        if ranking.is_empty() {
            return (Vec::new(), Vec::new());
        }
        // Plan: the ranking itself is the work list (rank == index).
        // Execute: one resolver per worker, work-stealing over the
        // ranks, per-domain panic isolation. Commit: fold the outcomes
        // in rank order — a `None` slot is a panicked measurement and
        // becomes a skipped rank.
        let outcomes = ripki_par::run_indexed(
            self.config.worker_threads(),
            ranking,
            |_| self.resolver(),
            |resolver, rank, name| self.measure_domain_with(resolver, rank, name),
        );
        let mut domains = Vec::with_capacity(ranking.len());
        let mut skipped = Vec::new();
        for (rank, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                Some(m) => domains.push(m),
                None => skipped.push(rank),
            }
        }
        (domains, skipped)
    }
}

fn triple(v: &Vrp) -> VrpTriple {
    VrpTriple {
        prefix: v.prefix,
        max_length: v.max_length,
        asn: v.asn,
    }
}

/// What changed between two RPKI epochs, in RTR terms.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EpochDelta {
    /// Epoch the engine moved from.
    pub from_epoch: u64,
    /// Epoch the engine moved to.
    pub to_epoch: u64,
    /// VRPs present now but not before.
    pub announced: Vec<VrpTriple>,
    /// VRPs present before but not now.
    pub withdrawn: Vec<VrpTriple>,
    /// Pair states flipped by a [`StudyEngine::revalidate`] (0 when the
    /// delta came from a bare [`StudyEngine::install_rpki`]).
    pub pairs_changed: usize,
    /// Domains re-measured by an incremental
    /// [`StudyEngine::apply_events`] (0 for RPKI-only epoch swaps).
    pub domains_remeasured: usize,
    /// Work accounting from the incremental RPKI validator, when the
    /// epoch involved validation (a repository swap or a clock advance).
    /// `None` for pure DNS/BGP epochs.
    pub rpki_stats: Option<ApplyStats>,
}

impl EpochDelta {
    /// No VRP-level change between the epochs.
    pub fn is_empty(&self) -> bool {
        self.announced.is_empty() && self.withdrawn.is_empty()
    }
}

/// Structured failure from [`StudyEngine::try_run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// These ranks panicked during measurement and were not measured.
    DomainsPanicked {
        /// Ranks (0-based positions in the input ranking) skipped.
        ranks: Vec<usize>,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::DomainsPanicked { ranks } => {
                write!(
                    f,
                    "{} domain measurement(s) panicked (ranks {:?})",
                    ranks.len(),
                    ranks
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Per-rank postings: everything one domain's measurement depends on,
/// kept so the reverse indices can be patched when the rank is
/// re-measured.
struct RankPostings {
    /// Names whose zone data either name form's resolution consulted.
    names: Vec<DomainName>,
    /// Host (`/32` / `/128`) prefixes of every retained address.
    hosts: Vec<IpPrefix>,
    /// Prefixes of every (prefix, origin) pair.
    pairs: Vec<IpPrefix>,
}

/// Reverse indices from world state into domain ranks: given a changed
/// name, RIB prefix, or VRP prefix, which domains must be re-measured?
///
/// Invalidation rules (each an over-approximation, never an under-
/// approximation — see DESIGN.md):
///
/// * **zone delta** touching name `n` → ranks in `by_name[n]`; a
///   resolution that never consulted `n`'s records cannot change.
/// * **RIB delta** on prefix `p` → ranks whose host prefixes are
///   covered by `p`; step 3 depends only on the prefixes covering each
///   retained address.
/// * **VRP delta** on prefix `v` → ranks with a pair prefix covered by
///   `v`; RFC 6811 only consults VRPs whose prefix covers the route.
struct DomainIndex {
    /// Epoch of the [`StudyResults`] this index describes.
    epoch: u64,
    by_name: HashMap<DomainName, BTreeSet<usize>>,
    by_host: PrefixTrie<BTreeSet<usize>>,
    by_pair: PrefixTrie<BTreeSet<usize>>,
    per_rank: HashMap<usize, RankPostings>,
}

impl DomainIndex {
    /// Index an existing study against the snapshot that produced it.
    ///
    /// Hosts and pairs come straight from the stored measurements; the
    /// touched name sets are recovered by re-walking each resolution
    /// against the snapshot's (identical) zones — measurements don't
    /// record which names a *failed* resolution consulted.
    fn build(snapshot: &WorldSnapshot, results: &StudyResults) -> DomainIndex {
        let mut index = DomainIndex {
            epoch: results.epoch,
            by_name: HashMap::new(),
            by_host: PrefixTrie::new(),
            by_pair: PrefixTrie::new(),
            per_rank: HashMap::new(),
        };
        let resolver = snapshot.resolver();
        for d in &results.domains {
            let bare = d.listed.without_www();
            let www = bare.with_www();
            let mut names = resolver
                .resolve_cached_traced(&www, &snapshot.cache)
                .touched;
            names.extend(
                resolver
                    .resolve_cached_traced(&bare, &snapshot.cache)
                    .touched,
            );
            names.sort();
            names.dedup();
            index.insert(d.rank, Self::postings(d, names));
        }
        index
    }

    fn postings(d: &DomainMeasurement, names: Vec<DomainName>) -> RankPostings {
        let mut hosts: Vec<IpPrefix> = d
            .www
            .addresses
            .iter()
            .chain(&d.bare.addresses)
            .map(|a| IpPrefix::host(*a))
            .collect();
        hosts.sort();
        hosts.dedup();
        let mut pairs: Vec<IpPrefix> = d
            .www
            .pairs
            .iter()
            .chain(&d.bare.pairs)
            .map(|p| p.prefix)
            .collect();
        pairs.sort();
        pairs.dedup();
        RankPostings {
            names,
            hosts,
            pairs,
        }
    }

    fn insert(&mut self, rank: usize, postings: RankPostings) {
        for name in &postings.names {
            self.by_name.entry(name.clone()).or_default().insert(rank);
        }
        for trie_and_keys in [
            (&mut self.by_host, &postings.hosts),
            (&mut self.by_pair, &postings.pairs),
        ] {
            let (trie, keys) = trie_and_keys;
            for p in keys {
                match trie.get_mut(p) {
                    Some(set) => {
                        set.insert(rank);
                    }
                    None => {
                        trie.insert(*p, BTreeSet::from([rank]));
                    }
                }
            }
        }
        self.per_rank.insert(rank, postings);
    }

    fn remove(&mut self, rank: usize) {
        let Some(postings) = self.per_rank.remove(&rank) else {
            return;
        };
        for name in &postings.names {
            if let Some(set) = self.by_name.get_mut(name) {
                set.remove(&rank);
                if set.is_empty() {
                    self.by_name.remove(name);
                }
            }
        }
        for trie_and_keys in [
            (&mut self.by_host, &postings.hosts),
            (&mut self.by_pair, &postings.pairs),
        ] {
            let (trie, keys) = trie_and_keys;
            for p in keys {
                let emptied = match trie.get_mut(p) {
                    Some(set) => {
                        set.remove(&rank);
                        set.is_empty()
                    }
                    None => false,
                };
                if emptied {
                    trie.remove(p);
                }
            }
        }
    }

    /// Ranks whose measurement may be affected by the given changes.
    fn affected(
        &self,
        zone_changes: &ZoneChanges,
        rib_changes: &RibChanges,
        vrp_prefixes: &BTreeSet<IpPrefix>,
    ) -> BTreeSet<usize> {
        let mut ranks = BTreeSet::new();
        for name in &zone_changes.changed {
            if let Some(set) = self.by_name.get(name) {
                ranks.extend(set.iter().copied());
            }
        }
        for prefix in &rib_changes.changed {
            for (_, set) in self.by_host.covered_by(prefix) {
                ranks.extend(set.iter().copied());
            }
        }
        for prefix in vrp_prefixes {
            for (_, set) in self.by_pair.covered_by(prefix) {
                ranks.extend(set.iter().copied());
            }
        }
        ranks
    }
}

/// The study engine: owns the current [`WorldSnapshot`] and swaps it
/// atomically on RPKI refresh.
///
/// `&StudyEngine` is all a consumer needs — readers grab an `Arc` to
/// the snapshot they started with and are immune to concurrent swaps.
pub struct StudyEngine {
    current: RwLock<Arc<WorldSnapshot>>,
    /// Reverse indices for [`apply_events`](Self::apply_events), built
    /// lazily against the results the caller maintains.
    index: Mutex<Option<DomainIndex>>,
    /// The stateful incremental validator plus the repository it last
    /// validated (kept alive for clock-only expiry sweeps). Locked after
    /// `current`'s write lock, never the other way around.
    rpki: Mutex<RpkiState>,
}

/// Validator state carried across epochs.
struct RpkiState {
    validator: IncrementalValidator,
    repository: Arc<Repository>,
}

impl RpkiState {
    /// Validate `repository` (or re-validate the held one when `None`)
    /// as of `now`, reusing every publication point whose inputs did
    /// not change. `threads` sizes the validator's parallel execute
    /// stage — always [`PipelineConfig::worker_threads`], so all planes
    /// share one knob.
    fn apply(
        &mut self,
        repository: Option<&Arc<Repository>>,
        now: SimTime,
        threads: usize,
    ) -> VrpDelta {
        if let Some(repo) = repository {
            self.repository = Arc::clone(repo);
        }
        self.validator.set_worker_threads(threads);
        self.validator.apply(&self.repository, now)
    }
}

impl StudyEngine {
    /// Build an engine at epoch 1 from owned substrate.
    pub fn new(
        zones: ZoneStore,
        rib: Rib,
        repository: &Repository,
        config: PipelineConfig,
    ) -> StudyEngine {
        StudyEngine::from_shared(Arc::new(zones), Arc::new(rib), repository, config)
    }

    /// Build an engine at epoch 1 from already-shared substrate.
    pub fn from_shared(
        zones: Arc<ZoneStore>,
        rib: Arc<Rib>,
        repository: &Repository,
        config: PipelineConfig,
    ) -> StudyEngine {
        let cache = Arc::new(ResolutionCache::new(config.vantage));
        let mut rpki = RpkiState {
            validator: IncrementalValidator::new(ValidationOptions::default()),
            repository: Arc::new(repository.clone()),
        };
        rpki.apply(None, config.now, config.worker_threads());
        let snapshot = WorldSnapshot::assemble(
            1,
            zones,
            rib,
            cache,
            &rpki.validator.vrps(),
            rpki.validator.rejected_count(),
            config,
        );
        StudyEngine {
            current: RwLock::new(Arc::new(snapshot)),
            index: Mutex::new(None),
            rpki: Mutex::new(rpki),
        }
    }

    /// The current snapshot. Hold the `Arc` for a consistent view
    /// across an entire computation.
    pub fn snapshot(&self) -> Arc<WorldSnapshot> {
        self.current
            .read()
            .expect("engine snapshot lock poisoned")
            .clone()
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.snapshot().epoch
    }

    /// Install a re-validated RPKI repository as a new epoch.
    ///
    /// The DNS and BGP substrate — and the resolution cache, since the
    /// DNS world is unchanged — carry over by `Arc` clone; only the
    /// validator is rebuilt. Returns the VRP-level [`EpochDelta`]
    /// (announce/withdraw sets), which maps 1:1 onto an RTR serial
    /// increment.
    pub fn install_rpki(&self, repository: &Repository, now: SimTime) -> EpochDelta {
        let mut guard = self.current.write().expect("engine snapshot lock poisoned");
        let old = Arc::clone(&guard);
        let mut config = old.config.clone();
        config.now = now;
        let mut rpki = self.rpki.lock().expect("engine rpki lock poisoned");
        let repository = Arc::new(repository.clone());
        let vrp_delta = rpki.apply(Some(&repository), now, config.worker_threads());
        let next = Self::next_snapshot(&old, &rpki, &vrp_delta, old.epoch + 1, config);
        let delta = EpochDelta {
            from_epoch: old.epoch,
            to_epoch: next.epoch,
            announced: vrp_delta.announced.iter().map(triple).collect(),
            withdrawn: vrp_delta.withdrawn.iter().map(triple).collect(),
            pairs_changed: 0,
            domains_remeasured: 0,
            rpki_stats: Some(vrp_delta.stats),
        };
        *guard = Arc::new(next);
        delta
    }

    /// Successor snapshot after a validator pass: the origin validator
    /// is rebuilt only when the VRP set actually changed.
    fn next_snapshot(
        old: &WorldSnapshot,
        rpki: &RpkiState,
        vrp_delta: &VrpDelta,
        epoch: u64,
        config: PipelineConfig,
    ) -> WorldSnapshot {
        if vrp_delta.is_empty() {
            WorldSnapshot {
                epoch,
                zones: Arc::clone(&old.zones),
                rib: Arc::clone(&old.rib),
                cache: Arc::clone(&old.cache),
                validator: old.validator.clone(),
                vrp_count: old.vrp_count,
                rpki_rejected: rpki.validator.rejected_count(),
                config,
            }
        } else {
            WorldSnapshot::assemble(
                epoch,
                Arc::clone(&old.zones),
                Arc::clone(&old.rib),
                Arc::clone(&old.cache),
                &rpki.validator.vrps(),
                rpki.validator.rejected_count(),
                config,
            )
        }
    }

    /// Epoch-swap revalidation: install `repository` as a new epoch and
    /// recompute only the step-4 states of an existing study in place.
    /// Equivalent to a full re-[`run`](Self::run) whenever only the
    /// repository changed between the observations, at none of the
    /// DNS/RIB cost. The returned delta carries the announce/withdraw
    /// VRP sets and the number of pair states that flipped.
    pub fn revalidate(
        &self,
        repository: &Repository,
        now: SimTime,
        results: &mut StudyResults,
    ) -> EpochDelta {
        let mut delta = self.install_rpki(repository, now);
        delta.pairs_changed = self.snapshot().revalidate(results);
        delta
    }

    /// Apply one epoch's churn incrementally: advance the world by the
    /// batch's zone/RIB deltas (copy-on-write successors, structurally
    /// shared with the old snapshot) and its repository snapshot if
    /// any, then re-measure **only the domains the changes can reach**
    /// — found through reverse indices from names, covering prefixes,
    /// and VRP prefixes back to domain ranks — patching `results` in
    /// place.
    ///
    /// `results` must be the current study for this engine's epoch
    /// (from [`run`](Self::run) or a previous `apply_events`); the
    /// reverse indices are (re)built lazily against it and patched as
    /// domains are re-measured. Equivalent to a full re-run against the
    /// post-churn world — the equivalence is property-tested in
    /// `tests/engine_incremental_prop.rs`.
    ///
    /// Every call advances the epoch by exactly one (even for an empty
    /// batch), preserving the epoch == RTR-serial contract: the
    /// returned [`EpochDelta`] feeds `CacheServer::apply_delta`
    /// unchanged.
    pub fn apply_events(&self, batch: &EpochChurn, results: &mut StudyResults) -> EpochDelta {
        let mut guard = self.current.write().expect("engine snapshot lock poisoned");
        let old = Arc::clone(&guard);
        assert_eq!(
            results.epoch, old.epoch,
            "apply_events requires results from the engine's current epoch"
        );

        // Partition the typed events into substrate deltas. RPKI events
        // carry no per-event payload here — the batch's repository
        // snapshot is the authoritative post-churn publication state.
        let mut zone_delta = ZoneDelta::new();
        let mut rib_delta = RibDelta::new();
        for event in &batch.events {
            match event {
                WorldEvent::ZoneEdit { name, records } => {
                    zone_delta.set_records(name.clone(), records.clone());
                }
                WorldEvent::CnameRetarget { name, target } => {
                    zone_delta.set_cname(name.clone(), target.clone());
                }
                WorldEvent::RibAnnounce(entry) => {
                    rib_delta.announce(entry.clone());
                }
                WorldEvent::RibWithdraw { prefix, peer } => {
                    rib_delta.withdraw(*prefix, *peer);
                }
                WorldEvent::RoaAdded { .. }
                | WorldEvent::RoaExpired { .. }
                | WorldEvent::RoaRevoked { .. }
                | WorldEvent::KeyRollover { .. } => {}
            }
        }

        // Copy-on-write successors: unchanged substrate is shared by
        // `Arc` clone, changed substrate becomes a thin delta layer.
        let (zones, zone_changes) = if zone_delta.is_empty() {
            (Arc::clone(&old.zones), ZoneChanges::default())
        } else {
            let (z, ch) = ZoneStore::apply(Arc::clone(&old.zones), &zone_delta);
            (Arc::new(z), ch)
        };
        let (rib, rib_changes) = if rib_delta.is_empty() {
            (Arc::clone(&old.rib), RibChanges::default())
        } else {
            let (r, ch) = Rib::apply(Arc::clone(&old.rib), &rib_delta);
            (Arc::new(r), ch)
        };
        // The memoized CNAME tails are only valid for the zones that
        // filled them: any zone change gets a fresh cache.
        let cache = if zone_changes.changed.is_empty() {
            Arc::clone(&old.cache)
        } else {
            Arc::new(ResolutionCache::new(old.config.vantage))
        };

        let mut config = old.config.clone();
        config.now = batch.now;
        // The validator runs only when its inputs moved: a republished
        // repository or a clock advance (expiry sweep). Its delta IS the
        // epoch's announce/withdraw set — no full-set diffing.
        let rpki_work = batch.repository.is_some() || batch.now != old.config.now;
        let (changed_vrps, announced, withdrawn, rpki_stats, rpki_rejected) = if rpki_work {
            let mut rpki = self.rpki.lock().expect("engine rpki lock poisoned");
            let vrp_delta = rpki.apply(
                batch.repository.as_ref(),
                batch.now,
                config.worker_threads(),
            );
            (
                (!vrp_delta.is_empty()).then(|| rpki.validator.vrps()),
                vrp_delta.announced.iter().map(triple).collect::<Vec<_>>(),
                vrp_delta.withdrawn.iter().map(triple).collect::<Vec<_>>(),
                Some(vrp_delta.stats),
                rpki.validator.rejected_count(),
            )
        } else {
            (None, Vec::new(), Vec::new(), None, old.rpki_rejected)
        };
        let next = match changed_vrps {
            Some(vrps) => WorldSnapshot::assemble(
                old.epoch + 1,
                zones,
                rib,
                cache,
                &vrps,
                rpki_rejected,
                config,
            ),
            None => WorldSnapshot {
                epoch: old.epoch + 1,
                zones,
                rib,
                cache,
                validator: old.validator.clone(),
                vrp_count: old.vrp_count,
                rpki_rejected,
                config,
            },
        };
        let vrp_prefixes: BTreeSet<IpPrefix> = announced
            .iter()
            .chain(&withdrawn)
            .map(|v| v.prefix)
            .collect();

        // Reverse-index lookup: which ranks can the changes reach?
        let mut index_guard = self.index.lock().expect("engine index lock poisoned");
        if index_guard
            .as_ref()
            .is_none_or(|ix| ix.epoch != results.epoch)
        {
            *index_guard = Some(DomainIndex::build(&old, results));
        }
        let affected = index_guard.as_ref().expect("index just built").affected(
            &zone_changes,
            &rib_changes,
            &vrp_prefixes,
        );

        // A massive batch (CDN-wide retarget, table reload) re-measured
        // rank by rank would be slower than a parallel full run: above
        // the configured threshold, fall back to the sharded full-run
        // path over the same post-churn snapshot. Equivalent output by
        // construction — both paths measure every affected domain
        // against `next` — and covered by the incremental-vs-full
        // equivalence proptest.
        if next
            .config
            .full_remeasure_threshold
            .is_some_and(|t| affected.len() > t)
        {
            let ranking: Vec<DomainName> =
                results.domains.iter().map(|d| d.listed.clone()).collect();
            let fresh = next.run(&ranking);
            let mut pairs_changed = 0;
            for (old_d, new_d) in results.domains.iter().zip(&fresh.domains) {
                for (old_m, new_m) in [(&old_d.www, &new_d.www), (&old_d.bare, &new_d.bare)] {
                    let key = |p: &PairState| (p.prefix, p.origin, p.state);
                    let before: BTreeSet<_> = old_m.pairs.iter().map(key).collect();
                    let after: BTreeSet<_> = new_m.pairs.iter().map(key).collect();
                    pairs_changed += before.symmetric_difference(&after).count();
                }
            }
            let remeasured = fresh.domains.len();
            *results = fresh;
            // Every posting is stale after the wholesale replacement;
            // rebuild lazily on the next incremental batch.
            *index_guard = None;
            let delta = EpochDelta {
                from_epoch: old.epoch,
                to_epoch: next.epoch,
                announced,
                withdrawn,
                pairs_changed,
                domains_remeasured: remeasured,
                rpki_stats,
            };
            *guard = Arc::new(next);
            return delta;
        }
        let index = index_guard.as_mut().expect("index just built");

        // Plan: resolve the affected ranks (already in ascending rank
        // order from the BTreeSet) to their result positions and listed
        // names — an independent work list that borrows nothing mutable.
        let position: HashMap<usize, usize> = results
            .domains
            .iter()
            .enumerate()
            .map(|(i, d)| (d.rank, i))
            .collect();
        let work: Vec<(usize, usize, DomainName)> = affected
            .into_iter()
            .filter_map(|rank| {
                position
                    .get(&rank)
                    .map(|&pos| (rank, pos, results.domains[pos].listed.clone()))
            })
            .collect();

        // Execute: measure every planned rank against the new snapshot,
        // one resolver per worker, each item a pure (measurement,
        // touched-set) outcome.
        let outcomes = ripki_par::run_indexed(
            next.config.worker_threads(),
            &work,
            |_| next.resolver(),
            |resolver, _, (rank, _, listed)| next.measure_domain_traced(resolver, *rank, listed),
        );

        // Commit: fold the outcomes in plan order — deterministic at
        // any thread count. A panicked measurement (a `None` slot)
        // keeps the rank's previous measurement and postings and is
        // recorded as skipped; the next batch that reaches it will try
        // again.
        let mut pairs_changed = 0;
        let mut remeasured = 0;
        for ((rank, pos, _), outcome) in work.iter().zip(outcomes) {
            let Some((measured, touched)) = outcome else {
                results.skipped.push(*rank);
                continue;
            };
            for (old_m, new_m) in [
                (&results.domains[*pos].www, &measured.www),
                (&results.domains[*pos].bare, &measured.bare),
            ] {
                let key = |p: &PairState| (p.prefix, p.origin, p.state);
                let before: BTreeSet<_> = old_m.pairs.iter().map(key).collect();
                let after: BTreeSet<_> = new_m.pairs.iter().map(key).collect();
                pairs_changed += before.symmetric_difference(&after).count();
            }
            index.remove(*rank);
            index.insert(*rank, DomainIndex::postings(&measured, touched));
            results.domains[*pos] = measured;
            remeasured += 1;
        }
        results.skipped.sort_unstable();
        results.skipped.dedup();
        index.epoch = next.epoch;

        results.epoch = next.epoch;
        results.vrp_count = next.vrp_count;
        results.rpki_rejected = next.rpki_rejected;
        let delta = EpochDelta {
            from_epoch: old.epoch,
            to_epoch: next.epoch,
            announced,
            withdrawn,
            pairs_changed,
            domains_remeasured: remeasured,
            rpki_stats,
        };
        *guard = Arc::new(next);
        delta
    }

    /// Run the full study against the current snapshot (skip-and-count
    /// panic policy; see [`WorldSnapshot::run`]).
    pub fn run(&self, ranking: &[DomainName]) -> StudyResults {
        self.snapshot().run(ranking)
    }

    /// Run, failing with a structured error if any domain was skipped.
    pub fn try_run(&self, ranking: &[DomainName]) -> Result<StudyResults, EngineError> {
        self.snapshot().try_run(ranking)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripki_bgp::path::AsPath;
    use ripki_bgp::rib::RibEntry;
    use ripki_bgp::rov::RpkiState;
    use ripki_dns::RecordData;
    use ripki_rpki::repo::RepositoryBuilder;
    use ripki_rpki::resources::Resources;
    use ripki_rpki::roa::RoaPrefix;
    use ripki_rpki::time::Duration;

    fn n(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    fn cfg(now: SimTime) -> PipelineConfig {
        PipelineConfig {
            bogus_dns_ppm: 0,
            now,
            threads: 2,
            ..Default::default()
        }
    }

    /// Hand-built world: four domains across three prefixes, one with a
    /// valid ROA, a shared CNAME tail, and a spare announced prefix.
    fn world() -> (ZoneStore, Rib, RepositoryBuilder, SimTime) {
        let mut zones = ZoneStore::new();
        zones.add_addr(n("covered.example"), "85.1.2.3".parse().unwrap());
        zones.add_cname(n("www.covered.example"), n("covered.example"));
        zones.add_addr(n("plain.example"), "9.9.1.1".parse().unwrap());
        zones.add_addr(n("www.plain.example"), "9.9.1.1".parse().unwrap());
        // Two CDN customers sharing a tail.
        zones.add_cname(n("cdn-a.example"), n("edge.cdn.example"));
        zones.add_cname(n("www.cdn-a.example"), n("edge.cdn.example"));
        zones.add_cname(n("cdn-b.example"), n("edge.cdn.example"));
        zones.add_cname(n("www.cdn-b.example"), n("edge.cdn.example"));
        zones.add_addr(n("edge.cdn.example"), "85.3.0.1".parse().unwrap());

        let mut rib = Rib::new();
        for (pfx, origin) in [
            ("85.1.0.0/16", 100u32),
            ("85.3.0.0/16", 300),
            ("9.9.0.0/16", 9),
            ("77.7.0.0/16", 77),
        ] {
            rib.insert(RibEntry {
                prefix: pfx.parse().unwrap(),
                path: AsPath::sequence([64601, origin]),
                peer: Asn::new(64496),
            });
        }

        let mut b = RepositoryBuilder::new(1, SimTime::EPOCH);
        let ta = b.add_trust_anchor(
            "RIPE",
            Resources::from_prefixes(vec!["80.0.0.0/4".parse().unwrap()]),
        );
        let isp = b
            .add_ca(
                ta,
                "ISP-1",
                Resources::from_prefixes(vec!["85.0.0.0/8".parse().unwrap()]),
            )
            .unwrap();
        b.add_roa(
            isp,
            Asn::new(100),
            vec![RoaPrefix::exact("85.1.0.0/16".parse().unwrap())],
        )
        .unwrap();
        (zones, rib, b, SimTime::EPOCH + Duration::days(1))
    }

    fn ranking() -> Vec<DomainName> {
        vec![
            n("covered.example"),
            n("plain.example"),
            n("cdn-a.example"),
            n("cdn-b.example"),
        ]
    }

    /// Full re-run on the post-churn world, for comparison. Uses the
    /// same CoW apply path (whose flat-replay equivalence is tested in
    /// the dns/bgp crates) but a fresh engine and a fresh measurement
    /// of every domain.
    fn full_rerun(
        zones: &ZoneStore,
        rib: &Rib,
        batch: &EpochChurn,
        repo: &Repository,
        now: SimTime,
    ) -> StudyResults {
        let mut zd = ZoneDelta::new();
        let mut rd = RibDelta::new();
        for event in &batch.events {
            match event {
                WorldEvent::ZoneEdit { name, records } => {
                    zd.set_records(name.clone(), records.clone());
                }
                WorldEvent::CnameRetarget { name, target } => {
                    zd.set_cname(name.clone(), target.clone());
                }
                WorldEvent::RibAnnounce(e) => rd.announce(e.clone()),
                WorldEvent::RibWithdraw { prefix, peer } => rd.withdraw(*prefix, *peer),
                _ => {}
            }
        }
        let (zones2, _) = ZoneStore::apply(Arc::new(zones.clone()), &zd);
        let (rib2, _) = Rib::apply(Arc::new(rib.clone()), &rd);
        let repo = batch.repository.as_deref().unwrap_or(repo);
        StudyEngine::new(zones2, rib2, repo, cfg(now)).run(&ranking())
    }

    fn assert_same_study(incremental: &StudyResults, fresh: &StudyResults) {
        assert_eq!(incremental.domains, fresh.domains);
        assert_eq!(incremental.vrp_count, fresh.vrp_count);
        assert_eq!(incremental.rpki_rejected, fresh.rpki_rejected);
    }

    #[test]
    fn zone_edit_remeasures_only_referring_domains() {
        let (zones, rib, mut b, now) = world();
        let repo = b.snapshot();
        let engine = StudyEngine::new(zones.clone(), rib.clone(), &repo, cfg(now));
        let mut results = engine.run(&ranking());

        // Retarget the shared CDN tail: exactly cdn-a and cdn-b depend
        // on it; covered/plain must not be re-measured.
        let batch = EpochChurn {
            events: vec![WorldEvent::ZoneEdit {
                name: n("edge.cdn.example"),
                records: vec![RecordData::from_addr("77.7.7.7".parse().unwrap())],
            }],
            repository: None,
            now,
        };
        let delta = engine.apply_events(&batch, &mut results);
        assert_eq!(delta.from_epoch, 1);
        assert_eq!(delta.to_epoch, 2);
        assert_eq!(delta.domains_remeasured, 2);
        assert!(delta.is_empty());
        assert_eq!(results.epoch, 2);
        // The tail moved to AS77 space.
        let cdn_a = &results.domains[2];
        assert_eq!(cdn_a.bare.pairs.len(), 1);
        assert_eq!(cdn_a.bare.pairs[0].origin, Asn::new(77));

        assert_same_study(&results, &full_rerun(&zones, &rib, &batch, &repo, now));
    }

    #[test]
    fn rib_change_remeasures_only_covered_domains() {
        let (zones, rib, mut b, now) = world();
        let repo = b.snapshot();
        let engine = StudyEngine::new(zones.clone(), rib.clone(), &repo, cfg(now));
        let mut results = engine.run(&ranking());

        // A more-specific hijack of covered.example's /16: only that
        // domain hosts addresses under 85.1/16.
        let batch = EpochChurn {
            events: vec![WorldEvent::RibAnnounce(RibEntry {
                prefix: "85.1.2.0/24".parse().unwrap(),
                path: AsPath::sequence([64601, 666]),
                peer: Asn::new(64497),
            })],
            repository: None,
            now,
        };
        let delta = engine.apply_events(&batch, &mut results);
        assert_eq!(delta.domains_remeasured, 1);
        let covered = &results.domains[0];
        // Now two pairs: the old valid /16 and the invalid hijack /24.
        assert_eq!(covered.bare.pairs.len(), 2);
        assert!(covered
            .bare
            .pairs
            .iter()
            .any(|p| p.origin == Asn::new(666) && p.state == RpkiState::Invalid));

        assert_same_study(&results, &full_rerun(&zones, &rib, &batch, &repo, now));
    }

    #[test]
    fn rpki_batch_remeasures_only_vrp_covered_domains() {
        let (zones, rib, mut b, now) = world();
        let repo = b.snapshot();
        let engine = StudyEngine::new(zones.clone(), rib.clone(), &repo, cfg(now));
        let mut results = engine.run(&ranking());
        assert_eq!(results.vrp_count, 1);

        // The CA issues a ROA for the CDN prefix with the wrong origin:
        // cdn-a and cdn-b flip NotFound→Invalid; the rest are untouched.
        let isp = b.find_ca("ISP-1").unwrap();
        b.add_roa(
            isp,
            Asn::new(999),
            vec![RoaPrefix::exact("85.3.0.0/16".parse().unwrap())],
        )
        .unwrap();
        let batch = EpochChurn {
            events: vec![WorldEvent::RoaAdded {
                prefix: "85.3.0.0/16".parse().unwrap(),
                asn: Asn::new(999),
            }],
            repository: Some(Arc::new(b.snapshot())),
            now,
        };
        let delta = engine.apply_events(&batch, &mut results);
        assert_eq!(delta.announced.len(), 1);
        assert!(delta.withdrawn.is_empty());
        assert_eq!(delta.domains_remeasured, 2);
        // Each of cdn-a/cdn-b flips one pair in both name forms.
        assert_eq!(delta.pairs_changed, 8);
        assert_eq!(results.vrp_count, 2);
        for i in [2usize, 3] {
            assert_eq!(results.domains[i].bare.pairs[0].state, RpkiState::Invalid);
        }

        assert_same_study(&results, &full_rerun(&zones, &rib, &batch, &repo, now));
    }

    #[test]
    fn threshold_exceeded_falls_back_to_full_run() {
        let (zones, rib, mut b, now) = world();
        let repo = b.snapshot();
        let config = PipelineConfig {
            // Any non-empty affected set exceeds the threshold.
            full_remeasure_threshold: Some(0),
            ..cfg(now)
        };
        let engine = StudyEngine::new(zones.clone(), rib.clone(), &repo, config);
        let mut results = engine.run(&ranking());

        let batch = EpochChurn {
            events: vec![WorldEvent::ZoneEdit {
                name: n("edge.cdn.example"),
                records: vec![RecordData::from_addr("77.7.7.7".parse().unwrap())],
            }],
            repository: None,
            now,
        };
        let delta = engine.apply_events(&batch, &mut results);
        // The fallback re-measures every domain, not just the two
        // referring ones.
        assert_eq!(delta.domains_remeasured, 4);
        assert_eq!(results.epoch, 2);
        assert_same_study(&results, &full_rerun(&zones, &rib, &batch, &repo, now));

        // The next batch rebuilds the discarded index and still chains:
        // a small batch under the serial path after a fallback.
        let batch2 = EpochChurn {
            events: vec![WorldEvent::ZoneEdit {
                name: n("plain.example"),
                records: vec![RecordData::from_addr("85.1.9.9".parse().unwrap())],
            }],
            repository: None,
            now,
        };
        let engine2 = StudyEngine::new(zones, rib, &repo, cfg(now));
        let mut serial_results = engine2.run(&ranking());
        engine2.apply_events(&batch, &mut serial_results);
        let serial_delta = engine2.apply_events(&batch2, &mut serial_results);
        let fallback_delta = engine.apply_events(&batch2, &mut results);
        assert_eq!(fallback_delta.to_epoch, 3);
        assert_eq!(fallback_delta.domains_remeasured, 4);
        assert_eq!(serial_delta.pairs_changed, fallback_delta.pairs_changed);
        assert_eq!(results.domains, serial_results.domains);
    }

    #[test]
    fn empty_batch_still_bumps_epoch() {
        let (zones, rib, mut b, now) = world();
        let repo = b.snapshot();
        let engine = StudyEngine::new(zones, rib, &repo, cfg(now));
        let mut results = engine.run(&ranking());
        let batch = EpochChurn {
            events: vec![],
            repository: None,
            now,
        };
        let delta = engine.apply_events(&batch, &mut results);
        assert_eq!(delta.to_epoch, 2);
        assert_eq!(delta.domains_remeasured, 0);
        assert_eq!(results.epoch, 2);
        assert_eq!(engine.epoch(), 2);
    }

    #[test]
    fn zone_edit_to_failed_domain_revives_it() {
        // A domain that never resolved must still be re-measured when
        // its name appears: the index carries failed walks' touched
        // sets too.
        let (mut zones, rib, mut b, now) = world();
        zones.add_cname(n("dangling.example"), n("nowhere.example"));
        zones.add_cname(n("www.dangling.example"), n("nowhere.example"));
        let repo = b.snapshot();
        let engine = StudyEngine::new(zones, rib, &repo, cfg(now));
        let ranking = vec![n("dangling.example")];
        let mut results = engine.run(&ranking);
        assert!(results.domains[0].bare.resolve_failed);

        let batch = EpochChurn {
            events: vec![WorldEvent::ZoneEdit {
                name: n("nowhere.example"),
                records: vec![RecordData::from_addr("9.9.1.1".parse().unwrap())],
            }],
            repository: None,
            now,
        };
        let delta = engine.apply_events(&batch, &mut results);
        assert_eq!(delta.domains_remeasured, 1);
        assert!(!results.domains[0].bare.resolve_failed);
        assert_eq!(results.domains[0].bare.pairs[0].origin, Asn::new(9));
    }

    #[test]
    fn consecutive_batches_chain() {
        let (zones, rib, mut b, now) = world();
        let repo = b.snapshot();
        let engine = StudyEngine::new(zones.clone(), rib.clone(), &repo, cfg(now));
        let mut results = engine.run(&ranking());
        for step in 0..3u32 {
            let batch = EpochChurn {
                events: vec![WorldEvent::ZoneEdit {
                    name: n("plain.example"),
                    records: vec![RecordData::from_addr(
                        format!("85.1.9.{}", step + 1).parse().unwrap(),
                    )],
                }],
                repository: None,
                now,
            };
            let delta = engine.apply_events(&batch, &mut results);
            assert_eq!(delta.to_epoch, u64::from(step) + 2);
            assert_eq!(delta.domains_remeasured, 1);
        }
        assert_eq!(results.epoch, 4);
        // plain.example's bare form now sits in covered space: Valid.
        assert_eq!(results.domains[1].bare.pairs[0].state, RpkiState::Valid);
        // Its www form was not edited and still points at 9.9/16.
        assert_eq!(results.domains[1].www.pairs[0].origin, Asn::new(9));
    }
}
