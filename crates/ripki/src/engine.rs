//! The snapshot-based study engine.
//!
//! The original [`Pipeline`](crate::pipeline::Pipeline) borrowed its
//! substrate (`&ZoneStore`, `&Rib`) for a lifetime `'w`, which made it
//! impossible to share a configured study across threads that outlive
//! the caller, to swap in a fresh RPKI state without rebuilding
//! everything, or to hand the RTR cache a live view of the validated
//! VRPs. This module replaces that design with:
//!
//! * [`WorldSnapshot`] — an immutable, `Arc`-shared view of one
//!   observation instant: zones + RIB + the validated VRP set, stamped
//!   with a monotonically increasing **epoch**. All measurement runs
//!   against a snapshot, so concurrent readers never observe a
//!   half-updated world.
//! * [`StudyEngine`] — owns the current snapshot behind an
//!   `RwLock<Arc<_>>`. Installing a re-fetched RPKI repository is an
//!   epoch swap: the DNS/BGP substrate is structurally shared (`Arc`
//!   clones), only the validator is rebuilt, and an [`EpochDelta`]
//!   records the announced/withdrawn VRPs — exactly what an RTR cache
//!   needs to bump its serial.
//! * A memoized resolution layer: each snapshot carries a
//!   [`ResolutionCache`] pinned to its vantage, so shared CNAME tails
//!   (the CDN case) are resolved once per epoch instead of once per
//!   referring domain. RPKI epoch swaps reuse the cache — the DNS world
//!   did not change — while a different vantage or zone set gets a
//!   fresh engine and hence a fresh cache.
//!
//! Worker panics during a sharded run no longer abort the study: each
//! domain is measured under a panic guard and failures are reported as
//! skipped ranks ([`StudyResults::skipped`]) or as a structured
//! [`EngineError`] from [`StudyEngine::try_run`].

use crate::pipeline::{
    DomainMeasurement, NameMeasurement, PairState, PipelineConfig, StudyResults,
};
use ripki_bgp::rib::Rib;
use ripki_bgp::rov::{RouteOriginValidator, VrpTriple};
use ripki_dns::cache::ResolutionCache;
use ripki_dns::faults::FaultyResolver;
use ripki_dns::resolver::Resolver;
use ripki_dns::zone::ZoneStore;
use ripki_dns::DomainName;
use ripki_net::special::SpecialRegistry;
use ripki_net::{Asn, IpPrefix};
use ripki_rpki::repo::Repository;
use ripki_rpki::time::SimTime;
use ripki_rpki::validate::validate;
use std::collections::{BTreeSet, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, RwLock};

/// An immutable view of the measured world at one epoch.
///
/// Cheap to clone through its [`Arc`] handles; all measurement methods
/// take `&self` and are safe to call from many threads at once.
pub struct WorldSnapshot {
    epoch: u64,
    zones: Arc<ZoneStore>,
    rib: Arc<Rib>,
    cache: Arc<ResolutionCache>,
    validator: RouteOriginValidator,
    vrp_count: usize,
    rpki_rejected: usize,
    config: PipelineConfig,
}

impl WorldSnapshot {
    /// Validate `repository` at `config.now` and assemble a snapshot.
    fn build(
        epoch: u64,
        zones: Arc<ZoneStore>,
        rib: Arc<Rib>,
        cache: Arc<ResolutionCache>,
        repository: &Repository,
        config: PipelineConfig,
    ) -> WorldSnapshot {
        let report = validate(repository, config.now);
        let validator = RouteOriginValidator::from_vrps(report.vrps.iter().map(|v| VrpTriple {
            prefix: v.prefix,
            max_length: v.max_length,
            asn: v.asn,
        }));
        WorldSnapshot {
            epoch,
            zones,
            rib,
            cache,
            vrp_count: report.vrps.len(),
            rpki_rejected: report.rejected_count(),
            validator,
            config,
        }
    }

    /// The snapshot's epoch (1 for a fresh engine, +1 per RPKI swap).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The DNS substrate.
    pub fn zones(&self) -> &ZoneStore {
        &self.zones
    }

    /// The BGP table.
    pub fn rib(&self) -> &Rib {
        &self.rib
    }

    /// The origin validator built from this epoch's validated VRPs.
    pub fn validator(&self) -> &RouteOriginValidator {
        &self.validator
    }

    /// This epoch's validated VRPs, in insertion order — the payload an
    /// RTR cache serves (see `CacheServer::install_snapshot`).
    pub fn vrps(&self) -> &[VrpTriple] {
        self.validator.vrps()
    }

    /// Count of VRPs used for validation.
    pub fn vrp_count(&self) -> usize {
        self.vrp_count
    }

    /// Objects rejected during cryptographic RPKI validation.
    pub fn rpki_rejected(&self) -> usize {
        self.rpki_rejected
    }

    /// The configuration this snapshot was built with.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The memoized resolution cache (hit/miss counters for benches).
    pub fn resolution_cache(&self) -> &ResolutionCache {
        &self.cache
    }

    /// A resolver over this snapshot's zones. Constructing one is not
    /// free (it captures the fault-injection state), so `run` builds
    /// one per worker thread rather than one per name.
    pub fn resolver(&self) -> FaultyResolver<'_> {
        FaultyResolver::new(
            Resolver::new(&self.zones, self.config.vantage),
            self.config.bogus_dns_ppm,
            self.config.dns_fault_seed,
        )
    }

    /// Measure one name form with a caller-provided (per-worker)
    /// resolver, going through the memoized resolution cache.
    fn measure_name_with(
        &self,
        resolver: &FaultyResolver<'_>,
        name: &DomainName,
    ) -> NameMeasurement {
        let mut m = NameMeasurement::default();
        let resolution = match resolver.resolve_cached(name, &self.cache) {
            Ok(r) => r,
            Err(_) => {
                m.resolve_failed = true;
                return m;
            }
        };
        m.cname_chain = resolution.cname_chain;
        m.dnssec_authenticated = resolution.authenticated;
        let registry = SpecialRegistry::global();
        // Within one epoch the state is a function of (prefix, origin),
        // so deduplicating on the pair before validating preserves the
        // old `Vec::contains` output while dropping the O(n²) scan and
        // the redundant validator lookups.
        let mut seen: HashSet<(IpPrefix, Asn)> = HashSet::new();
        for addr in resolution.addresses {
            // Step 2 exclusion: special-purpose answers are invalid.
            if registry.is_invalid_answer(addr) {
                m.excluded_invalid += 1;
                continue;
            }
            m.addresses.push(addr);
            // Step 3: all covering prefixes and origins.
            let mapping = self.rib.origins_for_addr(addr);
            m.as_set_skipped += mapping.as_set_skipped;
            if !mapping.is_reachable() {
                m.unreachable += 1;
                continue;
            }
            for po in mapping.pairs {
                if !seen.insert((po.prefix, po.origin)) {
                    continue;
                }
                // Step 4: RFC 6811 per pair.
                let state = self.validator.validate(&po.prefix, po.origin);
                m.pairs.push(PairState {
                    prefix: po.prefix,
                    origin: po.origin,
                    state,
                });
            }
        }
        m
    }

    /// Measure one ranked domain (both name forms).
    pub fn measure_domain(&self, rank: usize, listed: &DomainName) -> DomainMeasurement {
        self.measure_domain_with(&self.resolver(), rank, listed)
    }

    fn measure_domain_with(
        &self,
        resolver: &FaultyResolver<'_>,
        rank: usize,
        listed: &DomainName,
    ) -> DomainMeasurement {
        let bare = listed.without_www();
        let www = bare.with_www();
        DomainMeasurement {
            rank,
            listed: listed.clone(),
            www: self.measure_name_with(resolver, &www),
            bare: self.measure_name_with(resolver, &bare),
        }
    }

    /// Re-apply this snapshot's VRPs to an existing study's (prefix,
    /// origin) pairs without repeating DNS resolution or table lookups —
    /// what a longitudinal study does when only the RPKI changed between
    /// observations. Returns the number of pair states that changed and
    /// restamps `results` with this snapshot's epoch and VRP counters.
    ///
    /// Equivalent to a full [`run`](Self::run) whenever only the
    /// repository differs between the two snapshots.
    pub fn revalidate(&self, results: &mut StudyResults) -> usize {
        let mut changed = 0;
        for d in &mut results.domains {
            for m in [&mut d.www, &mut d.bare] {
                for pair in &mut m.pairs {
                    let state = self.validator.validate(&pair.prefix, pair.origin);
                    if state != pair.state {
                        pair.state = state;
                        changed += 1;
                    }
                }
            }
        }
        results.vrp_count = self.vrp_count;
        results.rpki_rejected = self.rpki_rejected;
        results.epoch = self.epoch;
        changed
    }

    /// Run the full study over a ranked list, sharded across threads.
    /// A domain whose measurement panics is skipped and its rank
    /// recorded in [`StudyResults::skipped`] — one bad domain cannot
    /// kill a million-domain study.
    pub fn run(&self, ranking: &[DomainName]) -> StudyResults {
        let (domains, skipped) = self.run_sharded(ranking);
        StudyResults {
            domains,
            vrp_count: self.vrp_count,
            rpki_rejected: self.rpki_rejected,
            epoch: self.epoch,
            skipped,
        }
    }

    /// Like [`run`](Self::run), but any skipped domain turns the whole
    /// study into a structured [`EngineError`] for callers that must
    /// not publish partial results.
    pub fn try_run(&self, ranking: &[DomainName]) -> Result<StudyResults, EngineError> {
        let results = self.run(ranking);
        if results.skipped.is_empty() {
            Ok(results)
        } else {
            Err(EngineError::DomainsPanicked {
                ranks: results.skipped,
            })
        }
    }

    fn run_sharded(&self, ranking: &[DomainName]) -> (Vec<DomainMeasurement>, Vec<usize>) {
        if ranking.is_empty() {
            return (Vec::new(), Vec::new());
        }
        let threads = self.config.worker_threads();
        let chunk = ranking.len().div_ceil(threads).max(1);
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (i, part) in ranking.chunks(chunk).enumerate() {
                let base = i * chunk;
                handles.push(scope.spawn(move || {
                    // One resolver per worker, reused across its shard.
                    let resolver = self.resolver();
                    let mut measured = Vec::with_capacity(part.len());
                    let mut skipped = Vec::new();
                    for (k, name) in part.iter().enumerate() {
                        let rank = base + k;
                        let guarded = catch_unwind(AssertUnwindSafe(|| {
                            self.measure_domain_with(&resolver, rank, name)
                        }));
                        match guarded {
                            Ok(m) => measured.push(m),
                            Err(_) => skipped.push(rank),
                        }
                    }
                    (measured, skipped)
                }));
            }
            let mut domains = Vec::with_capacity(ranking.len());
            let mut skipped = Vec::new();
            for (i, handle) in handles.into_iter().enumerate() {
                match handle.join() {
                    Ok((measured, shard_skipped)) => {
                        domains.extend(measured);
                        skipped.extend(shard_skipped);
                    }
                    Err(_) => {
                        // A panic escaped the per-domain guard (e.g.
                        // inside the guard bookkeeping itself): count
                        // the whole shard as skipped.
                        let base = i * chunk;
                        let len = ranking[base..].len().min(chunk);
                        skipped.extend(base..base + len);
                    }
                }
            }
            (domains, skipped)
        })
    }
}

/// What changed between two RPKI epochs, in RTR terms.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EpochDelta {
    /// Epoch the engine moved from.
    pub from_epoch: u64,
    /// Epoch the engine moved to.
    pub to_epoch: u64,
    /// VRPs present now but not before.
    pub announced: Vec<VrpTriple>,
    /// VRPs present before but not now.
    pub withdrawn: Vec<VrpTriple>,
    /// Pair states flipped by a [`StudyEngine::revalidate`] (0 when the
    /// delta came from a bare [`StudyEngine::install_rpki`]).
    pub pairs_changed: usize,
}

impl EpochDelta {
    /// No VRP-level change between the epochs.
    pub fn is_empty(&self) -> bool {
        self.announced.is_empty() && self.withdrawn.is_empty()
    }
}

/// Structured failure from [`StudyEngine::try_run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// These ranks panicked during measurement and were not measured.
    DomainsPanicked {
        /// Ranks (0-based positions in the input ranking) skipped.
        ranks: Vec<usize>,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::DomainsPanicked { ranks } => {
                write!(
                    f,
                    "{} domain measurement(s) panicked (ranks {:?})",
                    ranks.len(),
                    ranks
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// The study engine: owns the current [`WorldSnapshot`] and swaps it
/// atomically on RPKI refresh.
///
/// `&StudyEngine` is all a consumer needs — readers grab an `Arc` to
/// the snapshot they started with and are immune to concurrent swaps.
pub struct StudyEngine {
    current: RwLock<Arc<WorldSnapshot>>,
}

impl StudyEngine {
    /// Build an engine at epoch 1 from owned substrate.
    pub fn new(
        zones: ZoneStore,
        rib: Rib,
        repository: &Repository,
        config: PipelineConfig,
    ) -> StudyEngine {
        StudyEngine::from_shared(Arc::new(zones), Arc::new(rib), repository, config)
    }

    /// Build an engine at epoch 1 from already-shared substrate.
    pub fn from_shared(
        zones: Arc<ZoneStore>,
        rib: Arc<Rib>,
        repository: &Repository,
        config: PipelineConfig,
    ) -> StudyEngine {
        let cache = Arc::new(ResolutionCache::new(config.vantage));
        let snapshot = WorldSnapshot::build(1, zones, rib, cache, repository, config);
        StudyEngine {
            current: RwLock::new(Arc::new(snapshot)),
        }
    }

    /// The current snapshot. Hold the `Arc` for a consistent view
    /// across an entire computation.
    pub fn snapshot(&self) -> Arc<WorldSnapshot> {
        self.current
            .read()
            .expect("engine snapshot lock poisoned")
            .clone()
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.snapshot().epoch
    }

    /// Install a re-validated RPKI repository as a new epoch.
    ///
    /// The DNS and BGP substrate — and the resolution cache, since the
    /// DNS world is unchanged — carry over by `Arc` clone; only the
    /// validator is rebuilt. Returns the VRP-level [`EpochDelta`]
    /// (announce/withdraw sets), which maps 1:1 onto an RTR serial
    /// increment.
    pub fn install_rpki(&self, repository: &Repository, now: SimTime) -> EpochDelta {
        let mut guard = self.current.write().expect("engine snapshot lock poisoned");
        let old = Arc::clone(&guard);
        let mut config = old.config.clone();
        config.now = now;
        let next = WorldSnapshot::build(
            old.epoch + 1,
            Arc::clone(&old.zones),
            Arc::clone(&old.rib),
            Arc::clone(&old.cache),
            repository,
            config,
        );
        let before: BTreeSet<VrpTriple> = old.vrps().iter().copied().collect();
        let after: BTreeSet<VrpTriple> = next.vrps().iter().copied().collect();
        let delta = EpochDelta {
            from_epoch: old.epoch,
            to_epoch: next.epoch,
            announced: after.difference(&before).copied().collect(),
            withdrawn: before.difference(&after).copied().collect(),
            pairs_changed: 0,
        };
        *guard = Arc::new(next);
        delta
    }

    /// Epoch-swap revalidation: install `repository` as a new epoch and
    /// recompute only the step-4 states of an existing study in place.
    /// Equivalent to a full re-[`run`](Self::run) whenever only the
    /// repository changed between the observations, at none of the
    /// DNS/RIB cost. The returned delta carries the announce/withdraw
    /// VRP sets and the number of pair states that flipped.
    pub fn revalidate(
        &self,
        repository: &Repository,
        now: SimTime,
        results: &mut StudyResults,
    ) -> EpochDelta {
        let mut delta = self.install_rpki(repository, now);
        delta.pairs_changed = self.snapshot().revalidate(results);
        delta
    }

    /// Run the full study against the current snapshot (skip-and-count
    /// panic policy; see [`WorldSnapshot::run`]).
    pub fn run(&self, ranking: &[DomainName]) -> StudyResults {
        self.snapshot().run(ranking)
    }

    /// Run, failing with a structured error if any domain was skipped.
    pub fn try_run(&self, ranking: &[DomainName]) -> Result<StudyResults, EngineError> {
        self.snapshot().try_run(ranking)
    }
}
