//! Headline statistics and report export.
//!
//! The §4 intro numbers: address counts per name form, prefix-AS pair
//! counts, excluded DNS answers, unreachable addresses — computed from
//! the same per-domain measurements the figures use.

use crate::pipeline::StudyResults;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The §4 headline statistics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HeadlineStats {
    /// Domains measured.
    pub domains: usize,
    /// Addresses gathered for the `www` forms (paper: 1,167,086 at 1M).
    pub www_addresses: usize,
    /// Addresses gathered for the bare forms (paper: 1,154,170).
    pub bare_addresses: usize,
    /// Distinct prefix-AS pairs for the `www` forms (paper: 1,369,030).
    pub www_pairs: usize,
    /// Distinct prefix-AS pairs for the bare forms (paper: 1,334,957).
    pub bare_pairs: usize,
    /// Fraction of DNS answers excluded as special-purpose
    /// (paper: 0.07%).
    pub invalid_dns_fraction: f64,
    /// Fraction of kept addresses unreachable from the BGP vantage
    /// (paper: 0.01%).
    pub unreachable_fraction: f64,
    /// Table entries skipped for `AS_SET` origins.
    pub as_set_skipped: usize,
    /// Names that failed to resolve entirely.
    pub resolve_failures: usize,
    /// VRPs used for origin validation.
    pub vrp_count: usize,
}

impl HeadlineStats {
    /// Compute from study results.
    pub fn compute(results: &StudyResults) -> HeadlineStats {
        let mut s = HeadlineStats {
            domains: results.domains.len(),
            vrp_count: results.vrp_count,
            ..Default::default()
        };
        let mut total_answers = 0usize;
        let mut excluded = 0usize;
        let mut unreachable = 0usize;
        for d in &results.domains {
            s.www_addresses += d.www.addresses.len();
            s.bare_addresses += d.bare.addresses.len();
            s.www_pairs += d.www.pairs.len();
            s.bare_pairs += d.bare.pairs.len();
            for m in [&d.www, &d.bare] {
                total_answers += m.addresses.len() + m.excluded_invalid;
                excluded += m.excluded_invalid;
                unreachable += m.unreachable;
                s.as_set_skipped += m.as_set_skipped;
                if m.resolve_failed {
                    s.resolve_failures += 1;
                }
            }
        }
        if total_answers > 0 {
            s.invalid_dns_fraction = excluded as f64 / total_answers as f64;
        }
        let kept = s.www_addresses + s.bare_addresses;
        if kept > 0 {
            s.unreachable_fraction = unreachable as f64 / kept as f64;
        }
        s
    }

    /// Average prefix-AS pairs per kept address (the paper's ≈1.17).
    pub fn pairs_per_address(&self) -> f64 {
        let addrs = (self.www_addresses + self.bare_addresses) as f64;
        if addrs == 0.0 {
            return 0.0;
        }
        (self.www_pairs + self.bare_pairs) as f64 / addrs
    }

    /// Serialize to a JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("stats are serializable")
    }
}

impl fmt::Display for HeadlineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "domains measured:          {}", self.domains)?;
        writeln!(f, "www addresses:             {}", self.www_addresses)?;
        writeln!(f, "w/o www addresses:         {}", self.bare_addresses)?;
        writeln!(f, "www prefix-AS pairs:       {}", self.www_pairs)?;
        writeln!(f, "w/o www prefix-AS pairs:   {}", self.bare_pairs)?;
        writeln!(
            f,
            "invalid DNS answers:       {:.3}%",
            self.invalid_dns_fraction * 100.0
        )?;
        writeln!(
            f,
            "unreachable addresses:     {:.3}%",
            self.unreachable_fraction * 100.0
        )?;
        writeln!(f, "AS_SET entries skipped:    {}", self.as_set_skipped)?;
        writeln!(f, "resolution failures:       {}", self.resolve_failures)?;
        write!(f, "VRPs loaded:               {}", self.vrp_count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{DomainMeasurement, NameMeasurement, PairState};
    use ripki_bgp::rov::RpkiState;
    use ripki_net::Asn;

    fn nm(addrs: usize, pairs: usize, excluded: usize, unreachable: usize) -> NameMeasurement {
        NameMeasurement {
            addresses: (0..addrs)
                .map(|i| format!("9.9.{i}.1").parse().unwrap())
                .collect(),
            pairs: (0..pairs)
                .map(|i| PairState {
                    prefix: format!("9.{i}.0.0/16").parse().unwrap(),
                    origin: Asn::new(1),
                    state: RpkiState::NotFound,
                })
                .collect(),
            excluded_invalid: excluded,
            unreachable,
            ..Default::default()
        }
    }

    #[test]
    fn compute_aggregates() {
        let results = StudyResults {
            domains: vec![
                DomainMeasurement {
                    rank: 0,
                    listed: ripki_dns::DomainName::parse("a.example").unwrap(),
                    www: nm(2, 3, 1, 0),
                    bare: nm(1, 1, 0, 1),
                },
                DomainMeasurement {
                    rank: 1,
                    listed: ripki_dns::DomainName::parse("b.example").unwrap(),
                    www: nm(1, 1, 0, 0),
                    bare: NameMeasurement {
                        resolve_failed: true,
                        ..Default::default()
                    },
                },
            ],
            vrp_count: 42,
            rpki_rejected: 0,
            ..Default::default()
        };
        let s = HeadlineStats::compute(&results);
        assert_eq!(s.domains, 2);
        assert_eq!(s.www_addresses, 3);
        assert_eq!(s.bare_addresses, 1);
        assert_eq!(s.www_pairs, 4);
        assert_eq!(s.bare_pairs, 1);
        assert_eq!(s.resolve_failures, 1);
        assert_eq!(s.vrp_count, 42);
        // 5 total answers incl. 1 excluded.
        assert!((s.invalid_dns_fraction - 0.2).abs() < 1e-9);
        // 4 kept addresses, 1 unreachable.
        assert!((s.unreachable_fraction - 0.25).abs() < 1e-9);
        assert!((s.pairs_per_address() - 5.0 / 4.0).abs() < 1e-9);
    }

    #[test]
    fn empty_results_no_nan() {
        let s = HeadlineStats::compute(&StudyResults::default());
        assert_eq!(s.invalid_dns_fraction, 0.0);
        assert_eq!(s.unreachable_fraction, 0.0);
        assert_eq!(s.pairs_per_address(), 0.0);
    }

    #[test]
    fn json_roundtrip() {
        let s = HeadlineStats {
            domains: 7,
            vrp_count: 3,
            ..Default::default()
        };
        let json = s.to_json();
        let back: HeadlineStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn display_mentions_key_numbers() {
        let s = HeadlineStats {
            domains: 1000,
            www_addresses: 1167,
            ..Default::default()
        };
        let text = s.to_string();
        assert!(text.contains("1000"));
        assert!(text.contains("1167"));
        assert!(text.contains("w/o www"));
    }
}
