//! Table builders — Table 1: the top-ranked domains with any RPKI
//! coverage.

use crate::pipeline::{NameMeasurement, StudyResults};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Coverage mark for one name form, as printed in Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoverageMark {
    /// All prefixes covered (the paper's check mark).
    Full,
    /// Some but not all prefixes covered (the paper's half mark).
    Partial,
    /// No prefix covered (the paper's cross).
    None,
    /// Name form did not resolve / no data (the paper's "n/a").
    NotAvailable,
}

impl fmt::Display for CoverageMark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoverageMark::Full => write!(f, "✓"),
            CoverageMark::Partial => write!(f, "◐"),
            CoverageMark::None => write!(f, "✗"),
            CoverageMark::NotAvailable => write!(f, "n/a"),
        }
    }
}

/// One Table 1 cell: mark plus `(covered/total)` counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoverageCell {
    /// The mark.
    pub mark: CoverageMark,
    /// Covered prefix-AS pairs.
    pub covered: usize,
    /// Total prefix-AS pairs.
    pub total: usize,
}

impl CoverageCell {
    /// Build from a name measurement.
    pub fn of(m: &NameMeasurement) -> CoverageCell {
        if m.resolve_failed || m.pairs.is_empty() {
            return CoverageCell {
                mark: CoverageMark::NotAvailable,
                covered: 0,
                total: 0,
            };
        }
        let (covered, total) = m.coverage_counts();
        let mark = if covered == 0 {
            CoverageMark::None
        } else if covered == total {
            CoverageMark::Full
        } else {
            CoverageMark::Partial
        };
        CoverageCell {
            mark,
            covered,
            total,
        }
    }

    /// Whether this cell shows any coverage.
    pub fn any_coverage(&self) -> bool {
        self.covered > 0
    }
}

impl fmt::Display for CoverageCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.mark {
            CoverageMark::NotAvailable => write!(f, "n/a"),
            _ => write!(f, "{} ({}/{})", self.mark, self.covered, self.total),
        }
    }
}

/// One Table 1 row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Row {
    /// 1-based Alexa-style rank.
    pub rank: usize,
    /// The domain as listed.
    pub domain: String,
    /// Coverage of the `www` form.
    pub www: CoverageCell,
    /// Coverage of the bare form.
    pub bare: CoverageCell,
}

impl fmt::Display for Table1Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>7}  {:<34} {:>12} {:>12}",
            self.rank,
            self.domain,
            self.www.to_string(),
            self.bare.to_string()
        )
    }
}

/// Table 1: the first `n` ranked domains having RPKI coverage on at
/// least one name form (the paper shows the top 10).
pub fn table1_top_covered(results: &StudyResults, n: usize) -> Vec<Table1Row> {
    let mut rows = Vec::with_capacity(n);
    for d in &results.domains {
        let www = CoverageCell::of(&d.www);
        let bare = CoverageCell::of(&d.bare);
        if www.any_coverage() || bare.any_coverage() {
            rows.push(Table1Row {
                rank: d.rank + 1,
                domain: d.listed.to_string(),
                www,
                bare,
            });
            if rows.len() == n {
                break;
            }
        }
    }
    rows
}

/// Render Table 1 rows with a header, paper-style.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut out =
        String::from("   rank  domain                                      www      w/o www\n");
    for row in rows {
        out.push_str(&row.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{DomainMeasurement, PairState};
    use ripki_bgp::rov::RpkiState;
    use ripki_net::Asn;

    fn nm(states: &[RpkiState]) -> NameMeasurement {
        NameMeasurement {
            pairs: states
                .iter()
                .enumerate()
                .map(|(i, s)| PairState {
                    prefix: format!("10.{i}.0.0/16").parse().unwrap(),
                    origin: Asn::new(1),
                    state: *s,
                })
                .collect(),
            ..Default::default()
        }
    }

    fn dm(rank: usize, www: &[RpkiState], bare: &[RpkiState]) -> DomainMeasurement {
        DomainMeasurement {
            rank,
            listed: ripki_dns::DomainName::parse(&format!("d{rank}.example")).unwrap(),
            www: nm(www),
            bare: nm(bare),
        }
    }

    use RpkiState::*;

    #[test]
    fn coverage_cells() {
        let full = CoverageCell::of(&nm(&[Valid, Invalid]));
        assert_eq!(full.mark, CoverageMark::Full);
        assert_eq!((full.covered, full.total), (2, 2));
        let partial = CoverageCell::of(&nm(&[Valid, NotFound, NotFound]));
        assert_eq!(partial.mark, CoverageMark::Partial);
        assert_eq!(partial.to_string(), "◐ (1/3)");
        let none = CoverageCell::of(&nm(&[NotFound]));
        assert_eq!(none.mark, CoverageMark::None);
        assert!(!none.any_coverage());
        let na = CoverageCell::of(&nm(&[]));
        assert_eq!(na.mark, CoverageMark::NotAvailable);
        assert_eq!(na.to_string(), "n/a");
        let failed = CoverageCell::of(&NameMeasurement {
            resolve_failed: true,
            ..Default::default()
        });
        assert_eq!(failed.mark, CoverageMark::NotAvailable);
    }

    #[test]
    fn table1_picks_first_covered_in_rank_order() {
        let results = StudyResults {
            domains: vec![
                dm(0, &[NotFound], &[NotFound]),
                dm(1, &[Valid, Valid], &[Valid]),
                dm(2, &[NotFound], &[Invalid, NotFound]),
                dm(3, &[NotFound], &[NotFound]),
                dm(4, &[Valid], &[NotFound]),
            ],
            vrp_count: 0,
            rpki_rejected: 0,
            ..Default::default()
        };
        let rows = table1_top_covered(&results, 10);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].rank, 2);
        assert_eq!(rows[0].www.mark, CoverageMark::Full);
        assert_eq!(rows[1].rank, 3);
        assert_eq!(rows[1].bare.mark, CoverageMark::Partial);
        assert_eq!(rows[2].rank, 5);
        // Invalid counts as covered, per the paper ("either correctly or
        // incorrectly announced").
        assert!(rows[1].bare.any_coverage());
    }

    #[test]
    fn table1_respects_n() {
        let results = StudyResults {
            domains: (0..20).map(|r| dm(r, &[Valid], &[Valid])).collect(),
            vrp_count: 0,
            rpki_rejected: 0,
            ..Default::default()
        };
        assert_eq!(table1_top_covered(&results, 10).len(), 10);
    }

    #[test]
    fn rendering_contains_header_and_rows() {
        let results = StudyResults {
            domains: vec![dm(0, &[Valid], &[NotFound])],
            vrp_count: 0,
            rpki_rejected: 0,
            ..Default::default()
        };
        let rows = table1_top_covered(&results, 10);
        let text = render_table1(&rows);
        assert!(text.contains("w/o www"));
        assert!(text.contains("d0.example"));
        assert!(text.contains("✓ (1/1)"));
        assert!(text.contains("✗ (0/1)"));
    }
}
