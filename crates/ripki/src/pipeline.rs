//! The four-step measurement pipeline: compat façade.
//!
//! The measurement itself lives in [`crate::engine`]: an `Arc`-shared,
//! epoch-versioned [`WorldSnapshot`](crate::engine::WorldSnapshot)
//! owned by a [`StudyEngine`](crate::engine::StudyEngine), and the
//! result types live in [`crate::model`] (re-exported here for
//! backwards compatibility). This module keeps only the
//! borrow-compatible [`Pipeline`] façade so existing
//! `Pipeline::new(&zones, &rib, …)` call sites keep working.

pub use crate::model::{
    DomainMeasurement, NameMeasurement, PairState, PipelineConfig, StudyResults,
};

use crate::engine::{StudyEngine, WorldSnapshot};
use ripki_bgp::rib::Rib;
use ripki_bgp::rov::RouteOriginValidator;
use ripki_dns::zone::ZoneStore;
use ripki_dns::DomainName;
use ripki_rpki::repo::Repository;
use std::marker::PhantomData;
use std::sync::Arc;

/// The configured pipeline — a borrow-compatible façade over one
/// [`WorldSnapshot`].
///
/// `Pipeline` predates the engine and borrowed its substrate for `'w`;
/// it now clones the substrate into a private epoch-1 snapshot, so the
/// lifetime only constrains the constructor arguments. New code should
/// use [`StudyEngine`] directly and keep the substrate in `Arc`s —
/// that also unlocks epoch swaps ([`StudyEngine::install_rpki`]),
/// which a `Pipeline` (fixed at its construction epoch) cannot do.
pub struct Pipeline<'w> {
    snapshot: Arc<WorldSnapshot>,
    _world: PhantomData<&'w ZoneStore>,
}

impl<'w> Pipeline<'w> {
    /// Build a pipeline: validates `repository` cryptographically (step
    /// 4's ROA collection) and indexes the VRPs for origin validation.
    pub fn new(
        zones: &'w ZoneStore,
        rib: &'w Rib,
        repository: &Repository,
        config: PipelineConfig,
    ) -> Pipeline<'w> {
        let engine = StudyEngine::new(zones.clone(), rib.clone(), repository, config);
        Pipeline {
            snapshot: engine.snapshot(),
            _world: PhantomData,
        }
    }

    /// The underlying snapshot (for interop with engine-based code).
    pub fn snapshot(&self) -> Arc<WorldSnapshot> {
        Arc::clone(&self.snapshot)
    }

    /// Access the origin validator (for hijack experiments etc.).
    pub fn validator(&self) -> &RouteOriginValidator {
        self.snapshot.validator()
    }

    /// Measure one ranked domain (both name forms).
    pub fn measure_domain(&self, rank: usize, listed: &DomainName) -> DomainMeasurement {
        self.snapshot.measure_domain(rank, listed)
    }

    /// Re-apply this pipeline's VRPs to an existing study's (prefix,
    /// origin) pairs without repeating DNS resolution or table lookups.
    /// See [`WorldSnapshot::revalidate`].
    pub fn revalidate(&self, results: &mut StudyResults) {
        self.snapshot.revalidate(results);
    }

    /// Run the full study over a ranked list, sharded across threads.
    pub fn run(&self, ranking: &[DomainName]) -> StudyResults {
        self.snapshot.run(ranking)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripki_bgp::path::AsPath;
    use ripki_bgp::rib::RibEntry;
    use ripki_bgp::rov::RpkiState;
    use ripki_net::Asn;
    use ripki_rpki::repo::RepositoryBuilder;
    use ripki_rpki::resources::Resources;
    use ripki_rpki::roa::RoaPrefix;
    use ripki_rpki::time::{Duration, SimTime};

    fn n(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    /// Small hand-built world: two domains, one ROA-covered prefix.
    fn world() -> (ZoneStore, Rib, Repository, SimTime) {
        let mut zones = ZoneStore::new();
        // covered.example on 85.1.0.0/16 (valid ROA, AS100)
        zones.add_addr(n("covered.example"), "85.1.2.3".parse().unwrap());
        zones.add_cname(n("www.covered.example"), n("covered.example"));
        // plain.example on 9.9.0.0/16 (no ROA)
        zones.add_addr(n("plain.example"), "9.9.1.1".parse().unwrap());
        zones.add_addr(n("www.plain.example"), "9.9.1.1".parse().unwrap());
        // hijacked.example on 85.2.0.0/16 announced by wrong AS
        zones.add_addr(n("hijacked.example"), "85.2.9.9".parse().unwrap());
        zones.add_addr(n("www.hijacked.example"), "85.2.9.9".parse().unwrap());
        // bogus.example answers a reserved address
        zones.add_addr(n("bogus.example"), "127.0.0.1".parse().unwrap());
        zones.add_addr(n("www.bogus.example"), "127.0.0.1".parse().unwrap());
        // dark.example resolves to unannounced space
        zones.add_addr(n("dark.example"), "77.7.7.7".parse().unwrap());
        zones.add_addr(n("www.dark.example"), "77.7.7.7".parse().unwrap());

        let mut rib = Rib::new();
        for (pfx, origin) in [
            ("85.1.0.0/16", 100u32),
            ("85.2.0.0/16", 666),
            ("9.9.0.0/16", 9),
        ] {
            rib.insert(RibEntry {
                prefix: pfx.parse().unwrap(),
                path: AsPath::sequence([64601, origin]),
                peer: Asn::new(64496),
            });
        }

        let mut b = RepositoryBuilder::new(1, SimTime::EPOCH);
        let ta = b.add_trust_anchor(
            "RIPE",
            Resources::from_prefixes(vec!["80.0.0.0/4".parse().unwrap()]),
        );
        let isp = b
            .add_ca(
                ta,
                "ISP-1",
                Resources::from_prefixes(vec!["85.0.0.0/8".parse().unwrap()]),
            )
            .unwrap();
        b.add_roa(
            isp,
            Asn::new(100),
            vec![RoaPrefix::exact("85.1.0.0/16".parse().unwrap())],
        )
        .unwrap();
        b.add_roa(
            isp,
            Asn::new(555),
            vec![RoaPrefix::exact("85.2.0.0/16".parse().unwrap())],
        )
        .unwrap();
        (zones, rib, b.finalize(), SimTime::EPOCH + Duration::days(1))
    }

    fn pipeline_cfg(now: SimTime) -> PipelineConfig {
        PipelineConfig {
            bogus_dns_ppm: 0,
            now,
            threads: 2,
            ..Default::default()
        }
    }

    #[test]
    fn states_assigned_correctly() {
        let (zones, rib, repo, now) = world();
        let p = Pipeline::new(&zones, &rib, &repo, pipeline_cfg(now));
        let covered = p.measure_domain(0, &n("covered.example"));
        assert_eq!(covered.bare.pairs.len(), 1);
        assert_eq!(covered.bare.pairs[0].state, RpkiState::Valid);
        assert_eq!(covered.bare.coverage_counts(), (1, 1));
        // www form CNAMEs to bare: one indirection, same pairs.
        assert_eq!(covered.www.indirections(), 1);
        assert!(covered.equal_prefixes());

        let plain = p.measure_domain(1, &n("plain.example"));
        assert_eq!(plain.bare.pairs[0].state, RpkiState::NotFound);
        assert_eq!(plain.bare.covered_fraction(), Some(0.0));

        let hijacked = p.measure_domain(2, &n("hijacked.example"));
        assert_eq!(hijacked.bare.pairs[0].state, RpkiState::Invalid);
        assert_eq!(hijacked.bare.covered_fraction(), Some(1.0));
    }

    #[test]
    fn special_purpose_answers_excluded() {
        let (zones, rib, repo, now) = world();
        let p = Pipeline::new(&zones, &rib, &repo, pipeline_cfg(now));
        let m = p.measure_domain(0, &n("bogus.example"));
        assert_eq!(m.bare.excluded_invalid, 1);
        assert!(m.bare.addresses.is_empty());
        assert!(m.bare.pairs.is_empty());
        assert_eq!(m.bare.state_fraction(RpkiState::Valid), None);
    }

    #[test]
    fn unreachable_addresses_counted() {
        let (zones, rib, repo, now) = world();
        let p = Pipeline::new(&zones, &rib, &repo, pipeline_cfg(now));
        let m = p.measure_domain(0, &n("dark.example"));
        assert_eq!(m.bare.unreachable, 1);
        assert_eq!(m.bare.addresses.len(), 1);
        assert!(m.bare.pairs.is_empty());
    }

    #[test]
    fn nxdomain_reported() {
        let (zones, rib, repo, now) = world();
        let p = Pipeline::new(&zones, &rib, &repo, pipeline_cfg(now));
        let m = p.measure_domain(0, &n("missing.example"));
        assert!(m.bare.resolve_failed);
        assert!(m.www.resolve_failed);
    }

    #[test]
    fn run_preserves_rank_order_across_threads() {
        let (zones, rib, repo, now) = world();
        let p = Pipeline::new(&zones, &rib, &repo, pipeline_cfg(now));
        let ranking = vec![
            n("covered.example"),
            n("plain.example"),
            n("hijacked.example"),
            n("dark.example"),
            n("bogus.example"),
        ];
        let results = p.run(&ranking);
        assert_eq!(results.domains.len(), 5);
        for (i, d) in results.domains.iter().enumerate() {
            assert_eq!(d.rank, i);
            assert_eq!(&d.listed, &ranking[i]);
        }
        assert_eq!(results.vrp_count, 2);
        assert_eq!(results.rpki_rejected, 0);
        assert_eq!(results.epoch, 1);
        assert!(results.skipped.is_empty());
    }

    #[test]
    fn run_empty_ranking() {
        let (zones, rib, repo, now) = world();
        let p = Pipeline::new(&zones, &rib, &repo, pipeline_cfg(now));
        let results = p.run(&[]);
        assert!(results.domains.is_empty());
    }

    #[test]
    fn single_thread_equals_multi_thread() {
        let (zones, rib, repo, now) = world();
        let ranking = vec![n("covered.example"), n("plain.example")];
        let single = Pipeline::new(
            &zones,
            &rib,
            &repo,
            PipelineConfig {
                threads: 1,
                bogus_dns_ppm: 0,
                now,
                ..Default::default()
            },
        )
        .run(&ranking);
        let multi = Pipeline::new(
            &zones,
            &rib,
            &repo,
            PipelineConfig {
                threads: 4,
                bogus_dns_ppm: 0,
                now,
                ..Default::default()
            },
        )
        .run(&ranking);
        assert_eq!(single.domains.len(), multi.domains.len());
        for (a, b) in single.domains.iter().zip(&multi.domains) {
            assert_eq!(a.bare, b.bare);
            assert_eq!(a.www, b.www);
        }
    }

    #[test]
    fn explicit_thread_count_is_uncapped() {
        // CI runs the suite under a RIPKI_THREADS matrix, and the env
        // var deliberately outranks the config field — so compute what
        // the knob should resolve to rather than pinning 100.
        let env_threads = std::env::var("RIPKI_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok());
        let cfg = PipelineConfig {
            threads: 100,
            ..Default::default()
        };
        let auto = PipelineConfig {
            threads: 0,
            ..Default::default()
        };
        match env_threads {
            Some(t) if t > 0 => {
                assert_eq!(cfg.worker_threads(), t);
                assert_eq!(auto.worker_threads(), t);
            }
            // RIPKI_THREADS=0 forces auto-detect even over an explicit
            // config; unset (or unparseable) leaves the config in
            // charge.
            Some(_) => {
                assert!((1..=64).contains(&cfg.worker_threads()));
                assert!((1..=64).contains(&auto.worker_threads()));
            }
            None => {
                assert_eq!(cfg.worker_threads(), 100);
                assert!((1..=64).contains(&auto.worker_threads()));
            }
        }
    }

    #[test]
    fn www_listed_input_measured_same_as_bare_listed() {
        let (zones, rib, repo, now) = world();
        let p = Pipeline::new(&zones, &rib, &repo, pipeline_cfg(now));
        let from_bare = p.measure_domain(0, &n("covered.example"));
        let from_www = p.measure_domain(0, &n("www.covered.example"));
        assert_eq!(from_bare.bare, from_www.bare);
        assert_eq!(from_bare.www, from_www.www);
    }

    #[test]
    fn revalidate_matches_full_rerun() {
        let (zones, rib, repo, now) = world();
        // First observation: RPKI expired (everything NotFound).
        let late = SimTime::EPOCH + Duration::years(30);
        let stale = Pipeline::new(&zones, &rib, &repo, pipeline_cfg(late));
        let ranking = vec![
            n("covered.example"),
            n("hijacked.example"),
            n("plain.example"),
        ];
        let mut results = stale.run(&ranking);
        assert!(results
            .domains
            .iter()
            .flat_map(|d| d.bare.pairs.iter())
            .all(|p| p.state == RpkiState::NotFound));

        // Second observation: fresh VRPs, same crawl.
        let fresh = Pipeline::new(&zones, &rib, &repo, pipeline_cfg(now));
        fresh.revalidate(&mut results);
        let full = fresh.run(&ranking);
        assert_eq!(results.vrp_count, full.vrp_count);
        for (a, b) in results.domains.iter().zip(&full.domains) {
            assert_eq!(a.bare.pairs, b.bare.pairs);
            assert_eq!(a.www.pairs, b.www.pairs);
        }
    }

    #[test]
    fn engine_epoch_swap_revalidate_matches_full_rerun() {
        let (zones, rib, repo, now) = world();
        let late = SimTime::EPOCH + Duration::years(30);
        let engine =
            crate::engine::StudyEngine::new(zones.clone(), rib.clone(), &repo, pipeline_cfg(late));
        let ranking = vec![
            n("covered.example"),
            n("hijacked.example"),
            n("plain.example"),
        ];
        let mut results = engine.run(&ranking);
        assert_eq!(results.epoch, 1);
        assert_eq!(results.vrp_count, 0);

        // Swap in the un-expired view of the same repository.
        let delta = engine.revalidate(&repo, now, &mut results);
        assert_eq!(delta.from_epoch, 1);
        assert_eq!(delta.to_epoch, 2);
        // Both ROAs come alive: two announced VRPs, nothing withdrawn.
        assert_eq!(delta.announced.len(), 2);
        assert!(delta.withdrawn.is_empty());
        // covered (NotFound→Valid) and hijacked (NotFound→Invalid)
        // flip in both name forms.
        assert_eq!(delta.pairs_changed, 4);
        assert_eq!(results.epoch, 2);

        let full = engine.run(&ranking);
        assert_eq!(results.vrp_count, full.vrp_count);
        for (a, b) in results.domains.iter().zip(&full.domains) {
            assert_eq!(a.bare.pairs, b.bare.pairs);
            assert_eq!(a.www.pairs, b.www.pairs);
        }
    }

    #[test]
    fn ipv6_pairs_validated() {
        let mut zones = ZoneStore::new();
        zones.add_addr(n("six.example"), "2001:600::1".parse().unwrap());
        zones.add_addr(n("www.six.example"), "2001:600::1".parse().unwrap());
        let mut rib = Rib::new();
        rib.insert(RibEntry {
            prefix: "2001:600::/32".parse().unwrap(),
            path: AsPath::sequence([64601, 700]),
            peer: Asn::new(64496),
        });
        let mut b = RepositoryBuilder::new(2, SimTime::EPOCH);
        let ta = b.add_trust_anchor(
            "RIPE",
            Resources::from_prefixes(vec!["2001::/16".parse().unwrap()]),
        );
        let isp = b
            .add_ca(
                ta,
                "v6-ISP",
                Resources::from_prefixes(vec!["2001:600::/24".parse().unwrap()]),
            )
            .unwrap();
        b.add_roa(
            isp,
            Asn::new(700),
            vec![RoaPrefix::exact("2001:600::/32".parse().unwrap())],
        )
        .unwrap();
        let repo = b.finalize();
        let p = Pipeline::new(
            &zones,
            &rib,
            &repo,
            pipeline_cfg(SimTime::EPOCH + Duration::days(1)),
        );
        let m = p.measure_domain(0, &n("six.example"));
        assert_eq!(m.bare.pairs.len(), 1);
        assert_eq!(m.bare.pairs[0].state, RpkiState::Valid);
        assert!(matches!(m.bare.pairs[0].prefix, ripki_net::IpPrefix::V6(_)));
    }

    #[test]
    fn expired_rpki_yields_all_notfound() {
        let (zones, rib, repo, _) = world();
        let late = SimTime::EPOCH + Duration::years(30);
        let p = Pipeline::new(&zones, &rib, &repo, pipeline_cfg(late));
        assert_eq!(p.validator().len(), 0);
        let m = p.measure_domain(0, &n("covered.example"));
        assert_eq!(m.bare.pairs[0].state, RpkiState::NotFound);
    }
}
