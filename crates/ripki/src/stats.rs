//! Rank binning.
//!
//! "For better visibility, we do not present results per domain but apply
//! a binning of 10k domains in all graphs, after experimenting with
//! different bin sizes." Every figure is a [`BinnedSeries`]: the mean of
//! a per-domain quantity over consecutive rank bins. Domains for which
//! the quantity is undefined (e.g. no resolvable pairs) are skipped, not
//! counted as zero — matching the paper's per-domain probabilities.

use serde::{Deserialize, Serialize};

/// The paper's bin width.
pub const PAPER_BIN: usize = 10_000;

/// A per-bin mean series over the ranking.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinnedSeries {
    /// Width of each bin in ranks.
    pub bin_size: usize,
    /// Mean per bin (NaN-free: empty bins yield `None`).
    pub means: Vec<Option<f64>>,
    /// How many defined samples each bin aggregated.
    pub counts: Vec<usize>,
}

impl BinnedSeries {
    /// Aggregate `(rank, value)` samples into bins of `bin_size`.
    ///
    /// `total` fixes the number of bins (`ceil(total / bin_size)`) so
    /// series over the same ranking always align.
    pub fn from_samples<I>(samples: I, total: usize, bin_size: usize) -> BinnedSeries
    where
        I: IntoIterator<Item = (usize, Option<f64>)>,
    {
        assert!(bin_size > 0, "bin size must be positive");
        let n_bins = total.div_ceil(bin_size).max(1);
        let mut sums = vec![0.0f64; n_bins];
        let mut counts = vec![0usize; n_bins];
        for (rank, value) in samples {
            let Some(v) = value else { continue };
            let bin = (rank / bin_size).min(n_bins - 1);
            sums[bin] += v;
            counts[bin] += 1;
        }
        let means = sums
            .iter()
            .zip(&counts)
            .map(|(s, c)| if *c > 0 { Some(s / *c as f64) } else { None })
            .collect();
        BinnedSeries {
            bin_size,
            means,
            counts,
        }
    }

    /// Number of bins.
    pub fn len(&self) -> usize {
        self.means.len()
    }

    /// Whether there are no bins.
    pub fn is_empty(&self) -> bool {
        self.means.is_empty()
    }

    /// Mean over all defined samples (weighted by sample count).
    pub fn overall_mean(&self) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for (m, c) in self.means.iter().zip(&self.counts) {
            if let Some(v) = m {
                sum += v * *c as f64;
                n += c;
            }
        }
        if n > 0 {
            Some(sum / n as f64)
        } else {
            None
        }
    }

    /// Mean over the bins covering ranks `[from, to)` (e.g. the paper's
    /// "first 100k domains").
    pub fn range_mean(&self, from: usize, to: usize) -> Option<f64> {
        let lo = from / self.bin_size;
        let hi = to.div_ceil(self.bin_size).min(self.len());
        let mut sum = 0.0;
        let mut n = 0usize;
        for i in lo..hi {
            if let Some(v) = self.means[i] {
                sum += v * self.counts[i] as f64;
                n += self.counts[i];
            }
        }
        if n > 0 {
            Some(sum / n as f64)
        } else {
            None
        }
    }

    /// Render as `bin_start,value` CSV lines (empty bins skipped).
    pub fn to_csv(&self, header: &str) -> String {
        let mut out = format!("rank_bin_start,{header}\n");
        for (i, m) in self.means.iter().enumerate() {
            if let Some(v) = m {
                out.push_str(&format!("{},{v:.6}\n", i * self.bin_size));
            }
        }
        out
    }
}

/// Ordinary least squares slope of a binned series against bin index —
/// the cheap trend test the figure assertions use ("valid share *rises*
/// with rank").
pub fn trend_slope(series: &BinnedSeries) -> Option<f64> {
    let pts: Vec<(f64, f64)> = series
        .means
        .iter()
        .enumerate()
        .filter_map(|(i, m)| m.map(|v| (i as f64, v)))
        .collect();
    if pts.len() < 2 {
        return None;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|(x, _)| x).sum();
    let sy: f64 = pts.iter().map(|(_, y)| y).sum();
    let sxx: f64 = pts.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = pts.iter().map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < f64::EPSILON {
        return None;
    }
    Some((n * sxy - sx * sy) / denom)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binning_means_and_counts() {
        let samples = (0..100).map(|r| (r, Some(if r < 50 { 1.0 } else { 0.0 })));
        let s = BinnedSeries::from_samples(samples, 100, 25);
        assert_eq!(s.len(), 4);
        assert_eq!(s.means, vec![Some(1.0), Some(1.0), Some(0.0), Some(0.0)]);
        assert_eq!(s.counts, vec![25; 4]);
        assert_eq!(s.overall_mean(), Some(0.5));
    }

    #[test]
    fn undefined_samples_are_skipped_not_zero() {
        let samples = vec![(0, Some(1.0)), (1, None), (2, Some(0.0))];
        let s = BinnedSeries::from_samples(samples, 3, 3);
        assert_eq!(s.means, vec![Some(0.5)]);
        assert_eq!(s.counts, vec![2]);
    }

    #[test]
    fn empty_bins_are_none() {
        let samples = vec![(0, Some(1.0))];
        let s = BinnedSeries::from_samples(samples, 30, 10);
        assert_eq!(s.means, vec![Some(1.0), None, None]);
        assert_eq!(s.overall_mean(), Some(1.0));
    }

    #[test]
    fn total_not_divisible_by_bin() {
        let samples = (0..25).map(|r| (r, Some(1.0)));
        let s = BinnedSeries::from_samples(samples, 25, 10);
        assert_eq!(s.len(), 3);
        assert_eq!(s.counts, vec![10, 10, 5]);
    }

    #[test]
    fn out_of_range_rank_clamps_to_last_bin() {
        let samples = vec![(99, Some(1.0)), (150, Some(3.0))];
        let s = BinnedSeries::from_samples(samples, 100, 50);
        assert_eq!(s.len(), 2);
        assert_eq!(s.means[1], Some(2.0));
    }

    #[test]
    fn range_mean_weighted() {
        let samples = (0..100).map(|r| (r, Some(r as f64)));
        let s = BinnedSeries::from_samples(samples, 100, 10);
        let first_half = s.range_mean(0, 50).unwrap();
        assert!((first_half - 24.5).abs() < 1e-9);
        let all = s.range_mean(0, 100).unwrap();
        assert!((all - 49.5).abs() < 1e-9);
        assert_eq!(s.range_mean(0, 0), None);
    }

    #[test]
    fn trend_detection() {
        let rising =
            BinnedSeries::from_samples((0..100).map(|r| (r, Some(r as f64 / 100.0))), 100, 10);
        assert!(trend_slope(&rising).unwrap() > 0.0);
        let falling = BinnedSeries::from_samples(
            (0..100).map(|r| (r, Some(1.0 - r as f64 / 100.0))),
            100,
            10,
        );
        assert!(trend_slope(&falling).unwrap() < 0.0);
        let flat = BinnedSeries::from_samples((0..100).map(|r| (r, Some(0.5))), 100, 10);
        assert!(trend_slope(&flat).unwrap().abs() < 1e-12);
        let single = BinnedSeries::from_samples(vec![(0, Some(1.0))], 10, 10);
        assert_eq!(trend_slope(&single), None);
    }

    #[test]
    fn csv_rendering() {
        let s = BinnedSeries::from_samples(vec![(0, Some(0.5)), (10, None)], 20, 10);
        let csv = s.to_csv("valid");
        assert!(csv.starts_with("rank_bin_start,valid\n"));
        assert!(csv.contains("0,0.500000"));
        // Empty bin omitted.
        assert_eq!(csv.lines().count(), 2);
    }
}
