//! The incremental engine's central property: replaying a random
//! `WorldEvent` stream through `StudyEngine::apply_events` yields, at
//! every step, a `StudyResults` byte-identical to a from-scratch full
//! run against the cumulative post-churn world — and each step's
//! `EpochDelta` announce/withdraw sets are exactly the VRP set
//! difference between the epochs.
//!
//! The cumulative world is maintained independently of the engine, by
//! applying the same typed events through the substrate copy-on-write
//! layers (`ZoneStore::apply` / `Rib::apply`) and adopting each batch's
//! repository snapshot — so a bug in the engine's own delta plumbing or
//! reverse-index invalidation cannot cancel out of the comparison.

use proptest::prelude::*;
use ripki::engine::StudyEngine;
use ripki::pipeline::PipelineConfig;
use ripki_bgp::rib::{Rib, RibDelta};
use ripki_bgp::rov::VrpTriple;
use ripki_dns::zone::{ZoneDelta, ZoneStore};
use ripki_rpki::repo::Repository;
use ripki_websim::churn::{ChurnConfig, ChurnStream, EpochChurn, WorldEvent};
use ripki_websim::{Scenario, ScenarioConfig};
use std::collections::BTreeSet;
use std::sync::Arc;

/// The same event → substrate-delta partition the engine applies,
/// restated here so the reference world evolves through the public
/// substrate API rather than through the engine under test.
fn substrate_deltas(batch: &EpochChurn) -> (ZoneDelta, RibDelta) {
    let mut zone_delta = ZoneDelta::new();
    let mut rib_delta = RibDelta::new();
    for event in &batch.events {
        match event {
            WorldEvent::ZoneEdit { name, records } => {
                zone_delta.set_records(name.clone(), records.clone());
            }
            WorldEvent::CnameRetarget { name, target } => {
                zone_delta.set_cname(name.clone(), target.clone());
            }
            WorldEvent::RibAnnounce(entry) => rib_delta.announce(entry.clone()),
            WorldEvent::RibWithdraw { prefix, peer } => rib_delta.withdraw(*prefix, *peer),
            WorldEvent::RoaAdded { .. }
            | WorldEvent::RoaExpired { .. }
            | WorldEvent::RoaRevoked { .. }
            | WorldEvent::KeyRollover { .. } => {}
        }
    }
    (zone_delta, rib_delta)
}

proptest! {
    // Each case builds a scenario and runs `epochs` full studies for
    // the reference comparison, so keep the case count low and the
    // scale modest.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn incremental_replay_matches_full_rerun(
        domains in 200usize..300,
        seed in 0u64..1_000_000,
        churn_seed in 0u64..1_000_000,
        epochs in 2u64..5,
        // None = always the serial per-rank path; a small Some(n) makes
        // most non-empty batches exceed the threshold and exercises the
        // sharded full-run fallback against the same reference worlds.
        full_remeasure_threshold in prop_oneof![Just(None), (0usize..4).prop_map(Some)],
        knobs in (
            0usize..5, // zone_edits
            0usize..4, // cname_retargets
            0usize..4, // rib_announces
            0usize..3, // rib_withdrawals
            0usize..3, // roa_additions
            0usize..3, // roa_expirations
            0usize..2, // roa_revocations
            0usize..2, // key_rollovers
        ),
    ) {
        let (
            zone_edits,
            cname_retargets,
            rib_announces,
            rib_withdrawals,
            roa_additions,
            roa_expirations,
            roa_revocations,
            key_rollovers,
        ) = knobs;
        let scenario = Scenario::build(ScenarioConfig {
            seed,
            ..ScenarioConfig::with_domains(domains)
        });
        let config = PipelineConfig {
            bogus_dns_ppm: scenario.config.bogus_dns_ppm,
            now: scenario.now,
            full_remeasure_threshold,
            ..Default::default()
        };
        let engine = StudyEngine::new(
            scenario.zones.clone(),
            scenario.rib.clone(),
            &scenario.repository,
            config.clone(),
        );
        let mut results = engine.run(&scenario.ranking);
        prop_assert!(results.skipped.is_empty());

        let mut stream = ChurnStream::new(&scenario, ChurnConfig {
            seed: churn_seed,
            zone_edits,
            cname_retargets,
            rib_announces,
            rib_withdrawals,
            roa_additions,
            roa_expirations,
            roa_revocations,
            key_rollovers,
        });

        // The independently maintained cumulative world.
        let mut zones = Arc::new(scenario.zones.clone());
        let mut rib = Arc::new(scenario.rib.clone());
        let mut repository = scenario.repository.clone();
        let mut total_events = 0usize;

        for step in 0..epochs {
            let batch = stream.next_epoch();
            total_events += batch.events.len();
            let before: BTreeSet<VrpTriple> =
                engine.snapshot().vrps().iter().copied().collect();
            let delta = engine.apply_events(&batch, &mut results);
            let after: BTreeSet<VrpTriple> =
                engine.snapshot().vrps().iter().copied().collect();

            // Exact per-step delta: epochs advance by one, and the
            // announce/withdraw sets are the VRP set difference.
            prop_assert_eq!(delta.from_epoch, step + 1);
            prop_assert_eq!(delta.to_epoch, step + 2);
            prop_assert_eq!(results.epoch, step + 2);
            let announced: Vec<VrpTriple> = after.difference(&before).copied().collect();
            let withdrawn: Vec<VrpTriple> = before.difference(&after).copied().collect();
            prop_assert_eq!(delta.announced, announced);
            prop_assert_eq!(delta.withdrawn, withdrawn);

            // Evolve the reference world with the same events.
            let (zone_delta, rib_delta) = substrate_deltas(&batch);
            if !zone_delta.is_empty() {
                let (z, _) = ZoneStore::apply(Arc::clone(&zones), &zone_delta);
                zones = Arc::new(z);
            }
            if !rib_delta.is_empty() {
                let (r, _) = Rib::apply(Arc::clone(&rib), &rib_delta);
                rib = Arc::new(r);
            }
            if let Some(repo) = &batch.repository {
                repository = Repository::clone(repo);
            }

            // From-scratch run over the cumulative world.
            let fresh = StudyEngine::from_shared(
                Arc::clone(&zones),
                Arc::clone(&rib),
                &repository,
                PipelineConfig { now: batch.now, ..config.clone() },
            )
            .run(&scenario.ranking);
            prop_assert!(fresh.skipped.is_empty());
            prop_assert_eq!(results.vrp_count, fresh.vrp_count);
            prop_assert_eq!(results.rpki_rejected, fresh.rpki_rejected);
            let incremental_bytes = serde_json::to_string(&results.domains)
                .expect("serialize incremental results");
            let fresh_bytes = serde_json::to_string(&fresh.domains)
                .expect("serialize fresh results");
            prop_assert_eq!(incremental_bytes, fresh_bytes, "diverged at step {}", step);
        }

        // Guard against a vacuous pass: zone edits and RIB announces
        // are unconditional generators, so asking for them must yield
        // a non-empty stream.
        if zone_edits + rib_announces > 0 {
            prop_assert!(total_events > 0, "churn stream generated no events");
        }
    }
}
