//! Property-based tests for the core measurement crate: binning algebra,
//! coverage accounting, and classification scoring.

use proptest::prelude::*;
use ripki::classify::ClassifierScore;
use ripki::pipeline::{NameMeasurement, PairState};
use ripki::stats::{trend_slope, BinnedSeries};
use ripki_bgp::rov::RpkiState;
use ripki_net::Asn;

fn arb_states() -> impl Strategy<Value = Vec<RpkiState>> {
    prop::collection::vec(
        prop_oneof![
            Just(RpkiState::Valid),
            Just(RpkiState::Invalid),
            Just(RpkiState::NotFound),
        ],
        0..12,
    )
}

fn measurement(states: &[RpkiState]) -> NameMeasurement {
    NameMeasurement {
        pairs: states
            .iter()
            .enumerate()
            .map(|(i, s)| PairState {
                prefix: format!("10.{}.{}.0/24", i / 250, i % 250).parse().unwrap(),
                origin: Asn::new(i as u32 + 1),
                state: *s,
            })
            .collect(),
        ..Default::default()
    }
}

proptest! {
    /// The three state fractions always sum to 1 (when defined), and
    /// covered = valid + invalid.
    #[test]
    fn state_fractions_partition(states in arb_states()) {
        let m = measurement(&states);
        match (
            m.state_fraction(RpkiState::Valid),
            m.state_fraction(RpkiState::Invalid),
            m.state_fraction(RpkiState::NotFound),
        ) {
            (Some(v), Some(i), Some(n)) => {
                prop_assert!((v + i + n - 1.0).abs() < 1e-9);
                prop_assert!((m.covered_fraction().unwrap() - (v + i)).abs() < 1e-9);
                let (covered, total) = m.coverage_counts();
                prop_assert_eq!(total, states.len());
                prop_assert!((covered as f64 / total as f64 - (v + i)).abs() < 1e-9);
            }
            (None, None, None) => prop_assert!(states.is_empty()),
            other => prop_assert!(false, "inconsistent definedness {other:?}"),
        }
    }

    /// Binned means lie in the convex hull of the samples, and the
    /// overall mean equals the plain average of defined samples.
    #[test]
    fn binning_is_an_average(
        samples in prop::collection::vec(prop::option::of(0.0f64..1.0), 1..300),
        bin in 1usize..50,
    ) {
        let total = samples.len();
        let series = BinnedSeries::from_samples(
            samples.iter().enumerate().map(|(r, v)| (r, *v)),
            total,
            bin,
        );
        let defined: Vec<f64> = samples.iter().flatten().copied().collect();
        if defined.is_empty() {
            prop_assert_eq!(series.overall_mean(), None);
        } else {
            let want = defined.iter().sum::<f64>() / defined.len() as f64;
            prop_assert!((series.overall_mean().unwrap() - want).abs() < 1e-9);
            let lo = defined.iter().cloned().fold(f64::MAX, f64::min);
            let hi = defined.iter().cloned().fold(f64::MIN, f64::max);
            for m in series.means.iter().flatten() {
                prop_assert!(*m >= lo - 1e-12 && *m <= hi + 1e-12);
            }
        }
        // Bin count is ceil(total / bin).
        prop_assert_eq!(series.len(), total.div_ceil(bin));
        // range_mean over everything equals overall mean.
        prop_assert_eq!(series.range_mean(0, total), series.overall_mean());
    }

    /// Adding a constant to every sample shifts means but zeroes no
    /// trend; scaling preserves the slope's sign.
    #[test]
    fn trend_slope_sign_invariance(
        base in prop::collection::vec(0.0f64..1.0, 4..60),
        shift in 0.0f64..10.0,
        scale in 0.1f64..10.0,
    ) {
        let total = base.len();
        let mk = |f: &dyn Fn(f64) -> f64| {
            BinnedSeries::from_samples(
                base.iter().enumerate().map(|(r, v)| (r, Some(f(*v)))),
                total,
                1,
            )
        };
        let s0 = trend_slope(&mk(&|v| v));
        let s_shift = trend_slope(&mk(&|v| v + shift));
        let s_scale = trend_slope(&mk(&|v| v * scale));
        if let (Some(a), Some(b), Some(c)) = (s0, s_shift, s_scale) {
            prop_assert!((a - b).abs() < 1e-6, "shift changed slope: {a} vs {b}");
            prop_assert!(
                (a * scale - c).abs() < 1e-6,
                "scale broke linearity: {a}*{scale} vs {c}"
            );
        }
    }

    /// Classifier score counts always total the number of observations,
    /// and precision/recall stay within [0, 1].
    #[test]
    fn classifier_score_invariants(
        observations in prop::collection::vec((any::<bool>(), any::<bool>()), 0..200)
    ) {
        let mut score = ClassifierScore::default();
        for (pred, act) in &observations {
            score.observe(*pred, *act);
        }
        prop_assert_eq!(
            score.tp + score.fp + score.fn_ + score.tn,
            observations.len()
        );
        prop_assert!((0.0..=1.0).contains(&score.precision()));
        prop_assert!((0.0..=1.0).contains(&score.recall()));
        // Perfect predictor sanity.
        let mut perfect = ClassifierScore::default();
        for (_, act) in &observations {
            perfect.observe(*act, *act);
        }
        prop_assert_eq!(perfect.precision(), 1.0);
        prop_assert_eq!(perfect.recall(), 1.0);
    }
}
