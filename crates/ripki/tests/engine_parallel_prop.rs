//! Thread count must never change study output, only wall-clock time.
//!
//! Both engine apply paths — the sharded full run and the incremental
//! `apply_events` re-measure — are plan/execute/commit refactors whose
//! commit stage folds worker outcomes in plan order. This file pins
//! that contract from the outside:
//!
//! * `parallel_engine_equals_serial_engine` drives two engines with the
//!   identical churn stream at 1 and 4 worker threads and demands a
//!   byte-identical `StudyResults` and an identical `EpochDelta`
//!   (announce/withdraw sets *and* validator work stats) at every step.
//! * the `poison_domain` tests inject a panicking measurement and check
//!   the skip-and-count discipline: exactly the poisoned rank is
//!   skipped, every other domain's measurement is unaffected, and the
//!   outcome is the same at any thread count.
//!
//! Note on `RIPKI_THREADS`: the env override (CI's thread matrix) may
//! force both engines to the same worker count, in which case the
//! equality check degenerates to self-consistency — still sound, and
//! the plain (env-free) run of this suite compares 1 vs 4 for real.

use proptest::prelude::*;
use ripki::engine::StudyEngine;
use ripki::pipeline::PipelineConfig;
use ripki_bgp::path::AsPath;
use ripki_bgp::rib::{Rib, RibEntry};
use ripki_dns::zone::ZoneStore;
use ripki_dns::{DomainName, RecordData};
use ripki_net::Asn;
use ripki_rpki::repo::RepositoryBuilder;
use ripki_rpki::resources::Resources;
use ripki_rpki::roa::RoaPrefix;
use ripki_rpki::time::{Duration, SimTime};
use ripki_websim::churn::{ChurnConfig, ChurnStream, EpochChurn, WorldEvent};
use ripki_websim::{Scenario, ScenarioConfig};

proptest! {
    // Two incremental engines per case (no from-scratch reference
    // rebuilds), so this can afford a few more cases than the
    // incremental-vs-full property next door.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn parallel_engine_equals_serial_engine(
        domains in 150usize..250,
        seed in 0u64..1_000_000,
        churn_seed in 0u64..1_000_000,
        epochs in 2u64..5,
        knobs in (
            0usize..5, // zone_edits
            0usize..4, // cname_retargets
            0usize..4, // rib_announces
            0usize..3, // rib_withdrawals
            0usize..3, // roa_additions
            0usize..3, // roa_expirations
            0usize..2, // roa_revocations
            0usize..2, // key_rollovers
        ),
    ) {
        let (
            zone_edits,
            cname_retargets,
            rib_announces,
            rib_withdrawals,
            roa_additions,
            roa_expirations,
            roa_revocations,
            key_rollovers,
        ) = knobs;
        let scenario = Scenario::build(ScenarioConfig {
            seed,
            ..ScenarioConfig::with_domains(domains)
        });
        let config = |threads: usize| PipelineConfig {
            bogus_dns_ppm: scenario.config.bogus_dns_ppm,
            now: scenario.now,
            threads,
            ..Default::default()
        };
        let serial = StudyEngine::new(
            scenario.zones.clone(),
            scenario.rib.clone(),
            &scenario.repository,
            config(1),
        );
        let parallel = StudyEngine::new(
            scenario.zones.clone(),
            scenario.rib.clone(),
            &scenario.repository,
            config(4),
        );
        let mut serial_results = serial.run(&scenario.ranking);
        let mut parallel_results = parallel.run(&scenario.ranking);
        prop_assert!(serial_results.skipped.is_empty());
        // Epoch, VRP counters, domains, skipped: everything but must
        // match from the very first full run onward.
        prop_assert_eq!(&serial_results, &parallel_results);

        let mut stream = ChurnStream::new(&scenario, ChurnConfig {
            seed: churn_seed,
            zone_edits,
            cname_retargets,
            rib_announces,
            rib_withdrawals,
            roa_additions,
            roa_expirations,
            roa_revocations,
            key_rollovers,
        });
        for step in 0..epochs {
            let batch = stream.next_epoch();
            let serial_delta = serial.apply_events(&batch, &mut serial_results);
            let parallel_delta = parallel.apply_events(&batch, &mut parallel_results);
            prop_assert_eq!(
                &serial_delta, &parallel_delta,
                "EpochDelta diverges at step {}", step
            );
            prop_assert_eq!(
                &serial_results, &parallel_results,
                "StudyResults diverge at step {}", step
            );
        }
    }
}

fn n(s: &str) -> DomainName {
    DomainName::parse(s).unwrap()
}

/// The engine unit tests' hand-built world, restated through the public
/// API: four domains, two of which share a CDN tail, one valid ROA.
fn world() -> (ZoneStore, Rib, RepositoryBuilder, SimTime) {
    let mut zones = ZoneStore::new();
    zones.add_addr(n("covered.example"), "85.1.2.3".parse().unwrap());
    zones.add_cname(n("www.covered.example"), n("covered.example"));
    zones.add_addr(n("plain.example"), "9.9.1.1".parse().unwrap());
    zones.add_addr(n("www.plain.example"), "9.9.1.1".parse().unwrap());
    zones.add_cname(n("cdn-a.example"), n("edge.cdn.example"));
    zones.add_cname(n("www.cdn-a.example"), n("edge.cdn.example"));
    zones.add_cname(n("cdn-b.example"), n("edge.cdn.example"));
    zones.add_cname(n("www.cdn-b.example"), n("edge.cdn.example"));
    zones.add_addr(n("edge.cdn.example"), "85.3.0.1".parse().unwrap());

    let mut rib = Rib::new();
    for (pfx, origin) in [
        ("85.1.0.0/16", 100u32),
        ("85.3.0.0/16", 300),
        ("9.9.0.0/16", 9),
        ("77.7.0.0/16", 77),
    ] {
        rib.insert(RibEntry {
            prefix: pfx.parse().unwrap(),
            path: AsPath::sequence([64601, origin]),
            peer: Asn::new(64496),
        });
    }

    let mut b = RepositoryBuilder::new(1, SimTime::EPOCH);
    let ta = b.add_trust_anchor(
        "RIPE",
        Resources::from_prefixes(vec!["80.0.0.0/4".parse().unwrap()]),
    );
    let isp = b
        .add_ca(
            ta,
            "ISP-1",
            Resources::from_prefixes(vec!["85.0.0.0/8".parse().unwrap()]),
        )
        .unwrap();
    b.add_roa(
        isp,
        Asn::new(100),
        vec![RoaPrefix::exact("85.1.0.0/16".parse().unwrap())],
    )
    .unwrap();
    (zones, rib, b, SimTime::EPOCH + Duration::days(1))
}

fn ranking() -> Vec<DomainName> {
    vec![
        n("covered.example"),
        n("plain.example"),
        n("cdn-a.example"),
        n("cdn-b.example"),
    ]
}

#[test]
fn poisoned_domain_is_skipped_in_full_run_at_any_thread_count() {
    let (zones, rib, mut b, now) = world();
    let repo = b.snapshot();
    for threads in [1usize, 4] {
        let config = PipelineConfig {
            bogus_dns_ppm: 0,
            now,
            threads,
            poison_domain: Some(n("cdn-a.example")),
            ..Default::default()
        };
        let engine = StudyEngine::new(zones.clone(), rib.clone(), &repo, config);
        let results = engine.run(&ranking());
        // Exactly the poisoned rank is missing; everyone else measured.
        assert_eq!(results.skipped, vec![2], "threads={threads}");
        let measured: Vec<usize> = results.domains.iter().map(|d| d.rank).collect();
        assert_eq!(measured, vec![0, 1, 3], "threads={threads}");
        // And a try_run refuses to publish the partial study.
        assert!(engine.try_run(&ranking()).is_err(), "threads={threads}");

        // The healthy domains match an unpoisoned engine's output bit
        // for bit: the panic never leaked into a neighbour's slot.
        let clean = StudyEngine::new(
            zones.clone(),
            rib.clone(),
            &repo,
            PipelineConfig {
                bogus_dns_ppm: 0,
                now,
                threads,
                ..Default::default()
            },
        )
        .run(&ranking());
        for d in &results.domains {
            assert_eq!(Some(d), clean.domains.iter().find(|c| c.rank == d.rank));
        }
    }
}

#[test]
fn poisoned_domain_is_skipped_in_incremental_remeasure() {
    let (zones, rib, mut b, now) = world();
    let repo = b.snapshot();
    for threads in [1usize, 4] {
        // Measure clean, then poison cdn-a for the re-measure epochs:
        // build the study with a healthy engine, hand the results to a
        // poisoned one at the same epoch.
        let clean_config = PipelineConfig {
            bogus_dns_ppm: 0,
            now,
            threads,
            ..Default::default()
        };
        let poisoned_config = PipelineConfig {
            poison_domain: Some(n("cdn-a.example")),
            ..clean_config.clone()
        };
        let engine = StudyEngine::new(zones.clone(), rib.clone(), &repo, poisoned_config);
        // Build the baseline with a clean engine — full run would skip
        // the poisoned domain, leaving nothing to compare against.
        let mut results =
            StudyEngine::new(zones.clone(), rib.clone(), &repo, clean_config).run(&ranking());
        assert!(results.skipped.is_empty());
        let before_cdn_a = results.domains[2].clone();

        // Retarget the shared CDN tail: cdn-a and cdn-b are affected.
        // cdn-b re-measures; cdn-a panics, keeps its stale measurement,
        // and is recorded as skipped.
        let batch = EpochChurn {
            events: vec![WorldEvent::ZoneEdit {
                name: n("edge.cdn.example"),
                records: vec![RecordData::from_addr("77.7.7.7".parse().unwrap())],
            }],
            repository: None,
            now,
        };
        let delta = engine.apply_events(&batch, &mut results);
        assert_eq!(delta.domains_remeasured, 1, "threads={threads}");
        assert_eq!(results.skipped, vec![2], "threads={threads}");
        assert_eq!(
            results.domains[2], before_cdn_a,
            "threads={threads}: a skipped rank must keep its last good measurement"
        );
        // cdn-b actually moved to the retargeted address space.
        assert_eq!(results.domains[3].bare.pairs[0].origin, Asn::new(77));
    }
}
