//! Property tests for the snapshot-based study engine at websim scale:
//! shard-count invariance (a multi-threaded run must be byte-identical
//! to the serial run) and epoch-swap revalidation equivalence (swapping
//! in a re-validated RPKI and recomputing step 4 must match a full
//! re-run, and the emitted delta must be exactly the VRP set change).

use proptest::prelude::*;
use ripki::engine::StudyEngine;
use ripki::pipeline::PipelineConfig;
use ripki_bgp::rov::VrpTriple;
use ripki_rpki::time::Duration;
use ripki_websim::{Scenario, ScenarioConfig};
use std::collections::BTreeSet;

fn build_scenario(domains: usize, seed: u64) -> Scenario {
    Scenario::build(ScenarioConfig {
        seed,
        ..ScenarioConfig::with_domains(domains)
    })
}

fn engine_for(scenario: &Scenario, threads: usize) -> StudyEngine {
    StudyEngine::new(
        scenario.zones.clone(),
        scenario.rib.clone(),
        &scenario.repository,
        PipelineConfig {
            bogus_dns_ppm: scenario.config.bogus_dns_ppm,
            now: scenario.now,
            threads,
            ..Default::default()
        },
    )
}

proptest! {
    // Scenario construction dominates the cost, so run few cases at the
    // ≥1k-domain scale the acceptance criteria ask for.
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// A sharded multi-thread run is byte-identical (per serialized
    /// measurement) to the serial run over the same generated world.
    #[test]
    fn sharded_run_is_byte_identical_to_serial(
        domains in 1000usize..1200,
        seed in 0u64..1_000_000,
        threads in 2usize..9,
    ) {
        let scenario = build_scenario(domains, seed);
        let serial = engine_for(&scenario, 1).run(&scenario.ranking);
        let sharded = engine_for(&scenario, threads).run(&scenario.ranking);

        prop_assert!(serial.skipped.is_empty());
        prop_assert!(sharded.skipped.is_empty());
        prop_assert_eq!(serial.vrp_count, sharded.vrp_count);
        prop_assert_eq!(serial.rpki_rejected, sharded.rpki_rejected);
        prop_assert_eq!(serial.domains.len(), domains);
        let serial_bytes =
            serde_json::to_string(&serial.domains).expect("serialize serial run");
        let sharded_bytes =
            serde_json::to_string(&sharded.domains).expect("serialize sharded run");
        prop_assert_eq!(serial_bytes, sharded_bytes);
    }

    /// Installing a re-validated RPKI as a new epoch and revalidating an
    /// existing study matches a full re-run from scratch at the new
    /// instant, and the delta's announce/withdraw sets are exactly the
    /// VRP set difference between the epochs.
    #[test]
    fn epoch_swap_revalidate_matches_full_rerun(
        domains in 1000usize..1200,
        seed in 0u64..1_000_000,
        advance_days in 60u64..2000,
    ) {
        let scenario = build_scenario(domains, seed);
        let engine = engine_for(&scenario, 0);
        let mut results = engine.run(&scenario.ranking);
        let before: BTreeSet<VrpTriple> =
            engine.snapshot().vrps().iter().copied().collect();

        // Re-observe the same world later: some objects have expired,
        // others have become valid.
        let later = scenario.now + Duration::days(advance_days);
        let old_states: Vec<_> = results
            .domains
            .iter()
            .flat_map(|d| d.www.pairs.iter().chain(&d.bare.pairs))
            .map(|p| p.state)
            .collect();
        let delta = engine.revalidate(&scenario.repository, later, &mut results);
        let after: BTreeSet<VrpTriple> =
            engine.snapshot().vrps().iter().copied().collect();

        // Delta is the exact set difference, in both directions.
        let announced: Vec<VrpTriple> = after.difference(&before).copied().collect();
        let withdrawn: Vec<VrpTriple> = before.difference(&after).copied().collect();
        prop_assert_eq!(delta.announced, announced);
        prop_assert_eq!(delta.withdrawn, withdrawn);
        prop_assert_eq!(delta.from_epoch, 1);
        prop_assert_eq!(delta.to_epoch, 2);

        // pairs_changed counts exactly the flipped step-4 states.
        let new_states: Vec<_> = results
            .domains
            .iter()
            .flat_map(|d| d.www.pairs.iter().chain(&d.bare.pairs))
            .map(|p| p.state)
            .collect();
        let flipped = old_states
            .iter()
            .zip(&new_states)
            .filter(|(a, b)| a != b)
            .count();
        prop_assert_eq!(delta.pairs_changed, flipped);

        // The in-place revalidation equals a full run from scratch at
        // the new instant (DNS and RIB are unchanged, so only step 4
        // could differ).
        let fresh = StudyEngine::new(
            scenario.zones.clone(),
            scenario.rib.clone(),
            &scenario.repository,
            PipelineConfig {
                bogus_dns_ppm: scenario.config.bogus_dns_ppm,
                now: later,
                ..Default::default()
            },
        )
        .run(&scenario.ranking);
        prop_assert_eq!(results.vrp_count, fresh.vrp_count);
        prop_assert_eq!(results.rpki_rejected, fresh.rpki_rejected);
        let revalidated_bytes =
            serde_json::to_string(&results.domains).expect("serialize revalidated");
        let fresh_bytes =
            serde_json::to_string(&fresh.domains).expect("serialize fresh run");
        prop_assert_eq!(revalidated_bytes, fresh_bytes);
    }
}
