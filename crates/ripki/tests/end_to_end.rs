//! End-to-end: scenario → pipeline → figures, with shape assertions
//! against the paper's findings (at reduced scale).

use ripki::classify::HttpArchiveClassifier;
use ripki::figures;
use ripki::pipeline::{Pipeline, PipelineConfig};
use ripki::report::HeadlineStats;
use ripki::stats::trend_slope;
use ripki::tables;
use ripki_websim::{Scenario, ScenarioConfig};

const DOMAINS: usize = 20_000;
const BIN: usize = 2_000; // scaled-down stand-in for the paper's 10k bins

fn study() -> (Scenario, ripki::pipeline::StudyResults) {
    let scenario = Scenario::build(ScenarioConfig::with_domains(DOMAINS));
    let pipeline = Pipeline::new(
        &scenario.zones,
        &scenario.rib,
        &scenario.repository,
        PipelineConfig {
            bogus_dns_ppm: scenario.config.bogus_dns_ppm,
            now: scenario.now,
            ..Default::default()
        },
    );
    let results = pipeline.run(&scenario.ranking);
    (scenario, results)
}

#[test]
fn full_study_reproduces_paper_shapes() {
    let (scenario, results) = study();
    assert_eq!(results.domains.len(), DOMAINS);
    assert_eq!(results.rpki_rejected, 0);

    // ---- Headline (§4) ----
    let stats = HeadlineStats::compute(&results);
    // ≈0.07% invalid DNS answers.
    assert!(
        stats.invalid_dns_fraction > 0.0002 && stats.invalid_dns_fraction < 0.002,
        "invalid DNS fraction {}",
        stats.invalid_dns_fraction
    );
    // ≈0.01% unreachable (small).
    assert!(
        stats.unreachable_fraction < 0.002,
        "unreachable {}",
        stats.unreachable_fraction
    );
    // More pairs than addresses (covering aggregates + specifics).
    assert!(
        stats.pairs_per_address() > 1.0,
        "pairs/address {}",
        stats.pairs_per_address()
    );
    assert!(stats.vrp_count > 0);

    // ---- Figure 1: www equality rises with rank ----
    let fig1 = figures::fig1_www_overlap(&results, BIN);
    let top = fig1.range_mean(0, DOMAINS / 10).unwrap();
    let tail = fig1.range_mean(DOMAINS * 9 / 10, DOMAINS).unwrap();
    assert!(top > 0.60 && top < 0.90, "fig1 top {top}");
    assert!(tail > 0.88, "fig1 tail {tail}");
    assert!(tail > top, "fig1 must rise: top {top} tail {tail}");

    // ---- Figure 2: valid share rises with rank; invalid flat & tiny ----
    let fig2 = figures::fig2_rpki_outcome(&results, BIN);
    let valid_top = fig2.valid.range_mean(0, DOMAINS / 10).unwrap();
    let valid_tail = fig2.valid.range_mean(DOMAINS * 9 / 10, DOMAINS).unwrap();
    assert!(
        valid_tail > valid_top,
        "valid share must rise with rank: top {valid_top} tail {valid_tail}"
    );
    assert!(
        (0.01..0.10).contains(&valid_top),
        "valid top ≈4%: {valid_top}"
    );
    assert!(
        (0.02..0.12).contains(&valid_tail),
        "valid tail ≈5.5%: {valid_tail}"
    );
    assert!(trend_slope(&fig2.valid).unwrap() > 0.0);
    let invalid_avg = fig2.invalid.overall_mean().unwrap();
    assert!(
        invalid_avg > 0.0001 && invalid_avg < 0.01,
        "invalid ≈0.09%: {invalid_avg}"
    );
    let nf_avg = fig2.not_found.overall_mean().unwrap();
    assert!(nf_avg > 0.88 && nf_avg < 0.99, "notfound ≈93–96%: {nf_avg}");

    // ---- Figure 3: CDN share decays; HTTPArchive ≥ heuristic ----
    let patterns: Vec<String> = scenario
        .cdn_infras
        .iter()
        .map(|i| format!("{}-sim.net", i.name))
        .collect();
    let classifier = HttpArchiveClassifier::new(&scenario.zones, patterns);
    let fig3 = figures::fig3_cdn_popularity(&results, &classifier, BIN);
    let cdn_top = fig3.cname_heuristic.range_mean(0, DOMAINS / 10).unwrap();
    let cdn_tail = fig3
        .cname_heuristic
        .range_mean(DOMAINS * 9 / 10, DOMAINS)
        .unwrap();
    assert!(
        cdn_top > cdn_tail + 0.05,
        "CDN share decays: {cdn_top} vs {cdn_tail}"
    );
    assert!(trend_slope(&fig3.cname_heuristic).unwrap() < 0.0);
    let ha_top = fig3.httparchive.range_mean(0, DOMAINS / 10).unwrap();
    assert!(
        ha_top > cdn_top,
        "HTTPArchive sees more CDNs than the conservative heuristic: {ha_top} vs {cdn_top}"
    );

    // ---- Figure 4: CDN-hosted RPKI share flat, ≈1%, far below overall --
    let fig4 = figures::fig4_rpki_on_cdns(&results, BIN);
    let overall = fig4.rpki_enabled.overall_mean().unwrap();
    let on_cdn = fig4.rpki_enabled_on_cdns.overall_mean().unwrap();
    assert!(
        on_cdn < overall / 2.0,
        "CDN-hosted RPKI share ({on_cdn}) must be well below overall ({overall})"
    );
    assert!(on_cdn < 0.05, "CDN-hosted share ≈0.9%: {on_cdn}");
    // Flat-ish: the rank trend of the CDN series is an order of magnitude
    // weaker than the overall series' own scale.
    if let Some(slope) = trend_slope(&fig4.rpki_enabled_on_cdns) {
        assert!(
            slope.abs() < 0.01,
            "CDN series should be ~flat, slope {slope}"
        );
    }

    // ---- Table 1: exists and is rank-ordered with real coverage ----
    let rows = tables::table1_top_covered(&results, 10);
    assert!(!rows.is_empty(), "some top domains must show coverage");
    for w in rows.windows(2) {
        assert!(w[0].rank < w[1].rank);
    }
    for row in &rows {
        assert!(row.www.any_coverage() || row.bare.any_coverage());
    }
}

#[test]
fn cdn_audit_reproduces_section_4_2() {
    let (scenario, _) = study();
    let report = ripki_rpki::validate(&scenario.repository, scenario.now);
    let names: Vec<&str> = ripki_websim::operators::CDN_SPECS
        .iter()
        .map(|(n, _, _)| *n)
        .collect();
    let rows = ripki::cdn_audit::audit_cdns(&scenario.registry, &report.vrps, &names);
    let summary = ripki::cdn_audit::summarize(&rows, &scenario.registry, &report.vrps);
    // 199 CDN ASes by keyword spotting.
    assert_eq!(summary.total_cdn_asns, 199);
    // Exactly four RPKI entries, all Internap's, on three origin ASes.
    assert_eq!(summary.total_rpki_entries, 4);
    assert_eq!(summary.cdns_with_deployment, vec!["Internap".to_string()]);
    let internap = rows.iter().find(|r| r.cdn == "Internap").unwrap();
    assert_eq!(internap.as_count, 41);
    assert_eq!(internap.rpki_prefixes.len(), 4);
    assert_eq!(internap.origin_asns.len(), 3);
    // ISPs/webhosters show real penetration (paper: >5%).
    assert!(
        summary.isp_penetration > 0.02,
        "ISP penetration {}",
        summary.isp_penetration
    );
    assert!(
        summary.webhoster_penetration > 0.02,
        "webhoster penetration {}",
        summary.webhoster_penetration
    );
}

#[test]
fn vantage_choice_does_not_change_conclusions() {
    // The paper: "our main results remain independent of the DNS server
    // selection because CDNs are reluctant to create ROAs at all."
    let scenario = Scenario::build(ScenarioConfig::with_domains(6_000));
    let mut means = Vec::new();
    for vantage in [
        ripki_dns::Vantage::GOOGLE_DNS_BERLIN,
        ripki_dns::Vantage::OPEN_DNS,
        ripki_dns::Vantage::LOOKING_GLASS_US01,
    ] {
        let pipeline = Pipeline::new(
            &scenario.zones,
            &scenario.rib,
            &scenario.repository,
            PipelineConfig {
                vantage,
                bogus_dns_ppm: 0,
                now: scenario.now,
                ..Default::default()
            },
        );
        let results = pipeline.run(&scenario.ranking);
        let fig2 = figures::fig2_rpki_outcome(&results, 1_000);
        means.push(fig2.valid.overall_mean().unwrap());
    }
    let spread = means.iter().cloned().fold(f64::MIN, f64::max)
        - means.iter().cloned().fold(f64::MAX, f64::min);
    assert!(spread < 0.01, "vantage spread too large: {means:?}");
}
