//! End-to-end tests of the `ripki-lint` binary over fixture workspaces
//! under `tests/fixtures/`: one tree per outcome (violating, allowed,
//! clean), each mirroring the real `crates/<name>/src/` layout so the
//! catalog's path scopes apply unchanged.

use serde_json::Value;
use std::path::PathBuf;
use std::process::{Command, Output};

fn fixture_root(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ripki-lint"))
        .args(args)
        .output()
        .expect("run ripki-lint")
}

fn check(fixture: &str, extra: &[&str]) -> Output {
    let root = fixture_root(fixture);
    let mut args = vec!["check", "--root", root.to_str().expect("utf-8 path")];
    args.extend_from_slice(extra);
    run(&args)
}

fn stdout(output: &Output) -> String {
    String::from_utf8(output.stdout.clone()).expect("utf-8 stdout")
}

#[test]
fn violating_fixture_fails_with_exact_diagnostics() {
    let output = check("violating", &[]);
    assert_eq!(output.status.code(), Some(1));
    let text = stdout(&output);
    let expected = [
        "crates/dns/src/counter.rs:6:36: R3[atomic-order]: `Ordering::Relaxed` \
         without a same-line or preceding justification comment",
        "crates/ripki/src/clock.rs:4:25: R2[wall-clock]: `Instant::now()` outside \
         ripki_rpki::time — take the clock as a parameter",
        "crates/ripki/src/engine.rs:1:1: R5[epoch-write]: blessed epoch module \
         carries no epoch monotonicity assertion",
        "crates/ripki/src/stats.rs:4:5: R4[print-output]: `println!` in a library \
         crate — report through return values",
        "crates/rtr/src/pdu.rs:5:9: R1[no-panic]: `panic!` on the panic-free path",
        "crates/serve/src/handler.rs:4:10: R1[no-panic]: `[…]` indexing can panic \
         — use `.get(…)`/`split_at_checked` or justify",
        "crates/serve/src/handler.rs:8:11: R1[no-panic]: `.unwrap()` on the \
         panic-free path — return a typed error instead",
        "crates/serve/src/view.rs:8:10: R5[epoch-write]: `epoch` written outside \
         the blessed engine module — epochs must move through the asserting \
         constructors",
    ];
    let mut lines = text.lines();
    for want in expected {
        assert_eq!(lines.next(), Some(want), "full output:\n{text}");
    }
    assert_eq!(
        lines.next(),
        Some("ripki-lint: 7 file(s), 8 violation(s) [R1 3, R2 1, R3 1, R4 1, R5 2], 0 allow(s) (catalog v4)"),
        "full output:\n{text}"
    );
    assert_eq!(lines.next(), None, "trailing output:\n{text}");
}

#[test]
fn violating_fixture_json_report_is_structured() {
    let output = check("violating", &["--format", "json"]);
    assert_eq!(output.status.code(), Some(1));
    let json: Value = serde_json::from_str(&stdout(&output)).expect("valid JSON");
    assert_eq!(json["clean"], Value::from(false));
    assert_eq!(json["catalog_version"], Value::from(4));
    assert_eq!(json["files_scanned"], Value::from(7));
    assert_eq!(json["violations"].as_array().map(<[Value]>::len), Some(8));
    assert_eq!(json["violations_by_rule"]["no-panic"], Value::from(3));
    assert_eq!(json["violations_by_rule"]["wall-clock"], Value::from(1));
    assert_eq!(json["violations_by_rule"]["atomic-order"], Value::from(1));
    assert_eq!(json["violations_by_rule"]["print-output"], Value::from(1));
    assert_eq!(json["violations_by_rule"]["epoch-write"], Value::from(2));
    // Violations come sorted by (path, line, column) with all locator
    // fields populated.
    let first = &json["violations"][0];
    assert_eq!(first["path"], Value::from("crates/dns/src/counter.rs"));
    assert_eq!(first["rule"], Value::from("atomic-order"));
    assert_eq!(first["line"], Value::from(6));
    assert_eq!(first["column"], Value::from(36));
}

#[test]
fn allowed_fixture_passes_and_audits_every_entry() {
    let output = check("allowed", &["--format", "json"]);
    assert_eq!(output.status.code(), Some(0));
    let json: Value = serde_json::from_str(&stdout(&output)).expect("valid JSON");
    assert_eq!(json["clean"], Value::from(true));
    let allows = json["allows"].as_array().expect("allows array");
    assert_eq!(allows.len(), 5);
    for entry in allows {
        assert_eq!(entry["used"], Value::from(true), "{entry:?}");
        assert_ne!(entry["justification"], Value::from(""), "{entry:?}");
    }
    // The text rendering lists the same audit trail.
    let text_run = check("allowed", &[]);
    assert_eq!(text_run.status.code(), Some(0));
    let text = stdout(&text_run);
    assert!(text.contains("allow-list entries (5):"), "{text}");
    assert!(
        text.contains(
            "crates/serve/src/handler.rs:4: allow(no-panic) — caller guarantees a non-empty buffer"
        ),
        "{text}"
    );
    assert!(
        text.contains("ripki-lint: 5 file(s), 0 violation(s), 5 allow(s) (catalog v4)"),
        "{text}"
    );
}

#[test]
fn clean_fixture_passes_silently() {
    let output = check("clean", &[]);
    assert_eq!(output.status.code(), Some(0));
    assert_eq!(
        stdout(&output),
        "ripki-lint: 2 file(s), 0 violation(s), 0 allow(s) (catalog v4)\n"
    );
    let json_run = check("clean", &["--format", "json"]);
    let json: Value = serde_json::from_str(&stdout(&json_run)).expect("valid JSON");
    assert_eq!(json["clean"], Value::from(true));
    assert_eq!(json["violations"].as_array().map(<[Value]>::len), Some(0));
    assert_eq!(json["allows"].as_array().map(<[Value]>::len), Some(0));
}

#[test]
fn transitive_fixture_flags_call_site_and_panic_site() {
    let output = check("transitive", &[]);
    assert_eq!(output.status.code(), Some(1));
    let text = stdout(&output);
    let expected = [
        // Panic site: out of scope for direct R1, reached 2 hops and
        // one crate boundary away from in-scope `respond`.
        "crates/bgp/src/lib.rs:10:30: R1[no-panic]: `expect` can panic and is \
         reachable from the panic-free path: respond -> frame_len -> decode_header",
        // Call site: the in-scope edge where the chain leaves serve.
        "crates/serve/src/handler.rs:8:5: R1[no-panic]: call into `frame_len` \
         reaches a panic site at crates/bgp/src/lib.rs:10 \
         (respond -> frame_len -> decode_header)",
    ];
    let mut lines = text.lines();
    for want in expected {
        assert_eq!(lines.next(), Some(want), "full output:\n{text}");
    }
    assert_eq!(
        lines.next(),
        Some("ripki-lint: 2 file(s), 2 violation(s) [R1 2], 0 allow(s) (catalog v4)"),
        "full output:\n{text}"
    );
    // `unreferenced_helper` has the same `.expect` shape but no caller
    // on the panic-free path: exactly two diagnostics, not three.
    assert_eq!(lines.next(), None, "trailing output:\n{text}");
}

#[test]
fn reactor_blocking_fixture_follows_two_hops_but_not_blessed_sites() {
    let output = check("reactor_blocking", &[]);
    assert_eq!(output.status.code(), Some(1));
    let text = stdout(&output);
    assert_eq!(
        text.lines().next(),
        Some(
            "crates/par/src/lib.rs:4:18: R6[no-blocking]: blocking `std::thread::sleep` \
             reachable from the reactor: Reactor::turn -> Reactor::service -> \
             wait_for_workers — one blocked turn stalls every connection"
        ),
        "full output:\n{text}"
    );
    // The blessed `poll_fds` also blocks (park_timeout) and is also
    // called from `turn`, but R6 must not traverse it: one finding.
    assert!(
        text.contains("1 violation(s) [R6 1]"),
        "full output:\n{text}"
    );
    assert!(!text.contains("park_timeout"), "full output:\n{text}");
}

#[test]
fn lock_order_fixture_flags_inversion_but_not_scoped_release() {
    let output = check("lock_order", &[]);
    assert_eq!(output.status.code(), Some(1));
    let text = stdout(&output);
    assert_eq!(
        text.lines().next(),
        Some(
            "crates/proxy/src/gossip.rs:17:40: R7[lock-order]: lock order inversion: \
             `Gossip::broadcast` takes `Gossip.peers` then `Gossip.journal`, but \
             another path orders `Gossip.journal` before `Gossip.peers` — pick one \
             global order"
        ),
        "full output:\n{text}"
    );
    // `snapshot` touches both locks but releases the first before
    // taking the second; it must not add a third direction or a second
    // diagnostic.
    assert!(
        text.contains("1 violation(s) [R7 1]"),
        "full output:\n{text}"
    );
}

#[test]
fn fp_r1_fixture_is_clean_despite_panic_shaped_text() {
    // Panics in #[cfg(test)] code, string literals, comments, and doc
    // examples — the false positives the PR 5 token heuristic emitted.
    let output = check("fp_r1", &[]);
    assert_eq!(output.status.code(), Some(0));
    assert_eq!(
        stdout(&output),
        "ripki-lint: 1 file(s), 0 violation(s), 0 allow(s) (catalog v4)\n"
    );
}

#[test]
fn usage_errors_exit_2() {
    // Unknown subcommand.
    assert_eq!(run(&["frobnicate"]).status.code(), Some(2));
    // Unknown format value.
    assert_eq!(check("clean", &["--format", "yaml"]).status.code(), Some(2));
    // Missing option value.
    assert_eq!(run(&["check", "--root"]).status.code(), Some(2));
    // Unscannable root.
    let missing = fixture_root("does-not-exist");
    let output = run(&["check", "--root", missing.to_str().expect("utf-8 path")]);
    assert_eq!(
        output.status.code(),
        Some(0),
        "empty tree is vacuously clean"
    );
    // No args at all prints usage and exits 2.
    assert_eq!(run(&[]).status.code(), Some(2));
}

#[test]
fn rules_subcommand_lists_the_catalog() {
    let output = run(&["rules"]);
    assert_eq!(output.status.code(), Some(0));
    let text = stdout(&output);
    assert!(text.contains("rule catalog v4:"), "{text}");
    for code in ["R1", "R2", "R3", "R4", "R5", "R6", "R7"] {
        assert!(text.contains(code), "missing {code} in:\n{text}");
    }
}
