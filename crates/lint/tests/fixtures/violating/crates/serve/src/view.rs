//! Fixture: R5 epoch write outside the engine.

pub struct View {
    pub epoch: u64,
}

pub fn regress(view: &mut View) {
    view.epoch = 0;
}
