//! Fixture: R1 violations on the serve request path.

pub fn first(bytes: &[u8]) -> u8 {
    bytes[0]
}

pub fn parse(input: Option<u8>) -> u8 {
    input.unwrap()
}
