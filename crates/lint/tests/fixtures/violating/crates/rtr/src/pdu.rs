//! Fixture: R1 panic-family macro in the PDU codec.

pub fn decode(version: u8) -> u8 {
    if version > 2 {
        panic!("bad version");
    }
    version
}
