//! Fixture: R2 wall-clock use outside the simulation clock.

pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}
