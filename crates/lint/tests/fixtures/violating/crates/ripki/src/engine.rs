//! Fixture: blessed epoch module missing its monotonicity assertion.

pub fn publish(epoch: u64) -> u64 {
    epoch + 1
}
