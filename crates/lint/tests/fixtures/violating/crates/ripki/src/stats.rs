//! Fixture: R4 print in a library crate.

pub fn report(total: usize) {
    println!("total: {total}");
}
