//! Fixture reactor: R6 roots at `Reactor::turn` in this exact file and
//! walks the call graph. `service` is an innocent-looking hop; the
//! blocking call is two levels down in another crate. `poll_fds` is on
//! the blessed list — the one place the loop is *supposed* to park.

use ripki_par::wait_for_workers;

pub struct Reactor {
    pub draining: bool,
}

impl Reactor {
    pub fn turn(&mut self) -> bool {
        poll_fds(10);
        self.service();
        !self.draining
    }

    fn service(&mut self) {
        wait_for_workers();
    }
}

/// Blessed poll site: blocks by design, and R6 must not traverse it.
fn poll_fds(timeout_ms: i32) {
    if timeout_ms > 0 {
        std::thread::park_timeout(std::time::Duration::from_millis(1));
    }
}
