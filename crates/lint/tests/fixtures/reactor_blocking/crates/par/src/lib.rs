//! Out-of-crate helper: blocking two hops below `Reactor::turn`.

pub fn wait_for_workers() {
    std::thread::sleep(std::time::Duration::from_millis(5));
}
