//! Fixture lock set: `broadcast` and `audit` take the same two locks
//! in opposite orders — the classic ABBA deadlock R7 exists to catch.
//! `snapshot` releases the first guard (scope exit) before taking the
//! second, so it contributes no ordering edge: the would-have-been
//! false positive of a cruder "both locks mentioned" heuristic.

use std::sync::Mutex;

pub struct Gossip {
    peers: Mutex<Vec<u32>>,
    journal: Mutex<Vec<String>>,
}

impl Gossip {
    pub fn broadcast(&self, note: &str) {
        let peers = self.peers.lock().unwrap_or_else(|e| e.into_inner());
        let mut journal = self.journal.lock().unwrap_or_else(|e| e.into_inner());
        journal.push(format!("{note} -> {} peers", peers.len()));
    }

    pub fn audit(&self) -> usize {
        let journal = self.journal.lock().unwrap_or_else(|e| e.into_inner());
        let peers = self.peers.lock().unwrap_or_else(|e| e.into_inner());
        journal.len() + peers.len()
    }

    pub fn snapshot(&self) -> usize {
        let count = {
            let peers = self.peers.lock().unwrap_or_else(|e| e.into_inner());
            peers.len()
        };
        let journal = self.journal.lock().unwrap_or_else(|e| e.into_inner());
        count + journal.len()
    }
}
