//! Every `panic!`/`.unwrap()` in this file is inert: test-only code, a
//! string literal, a comment, or a doc example. The token-heuristic
//! lint of PR 5 flagged all of them; the syntax-tree pass flags none.

/// Returns the help text. The doc example below would panic if run on
/// an empty buffer:
///
/// ```ignore
/// let first = buf.first().unwrap();
/// panic!("empty: {first}");
/// ```
pub fn help_text() -> &'static str {
    // A reviewer note mentioning .unwrap() and panic!("...") is not a
    // call site.
    "never calls panic! or .unwrap() outside a string literal"
}

#[cfg(test)]
mod tests {
    use super::help_text;

    #[test]
    fn help_text_mentions_the_rule() {
        assert!(help_text().contains("panic!"));
        let parsed: u32 = "7".parse().unwrap();
        if parsed != 7 {
            panic!("test-only panic: {parsed}");
        }
    }
}
