//! Fixture: R3 satisfied by an adjacent justification comment.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(counter: &AtomicU64) {
    // Relaxed: standalone counter, no ordering with other memory.
    counter.fetch_add(1, Ordering::Relaxed);
}
