//! Fixture: R2 site suppressed with justification.

pub fn stamp() -> std::time::Instant {
    // lint: allow(wall-clock) fixture models a process-start baseline
    std::time::Instant::now()
}
