//! Fixture: R4 site suppressed with justification.

pub fn report(total: usize) {
    // lint: allow(print-output) fixture keeps the legacy progress line
    println!("total: {total}");
}
