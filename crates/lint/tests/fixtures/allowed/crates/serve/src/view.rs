//! Fixture: R5 site suppressed with justification.

pub struct View {
    pub epoch: u64,
}

pub fn reset(view: &mut View) {
    // lint: allow(epoch-write) fixture resets a detached test double
    view.epoch = 0;
}
