//! Fixture: R1 sites suppressed by audited allow entries.

pub fn first(bytes: &[u8]) -> u8 {
    // lint: allow(no-panic) caller guarantees a non-empty buffer
    bytes[0]
}

pub fn parse(input: Option<u8>) -> u8 {
    input.unwrap() // lint: allow(no-panic) fixture demonstrates same-line form
}
