//! Fixture: panic-free request-path code.

pub fn first(bytes: &[u8]) -> Option<u8> {
    bytes.first().copied()
}
