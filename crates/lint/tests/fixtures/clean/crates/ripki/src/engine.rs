//! Fixture: blessed epoch module carrying its assertion.

pub fn publish(current: u64, next_epoch: u64) -> u64 {
    assert!(next_epoch > current, "epochs must advance");
    next_epoch
}
