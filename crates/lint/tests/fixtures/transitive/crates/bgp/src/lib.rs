//! Out-of-scope crate: R1 does not lint this file directly, but a
//! panic site here is reachable from `ripki_serve::respond` two hops
//! away — the call-graph pass must surface both ends of the chain.

pub fn frame_len(buf: &[u8]) -> usize {
    decode_header(buf)
}

fn decode_header(buf: &[u8]) -> usize {
    usize::from(*buf.first().expect("non-empty frame"))
}

/// Same shape, never called from in-scope code: reachability must not
/// flag panic sites nothing on the panic-free path can reach.
pub fn unreferenced_helper(buf: &[u8]) -> usize {
    usize::from(*buf.first().expect("dead code"))
}
