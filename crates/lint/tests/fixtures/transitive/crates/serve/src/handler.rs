//! In-scope entry point: R1 applies to everything under
//! `crates/serve/src/`, and the exact analysis follows calls out of
//! scope.

use ripki_bgp::frame_len;

pub fn respond(buf: &[u8]) -> usize {
    frame_len(buf)
}
