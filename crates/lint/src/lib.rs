//! `ripki-lint`: the workspace invariant checker.
//!
//! The engine rests on invariants no compiler pass checks: epoch
//! monotonicity between `WorldSnapshot`, `EpochDelta`, and the RTR
//! serial; panic-freedom on the `ripki-serve` request path and the RTR
//! PDU codec; wall-clock confinement to `ripki_rpki::time`. This crate
//! enforces them as a versioned rule catalog ([`catalog`]) over a
//! hand-rolled token stream ([`lex`] — the offline build has no `syn`),
//! with a counted, justification-required `// lint: allow(<rule>)`
//! escape hatch.
//!
//! Run as `cargo run -p ripki-lint -- check` (wired into
//! `scripts/check.sh` and the CI `static-analysis` job).

pub mod catalog;
pub mod graph;
pub mod lex;
pub mod parse;
pub mod report;
pub mod rules;

use report::Report;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Check every in-scope source file under `root` (a workspace root:
/// `crates/*/src/**/*.rs` plus the root package's `src/`). Test
/// directories are exempt wholesale — the rules target shipping code —
/// and `vendor/` holds offline stand-ins for external crates, which are
/// not ours to lint.
///
/// Two phases: every file is lexed and parsed into the shared
/// [`rules::CheckSet`] first, then the per-file rules and the
/// call-graph rules (transitive R1, R6, R7) run over the assembled
/// workspace.
pub fn check_workspace(root: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    collect_sources(root, &mut files)?;
    files.sort();
    let mut set = rules::CheckSet::default();
    let mut report = Report::default();
    for path in files {
        let source = fs::read_to_string(root.join(&path))?;
        set.add_file(&catalog::canonical(&path), &source);
        report.files_scanned += 1;
    }
    let (violations, allows) = set.run();
    report.violations = violations;
    report.allows = allows;
    report
        .violations
        .sort_by(|a, b| (&a.path, a.line, a.column).cmp(&(&b.path, b.line, b.column)));
    report
        .allows
        .sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(report)
}

fn collect_sources(root: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                collect_rs(root, &src, out)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(root, &root_src, out)?;
    }
    Ok(())
}

fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(root, &path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
            out.push(rel);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The tool must accept its own workspace: running it over the repo
    /// root from the test (CARGO_MANIFEST_DIR/../..) reports zero
    /// violations — the acceptance criterion of the PR that added it.
    #[test]
    fn own_workspace_is_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root");
        let report = check_workspace(root).expect("workspace scan");
        assert!(
            report.files_scanned > 50,
            "scanned {}",
            report.files_scanned
        );
        assert!(
            report.clean(),
            "workspace has lint violations:\n{}",
            report.render_text()
        );
        // Every allow-list entry must carry a written justification and
        // suppress something real (both enforced as violations above,
        // but assert directly for clarity).
        for allow in &report.allows {
            assert!(!allow.justification.is_empty(), "{allow:?}");
            assert!(allow.used, "{allow:?}");
        }
    }
}
