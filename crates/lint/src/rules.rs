//! The R1–R7 checks, evaluated over the parsed item tree and the
//! workspace call graph.
//!
//! The per-file rules (direct R1, R2–R5) walk each function's [`Op`]
//! stream — string literals, comments, and doc examples were never
//! tokens, and `#[cfg(test)]` items are masked at item granularity by
//! the parser, so the classic heuristic false positives are impossible
//! by construction. The graph rules (transitive R1, R6, R7) run over
//! the assembled [`Workspace`]: BFS reachability from the rule's roots,
//! with diagnostics that print the call chain.
//!
//! The `// lint: allow(<rule>) <justification>` escape hatch is
//! unchanged: same line or the contiguous comment block directly above,
//! justification required, unused entries are themselves violations.

use crate::catalog::{
    is_blessed_epoch_module, Rule, BLOCKING_METHODS, BLOCKING_PATHS, REACTOR_BLESSED, REACTOR_ROOTS,
};
use crate::graph::{FnId, FnNode, LockOrder, Workspace};
use crate::lex::{tokenize, Token};
use crate::parse::{parse_file, Op};
use crate::report::{AllowEntry, Violation};
use std::collections::{BTreeSet, HashMap};
use std::path::{Path, PathBuf};

/// Per-file facts the checks and the allow machinery query.
struct FileView {
    /// Lines that contain at least one comment token.
    comment_lines: BTreeSet<usize>,
    /// Lines that contain at least one significant token.
    code_lines: BTreeSet<usize>,
    /// Parsed `lint: allow(...)` comments by line.
    allows: Vec<ParsedAllow>,
    /// Syntactically broken allow comments (unknown rule id).
    bad_allows: Vec<(usize, String)>,
}

struct ParsedAllow {
    rule: Rule,
    line: usize,
    justification: String,
    used: std::cell::Cell<bool>,
}

/// Result of checking one file (compat surface for unit tests; the
/// workspace walk uses [`CheckSet`] directly).
pub struct FileReport {
    /// Rule violations (allow-suppressed candidates excluded).
    pub violations: Vec<Violation>,
    /// Every allow-list entry found, with usage accounting.
    pub allows: Vec<AllowEntry>,
}

/// The whole-workspace analysis: parsed files feeding one call graph.
#[derive(Default)]
pub struct CheckSet {
    views: Vec<(String, FileView)>,
    view_by_path: HashMap<PathBuf, usize>,
    ws: Workspace,
    crate_names: BTreeSet<String>,
}

impl CheckSet {
    /// Add one source file. `path` is workspace-relative and
    /// `/`-separated (see [`crate::catalog::canonical`]).
    pub fn add_file(&mut self, path: &str, source: &str) {
        let tokens = tokenize(source);
        let mut comment_lines = BTreeSet::new();
        let mut code_lines = BTreeSet::new();
        let mut allows = Vec::new();
        let mut bad_allows = Vec::new();
        let mut sig = Vec::new();
        for token in tokens {
            if token.is_comment() {
                comment_lines.insert(token.line);
                parse_allow_comment(&token, &mut allows, &mut bad_allows);
            } else {
                code_lines.insert(token.line);
                sig.push(token);
            }
        }
        let parsed = parse_file(&sig);
        let krate = crate_of(path);
        self.crate_names.insert(krate.clone());
        self.ws.add_file(Path::new(path), &krate, parsed);
        self.view_by_path
            .insert(PathBuf::from(path), self.views.len());
        self.views.push((
            path.to_string(),
            FileView {
                comment_lines,
                code_lines,
                allows,
                bad_allows,
            },
        ));
    }

    /// Run every rule and the allow audit. Violations are unsorted;
    /// the caller orders them.
    pub fn run(mut self) -> (Vec<Violation>, Vec<AllowEntry>) {
        self.ws.link(&self.crate_names);
        let mut out = Vec::new();
        self.check_file_rules(&mut out);
        self.check_transitive_panics(&mut out);
        self.check_reactor_blocking(&mut out);
        self.check_lock_order(&mut out);
        let allows = self.finish_allows(&mut out);
        (out, allows)
    }

    fn view_of(&self, path: &Path) -> Option<&FileView> {
        self.view_by_path.get(path).map(|&i| &self.views[i].1)
    }

    /// Emit unless an adjacent allow entry for `rule` suppresses it.
    fn emit(
        &self,
        rule: Rule,
        path: &Path,
        line: usize,
        column: usize,
        message: String,
        out: &mut Vec<Violation>,
    ) {
        if let Some(view) = self.view_of(path) {
            if view.consume_allow(rule, line) {
                return;
            }
        }
        out.push(Violation {
            rule: rule.id().into(),
            path: path.to_string_lossy().into_owned(),
            line,
            column,
            message,
        });
    }

    // -------------------------------------------------- per-file rules

    fn check_file_rules(&self, out: &mut Vec<Violation>) {
        for id in 0..self.ws.fns.len() {
            let node = &self.ws.fns[id];
            if node.def.is_test {
                continue;
            }
            let path_str = node.path.to_string_lossy().into_owned();
            let view = self.view_of(&node.path);
            let r1 = Rule::NoPanic.applies_to(&path_str);
            let r2 = Rule::WallClock.applies_to(&path_str);
            let r4 = Rule::PrintOutput.applies_to(&path_str);
            let r5 = Rule::EpochWrite.applies_to(&path_str);
            for op in &node.def.ops {
                match op {
                    Op::Method {
                        name, line, column, ..
                    } if r1 && matches!(name.as_str(), "unwrap" | "expect") => {
                        self.emit(
                            Rule::NoPanic,
                            &node.path,
                            *line,
                            *column,
                            format!(
                                "`.{name}()` on the panic-free path — return a typed error instead"
                            ),
                            out,
                        );
                    }
                    Op::MacroUse {
                        name, line, column, ..
                    } if r1 && is_panic_macro(name) => {
                        self.emit(
                            Rule::NoPanic,
                            &node.path,
                            *line,
                            *column,
                            format!("`{name}!` on the panic-free path"),
                            out,
                        );
                    }
                    Op::Index { line, column } if r1 => {
                        self.emit(
                            Rule::NoPanic,
                            &node.path,
                            *line,
                            *column,
                            "`[…]` indexing can panic — use `.get(…)`/`split_at_checked` or \
                             justify"
                                .to_string(),
                            out,
                        );
                    }
                    Op::Call { path, line, column } if r2 => {
                        if let Some(clock) = wall_clock_type(path) {
                            // A real-time serving plane measures
                            // deadlines: the monotonic clock is part of
                            // its job. The wall clock stays confined.
                            let serve_instant =
                                clock == "Instant" && path_str.starts_with("crates/serve/");
                            if !serve_instant {
                                self.emit(
                                    Rule::WallClock,
                                    &node.path,
                                    *line,
                                    *column,
                                    format!(
                                        "`{clock}::now()` outside ripki_rpki::time — take the \
                                         clock as a parameter"
                                    ),
                                    out,
                                );
                            }
                        }
                    }
                    Op::OrderingUse { name, line, column } => {
                        let justified = view.is_some_and(|v| v.has_adjacent_comment(*line));
                        if !justified {
                            self.emit(
                                Rule::AtomicOrder,
                                &node.path,
                                *line,
                                *column,
                                format!(
                                    "`Ordering::{name}` without a same-line or preceding \
                                     justification comment"
                                ),
                                out,
                            );
                        }
                    }
                    Op::MacroUse {
                        name, line, column, ..
                    } if r4
                        && matches!(
                            name.as_str(),
                            "println" | "eprintln" | "print" | "eprint" | "dbg"
                        ) =>
                    {
                        self.emit(
                            Rule::PrintOutput,
                            &node.path,
                            *line,
                            *column,
                            format!("`{name}!` in a library crate — report through return values"),
                            out,
                        );
                    }
                    Op::FieldWrite { name, line, column } if r5 => {
                        self.emit(
                            Rule::EpochWrite,
                            &node.path,
                            *line,
                            *column,
                            format!(
                                "`{name}` written outside the blessed engine module — epochs \
                                 must move through the asserting constructors"
                            ),
                            out,
                        );
                    }
                    _ => {}
                }
            }
        }
        // The blessed modules' side of the R5 bargain: their non-test
        // code must actually carry an epoch assertion.
        for (path_str, _) in &self.views {
            if !is_blessed_epoch_module(path_str) {
                continue;
            }
            let upheld = self.ws.fns.iter().any(|n| {
                n.path.to_string_lossy() == *path_str
                    && !n.def.is_test
                    && n.def.ops.iter().any(|op| {
                        matches!(
                            op,
                            Op::MacroUse { name, epoch_assert: true, .. }
                                if name.starts_with("assert")
                        )
                    })
            });
            if !upheld {
                out.push(Violation {
                    rule: Rule::EpochWrite.id().into(),
                    path: path_str.clone(),
                    line: 1,
                    column: 1,
                    message: "blessed epoch module carries no epoch monotonicity assertion".into(),
                });
            }
        }
    }

    // ------------------------------------------------ R1 (transitive)

    /// A panic in *any* workspace function reachable from the
    /// panic-free scope is flagged at the panic site and at the
    /// in-scope call that first leaves the scope toward it. Indexing is
    /// deliberately direct-scope-only: the hot path must not index, but
    /// a bounds-checked slice walk deep in the engine is that crate's
    /// own business.
    fn check_transitive_panics(&self, out: &mut Vec<Violation>) {
        let in_scope = |node: &FnNode| Rule::NoPanic.applies_to(&node.path.to_string_lossy());
        let roots: Vec<FnId> = (0..self.ws.fns.len())
            .filter(|&id| in_scope(&self.ws.fns[id]) && !self.ws.fns[id].def.is_test)
            .collect();
        if roots.is_empty() {
            return;
        }
        let pred = self.ws.reach(&roots);
        let mut reached: Vec<FnId> = pred.keys().copied().collect();
        reached.sort_unstable();
        for id in reached {
            let node = &self.ws.fns[id];
            if in_scope(node) {
                continue; // direct pass owns in-scope sites
            }
            let sites: Vec<(&str, usize, usize)> = node
                .def
                .ops
                .iter()
                .filter_map(|op| match op {
                    Op::Method {
                        name, line, column, ..
                    } if matches!(name.as_str(), "unwrap" | "expect") => {
                        Some((name.as_str(), *line, *column))
                    }
                    Op::MacroUse {
                        name, line, column, ..
                    } if is_panic_macro(name) => Some((name.as_str(), *line, *column)),
                    _ => None,
                })
                .collect();
            if sites.is_empty() {
                continue;
            }
            let chain = self.ws.chain_text(&pred, id);
            for (what, line, column) in &sites {
                self.emit(
                    Rule::NoPanic,
                    &node.path,
                    *line,
                    *column,
                    format!(
                        "`{what}` can panic and is reachable from the panic-free path: {chain}"
                    ),
                    out,
                );
            }
            // The in-scope call site: the last in-scope fn on the
            // chain, at the op that resolves to the next hop.
            if let Some((caller, callee)) = self.scope_exit_edge(&pred, id, &in_scope) {
                let caller_node = &self.ws.fns[caller];
                if let Some((line, column)) = self.op_position_of_edge(caller, callee) {
                    self.emit(
                        Rule::NoPanic,
                        &caller_node.path,
                        line,
                        column,
                        format!(
                            "call into `{}` reaches a panic site at {}:{} ({})",
                            self.ws.fn_label(callee),
                            node.path.to_string_lossy(),
                            sites[0].1,
                            chain
                        ),
                        out,
                    );
                }
            }
        }
    }

    /// Walk the predecessor chain of `id` back to its root and return
    /// the edge where the chain last leaves the rule scope.
    fn scope_exit_edge(
        &self,
        pred: &HashMap<FnId, FnId>,
        id: FnId,
        in_scope: &dyn Fn(&FnNode) -> bool,
    ) -> Option<(FnId, FnId)> {
        let mut chain = vec![id];
        let mut cur = id;
        while let Some(&p) = pred.get(&cur) {
            if p == cur {
                break;
            }
            chain.push(p);
            cur = p;
        }
        chain.reverse(); // root … id
        for w in chain.windows(2).rev() {
            if in_scope(&self.ws.fns[w[0]]) && !in_scope(&self.ws.fns[w[1]]) {
                return Some((w[0], w[1]));
            }
        }
        None
    }

    /// Source position of the op in `caller` that resolves to `callee`.
    fn op_position_of_edge(&self, caller: FnId, callee: FnId) -> Option<(usize, usize)> {
        for op in &self.ws.fns[caller].def.ops {
            if self.ws.resolve_op(caller, op, &self.crate_names) == Some(callee) {
                match op {
                    Op::Call { line, column, .. } | Op::Method { line, column, .. } => {
                        return Some((*line, *column));
                    }
                    _ => {}
                }
            }
        }
        None
    }

    // ------------------------------------------------------------- R6

    /// Nothing blocking reachable from a reactor turn. Roots and
    /// blessed sites come from the catalog; traversal stops at blessed
    /// fns (their bodies are the sanctioned poll/idle-sweep sites).
    fn check_reactor_blocking(&self, out: &mut Vec<Violation>) {
        let roots: Vec<FnId> = REACTOR_ROOTS
            .iter()
            .filter_map(|(suffix, ty, name)| self.ws.find_fn(suffix, *ty, name))
            .collect();
        if roots.is_empty() {
            return;
        }
        let blessed: BTreeSet<FnId> = REACTOR_BLESSED
            .iter()
            .filter_map(|(suffix, ty, name)| self.ws.find_fn(suffix, *ty, name))
            .collect();
        let pred = self.ws.reach_excluding(&roots, &blessed);
        let locks = self.ws.transitive_locks();
        let mut reached: Vec<FnId> = pred.keys().copied().collect();
        reached.sort_unstable();
        for id in reached {
            let node = &self.ws.fns[id];
            let chain = self.ws.chain_text(&pred, id);
            let mut held: Vec<(String, usize)> = Vec::new();
            let mut depth = 0usize;
            for op in &node.def.ops {
                match op {
                    Op::BlockOpen => depth += 1,
                    Op::BlockClose => {
                        depth = depth.saturating_sub(1);
                        held.retain(|(_, d)| *d <= depth);
                    }
                    Op::Method {
                        name,
                        recv,
                        line,
                        column,
                    } => {
                        if BLOCKING_METHODS.contains(&name.as_str()) {
                            self.emit(
                                Rule::NoBlocking,
                                &node.path,
                                *line,
                                *column,
                                format!(
                                    "blocking `.{name}()` reachable from the reactor: {chain} \
                                     — one blocked turn stalls every connection"
                                ),
                                out,
                            );
                        }
                        if let Some(lock) = self.ws.lock_acquired(node, name, recv) {
                            held.push((lock, depth));
                        } else if let Some(callee) = self.ws.resolve_op(id, op, &self.crate_names) {
                            self.flag_handoff_under_lock(
                                node, &held, callee, &locks, *line, *column, &chain, out,
                            );
                        }
                    }
                    Op::Call { line, column, path } => {
                        if path
                            .last()
                            .is_some_and(|l| BLOCKING_PATHS.contains(&l.as_str()))
                        {
                            self.emit(
                                Rule::NoBlocking,
                                &node.path,
                                *line,
                                *column,
                                format!(
                                    "blocking `{}` reachable from the reactor: {chain} — one \
                                     blocked turn stalls every connection",
                                    path.join("::")
                                ),
                                out,
                            );
                        } else if let Some(callee) = self.ws.resolve_op(id, op, &self.crate_names) {
                            self.flag_handoff_under_lock(
                                node, &held, callee, &locks, *line, *column, &chain, out,
                            );
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    /// On the reactor path, a lock held across a call into a function
    /// that itself takes locks is a hand-off under lock: the reactor
    /// thread's critical section now includes someone else's.
    #[allow(clippy::too_many_arguments)]
    fn flag_handoff_under_lock(
        &self,
        node: &FnNode,
        held: &[(String, usize)],
        callee: FnId,
        locks: &[BTreeSet<String>],
        line: usize,
        column: usize,
        chain: &str,
        out: &mut Vec<Violation>,
    ) {
        if held.is_empty() || locks[callee].is_empty() {
            return;
        }
        let held_names: Vec<&str> = held.iter().map(|(l, _)| l.as_str()).collect();
        self.emit(
            Rule::NoBlocking,
            &node.path,
            line,
            column,
            format!(
                "`{}` held across call into `{}` (which takes `{}`) on the reactor path: {chain}",
                held_names.join("`, `"),
                self.ws.fn_label(callee),
                locks[callee]
                    .iter()
                    .cloned()
                    .collect::<Vec<_>>()
                    .join("`, `"),
            ),
            out,
        );
    }

    // ------------------------------------------------------------- R7

    /// One global acquisition order over the serve/par/proxy lock set.
    /// Guard lifetime is approximated as held-to-end-of-enclosing-block;
    /// calls made under a lock order that lock against everything the
    /// callee transitively acquires.
    fn check_lock_order(&self, out: &mut Vec<Violation>) {
        let in_scope = |lock: &str| {
            let owner = lock.split('.').next().unwrap_or(lock);
            self.ws
                .lock_owner_paths
                .get(owner)
                .is_some_and(|p| Rule::LockOrder.applies_to(&p.to_string_lossy()))
        };
        let locks = self.ws.transitive_locks();
        let mut order = LockOrder::default();
        for id in 0..self.ws.fns.len() {
            let node = &self.ws.fns[id];
            if node.def.is_test {
                continue;
            }
            let mut held: Vec<(String, usize)> = Vec::new();
            let mut depth = 0usize;
            for op in &node.def.ops {
                match op {
                    Op::BlockOpen => depth += 1,
                    Op::BlockClose => {
                        depth = depth.saturating_sub(1);
                        held.retain(|(_, d)| *d <= depth);
                    }
                    Op::Method {
                        name,
                        recv,
                        line,
                        column,
                    } => {
                        if let Some(lock) = self.ws.lock_acquired(node, name, recv) {
                            if in_scope(&lock) {
                                for (h, _) in &held {
                                    order.record(
                                        h,
                                        &lock,
                                        &node.path,
                                        *line,
                                        *column,
                                        self.ws.fn_label(id),
                                    );
                                }
                                held.push((lock, depth));
                            }
                        } else if let Some(callee) = self.ws.resolve_op(id, op, &self.crate_names) {
                            for (h, _) in &held {
                                for l in &locks[callee] {
                                    if in_scope(l) {
                                        order.record(
                                            h,
                                            l,
                                            &node.path,
                                            *line,
                                            *column,
                                            self.ws.fn_label(id),
                                        );
                                    }
                                }
                            }
                        }
                    }
                    Op::Call { line, column, .. } => {
                        if let Some(callee) = self.ws.resolve_op(id, op, &self.crate_names) {
                            for (h, _) in &held {
                                for l in &locks[callee] {
                                    if in_scope(l) {
                                        order.record(
                                            h,
                                            l,
                                            &node.path,
                                            *line,
                                            *column,
                                            self.ws.fn_label(id),
                                        );
                                    }
                                }
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        for ((a, b), (path, line, column, via)) in order.cycles() {
            self.emit(
                Rule::LockOrder,
                path,
                *line,
                *column,
                format!(
                    "lock order inversion: `{via}` takes `{a}` then `{b}`, but another path \
                     orders `{b}` before `{a}` — pick one global order"
                ),
                out,
            );
        }
    }

    // ------------------------------------------------------ allow audit

    fn finish_allows(&self, out: &mut Vec<Violation>) -> Vec<AllowEntry> {
        let mut allows = Vec::new();
        for (path, view) in &self.views {
            for (line, id) in &view.bad_allows {
                out.push(Violation {
                    rule: "allow-syntax".into(),
                    path: path.clone(),
                    line: *line,
                    column: 1,
                    message: format!("allow comment names unknown rule `{id}`"),
                });
            }
            for allow in &view.allows {
                if allow.justification.is_empty() {
                    out.push(Violation {
                        rule: allow.rule.id().into(),
                        path: path.clone(),
                        line: allow.line,
                        column: 1,
                        message: format!(
                            "allow({}) entry has no written justification",
                            allow.rule.id()
                        ),
                    });
                } else if !allow.used.get() {
                    out.push(Violation {
                        rule: allow.rule.id().into(),
                        path: path.clone(),
                        line: allow.line,
                        column: 1,
                        message: format!(
                            "allow({}) entry suppresses nothing — remove the stale escape hatch",
                            allow.rule.id()
                        ),
                    });
                }
                allows.push(AllowEntry {
                    rule: allow.rule.id().into(),
                    path: path.clone(),
                    line: allow.line,
                    justification: allow.justification.clone(),
                    used: allow.used.get(),
                });
            }
        }
        allows
    }
}

/// Run every applicable rule over one file in isolation (unit-test
/// surface; workspace analysis adds the graph rules across files).
pub fn check_file(path: &str, source: &str) -> FileReport {
    let mut set = CheckSet::default();
    set.add_file(path, source);
    let (mut violations, allows) = set.run();
    violations.sort_by_key(|a| (a.line, a.column));
    FileReport { violations, allows }
}

/// `crates/serve/src/…` → `ripki_serve` (the importable crate name);
/// the root package's `src/` → `ripki_repro`.
fn crate_of(path: &str) -> String {
    let mut comps = path.split('/');
    if comps.next() == Some("crates") {
        match comps.next() {
            Some("ripki") => "ripki".to_string(),
            Some("net-types") => "ripki_net".to_string(),
            Some(dir) => format!("ripki_{}", dir.replace('-', "_")),
            None => "ripki_repro".to_string(),
        }
    } else {
        "ripki_repro".to_string()
    }
}

fn is_panic_macro(name: &str) -> bool {
    matches!(name, "panic" | "unreachable" | "todo" | "unimplemented")
}

/// `…::Instant::now` / `…::SystemTime::now` → the clock type.
fn wall_clock_type(path: &[String]) -> Option<&'static str> {
    match path {
        [.., ty, last] if last == "now" && ty == "Instant" => Some("Instant"),
        [.., ty, last] if last == "now" && ty == "SystemTime" => Some("SystemTime"),
        _ => None,
    }
}

impl FileView {
    /// Is there a comment on `line`, or on the contiguous run of
    /// comment-only lines directly above it?
    fn has_adjacent_comment(&self, line: usize) -> bool {
        if self.comment_lines.contains(&line) {
            return true;
        }
        let mut l = line;
        while l > 1 {
            l -= 1;
            let has_comment = self.comment_lines.contains(&l);
            let has_code = self.code_lines.contains(&l);
            if has_comment && !has_code {
                return true;
            }
            if has_code || !has_comment {
                // A code line (or blank line) breaks the comment block.
                return false;
            }
        }
        false
    }

    /// Find an allow entry for `rule` adjacent to `line` (same line or
    /// the contiguous comment block directly above) and mark it used.
    fn consume_allow(&self, rule: Rule, line: usize) -> bool {
        let mut candidate_lines: Vec<usize> = vec![line];
        let mut l = line;
        while l > 1 {
            l -= 1;
            if self.comment_lines.contains(&l) && !self.code_lines.contains(&l) {
                candidate_lines.push(l);
            } else {
                break;
            }
        }
        for allow in &self.allows {
            if allow.rule == rule && candidate_lines.contains(&allow.line) {
                allow.used.set(true);
                return true;
            }
        }
        false
    }
}

fn parse_allow_comment(
    token: &Token,
    allows: &mut Vec<ParsedAllow>,
    bad: &mut Vec<(usize, String)>,
) {
    // A directive is a comment that *starts* with `lint: allow(…)` —
    // prose that merely mentions the syntax mid-sentence is not one.
    let body = token
        .text
        .trim_start_matches('/')
        .trim_start_matches('*')
        .trim_start_matches('!')
        .trim_start();
    let Some(rest) = body.strip_prefix("lint: allow(") else {
        return;
    };
    let Some(close) = rest.find(')') else {
        bad.push((token.line, rest.trim().to_string()));
        return;
    };
    let id = rest[..close].trim();
    let mut justification = rest[close + 1..].trim();
    justification = justification
        .trim_end_matches("*/")
        .trim_start_matches("--")
        .trim();
    match Rule::from_id(id) {
        Some(rule) => allows.push(ParsedAllow {
            rule,
            line: token.line,
            justification: justification.to_string(),
            used: std::cell::Cell::new(false),
        }),
        None => bad.push((token.line, id.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SERVE_PATH: &str = "crates/serve/src/http.rs";

    fn violations(path: &str, src: &str) -> Vec<Violation> {
        check_file(path, src).violations
    }

    #[test]
    fn unwrap_on_request_path_is_flagged() {
        let v = violations(SERVE_PATH, "fn f(x: Option<u8>) -> u8 { x.unwrap() }");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-panic");
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn unwrap_in_test_mod_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n fn f(x: Option<u8>) { x.unwrap(); }\n}\n";
        assert!(violations(SERVE_PATH, src).is_empty());
    }

    #[test]
    fn unwrap_outside_scope_is_not_flagged() {
        let v = violations(
            "crates/dns/src/zone.rs",
            "fn f(x: Option<u8>) { x.unwrap(); }",
        );
        assert!(v.is_empty());
    }

    #[test]
    fn panic_in_string_literal_or_comment_is_invisible() {
        let src = "fn f() -> &'static str {\n    // a panic! here is just prose\n    \
                   \"otherwise we panic!(now)\"\n}\n\
                   /// Example: `x.unwrap()` would panic!(here)\nfn g() {}\n";
        assert!(violations(SERVE_PATH, src).is_empty());
    }

    #[test]
    fn allow_comment_suppresses_and_is_counted() {
        let src = "fn f(b: &[u8]) -> u8 {\n    // lint: allow(no-panic) caller checked len\n    b[0]\n}\n";
        let report = check_file(SERVE_PATH, src);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert_eq!(report.allows.len(), 1);
        assert!(report.allows[0].used);
        assert_eq!(report.allows[0].justification, "caller checked len");
    }

    #[test]
    fn allow_without_justification_is_a_violation() {
        let src = "fn f(b: &[u8]) -> u8 {\n    b[0] // lint: allow(no-panic)\n}\n";
        let report = check_file(SERVE_PATH, src);
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0]
            .message
            .contains("no written justification"));
    }

    #[test]
    fn stale_allow_is_a_violation() {
        let src = "// lint: allow(no-panic) nothing here anymore\nfn f() {}\n";
        let report = check_file(SERVE_PATH, src);
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].message.contains("suppresses nothing"));
    }

    #[test]
    fn indexing_is_flagged_but_types_are_not() {
        let src = "fn f(b: &[u8], i: usize) -> u8 { let _a: [u8; 4] = [0; 4]; b[i] }";
        let v = violations(SERVE_PATH, src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("indexing"));
    }

    #[test]
    fn wall_clock_flagged_outside_time_module() {
        let src = "fn f() { let _ = std::time::Instant::now(); }";
        assert_eq!(violations("crates/ripki/src/stats.rs", src).len(), 1);
        assert!(violations("crates/rpki/src/time.rs", src).is_empty());
        assert!(violations("crates/cli/src/lib.rs", src).is_empty());
    }

    #[test]
    fn serve_gets_the_monotonic_clock_but_not_the_wall_clock() {
        let mono = "fn f() { let _ = Instant::now(); }";
        let wall = "fn f() { let _ = SystemTime::now(); }";
        assert!(violations("crates/serve/src/reactor.rs", mono).is_empty());
        assert_eq!(violations("crates/serve/src/reactor.rs", wall).len(), 1);
        // The carve-out is serve-only.
        assert_eq!(violations("crates/ripki/src/stats.rs", mono).len(), 1);
    }

    #[test]
    fn ordering_needs_a_comment() {
        let bare = "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }";
        let same_line =
            "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); // independent counter\n }";
        let above = "fn f(c: &AtomicU64) {\n    // independent counter\n    c.fetch_add(1, Ordering::Relaxed);\n}";
        let path = "crates/dns/src/cache.rs";
        assert_eq!(violations(path, bare).len(), 1);
        assert!(violations(path, same_line).is_empty());
        assert!(violations(path, above).is_empty());
        // SeqCst is the conservative default and never flagged.
        let seqcst = "fn f(c: &AtomicU64) { c.load(Ordering::SeqCst); }";
        assert!(violations(path, seqcst).is_empty());
    }

    #[test]
    fn cmp_ordering_is_not_atomic_ordering() {
        let src = "fn f() -> std::cmp::Ordering { std::cmp::Ordering::Less }";
        assert!(violations("crates/dns/src/cache.rs", src).is_empty());
    }

    #[test]
    fn println_in_library_flagged() {
        let src = "fn f() { println!(\"hi\"); }";
        assert_eq!(violations("crates/ripki/src/stats.rs", src).len(), 1);
        assert!(violations("crates/cli/src/main.rs", src).is_empty());
    }

    #[test]
    fn epoch_write_outside_engine_flagged() {
        let literal = "fn f(e: u64) -> Delta { Delta { from_epoch: e, payload: 0 } }";
        let assign = "fn f(r: &mut Results) { r.epoch = 9; }";
        let path = "crates/serve/src/view.rs";
        assert_eq!(violations(path, literal).len(), 1);
        assert_eq!(violations(path, assign).len(), 1);
    }

    #[test]
    fn epoch_declarations_are_not_writes() {
        let decl = "pub struct Delta { pub from_epoch: u64, pub to_epoch: u64 }";
        let param = "fn stamp(epoch: u64) -> u64 { epoch }";
        let path = "crates/serve/src/view.rs";
        assert!(violations(path, decl).is_empty(), "struct decl");
        assert!(violations(path, param).is_empty(), "fn param");
        // Closure parameter annotations are declarations too.
        let closure = "fn f() { let g = |epoch: u64, n: usize| epoch + n as u64; g(1, 2); }";
        assert!(violations(path, closure).is_empty(), "closure param");
        // Reads and comparisons are free.
        let read = "fn f(r: &Results) -> bool { r.epoch == 4 && r.epoch >= 2 }";
        assert!(violations(path, read).is_empty(), "reads");
    }

    #[test]
    fn slurm_epoch_writes_blessed_under_its_assert() {
        // The fixture mirrors ripki-slurm's delta mapping: epochs
        // copied verbatim into a struct literal, guarded by the
        // module's own forward-motion assertion.
        let shift = "fn shift(d: Delta, off: u64) -> Delta {\n\
                     \x20   assert!(d.to_epoch > d.from_epoch, \"forward\");\n\
                     \x20   Delta { from_epoch: d.from_epoch + off, to_epoch: d.to_epoch + off }\n\
                     }";
        assert!(
            violations("crates/slurm/src/lib.rs", shift).is_empty(),
            "slurm is a blessed epoch module"
        );
        // The same writes anywhere else stay violations.
        assert_eq!(violations("crates/proxy/src/units.rs", shift).len(), 2);
        // And the blessing is a bargain: drop the assert and the slurm
        // module itself gets flagged.
        let unguarded =
            "fn shift(d: Delta) -> Delta { Delta { from_epoch: d.from_epoch, to_epoch: 0 } }";
        let v = violations("crates/slurm/src/lib.rs", unguarded);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("monotonicity assertion"));
    }

    #[test]
    fn blessed_module_must_assert() {
        let good = "fn publish(old: u64, new_epoch: u64) { assert!(new_epoch > old, \"epoch\"); }";
        let bad = "fn publish(e: u64) -> u64 { e + 1 }";
        assert!(violations("crates/ripki/src/engine.rs", good).is_empty());
        let v = violations("crates/ripki/src/engine.rs", bad);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("monotonicity assertion"));
    }

    // ------------------------------------------ graph rules, in-memory

    fn run_set(files: &[(&str, &str)]) -> Vec<Violation> {
        let mut set = CheckSet::default();
        for (path, src) in files {
            set.add_file(path, src);
        }
        let (mut v, _) = set.run();
        v.sort_by(|a, b| (&a.path, a.line, a.column).cmp(&(&b.path, b.line, b.column)));
        v
    }

    #[test]
    fn transitive_panic_two_hops_cross_crate() {
        let v = run_set(&[
            (
                "crates/serve/src/http.rs",
                "use ripki_payload::json;\nfn respond(b: &[u8]) { json::encode(b); }\n",
            ),
            (
                "crates/payload/src/json.rs",
                "pub fn encode(b: &[u8]) { deep(b); }\nfn deep(b: &[u8]) { \
                 b.first().unwrap(); }\n",
            ),
        ]);
        // Two findings: the panic site in payload, the call site in serve.
        assert_eq!(v.len(), 2, "{v:?}");
        let panic_site = v
            .iter()
            .find(|x| x.path.contains("payload"))
            .expect("panic site");
        assert!(panic_site.message.contains("respond -> encode -> deep"));
        let call_site = v
            .iter()
            .find(|x| x.path.contains("serve"))
            .expect("call site");
        assert!(call_site.message.contains("reaches a panic site"));
    }

    #[test]
    fn unreachable_panic_outside_scope_is_clean() {
        let v = run_set(&[
            (
                "crates/serve/src/http.rs",
                "fn respond(b: &[u8]) -> usize { b.len() }\n",
            ),
            (
                "crates/payload/src/json.rs",
                "pub fn never_called(b: &[u8]) { b.first().unwrap(); }\n",
            ),
        ]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn reactor_blocking_two_hops_down() {
        let v = run_set(&[
            (
                "crates/serve/src/reactor.rs",
                "impl Reactor { pub fn turn(&mut self) -> bool { helper(); true } }\n\
                 fn helper() { ripki_par::throttle(); }\n",
            ),
            (
                "crates/par/src/lib.rs",
                "pub fn throttle() { std::thread::sleep(std::time::Duration::from_millis(1)); }\n",
            ),
        ]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "no-blocking");
        assert!(v[0].message.contains("Reactor::turn -> helper -> throttle"));
    }

    #[test]
    fn blessed_reactor_sites_are_not_traversed() {
        let v = run_set(&[(
            "crates/serve/src/reactor.rs",
            "impl Reactor { pub fn turn(&mut self) -> bool { \
             self.drain_wake_pipe(); poll_fds(); true } \
             fn drain_wake_pipe(&mut self) { self.pipe_reader.recv(); } }\n\
             fn poll_fds() { unsafe_poll_wait(); }\nfn unsafe_poll_wait() {}\n",
        )]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn lock_order_inversion_is_flagged_and_consistent_order_is_clean() {
        let inverted = run_set(&[(
            "crates/serve/src/view.rs",
            "pub struct A { alpha: Mutex<u8> }\npub struct B { beta: Mutex<u8> }\n\
             impl A { fn forward(&self, b: &B) { let _g = self.alpha.lock(); \
             let _h = b.beta.lock(); } }\n\
             impl B { fn backward(&self, a: &A) { let _g = self.beta.lock(); \
             let _h = a.alpha.lock(); } }\n",
        )]);
        assert_eq!(inverted.len(), 1, "{inverted:?}");
        assert_eq!(inverted[0].rule, "lock-order");
        assert!(inverted[0].message.contains("lock order inversion"));

        let consistent = run_set(&[(
            "crates/serve/src/view.rs",
            "pub struct A { alpha: Mutex<u8> }\npub struct B { beta: Mutex<u8> }\n\
             impl A { fn one(&self, b: &B) { let _g = self.alpha.lock(); \
             let _h = b.beta.lock(); } \
             fn two(&self, b: &B) { let _g = self.alpha.lock(); let _h = b.beta.lock(); } }\n",
        )]);
        assert!(consistent.is_empty(), "{consistent:?}");
    }

    #[test]
    fn scoped_guard_release_breaks_the_order_edge() {
        // The first lock is dropped (block closed) before the second is
        // taken: no edge, no inversion even against a reversed pair.
        let v = run_set(&[(
            "crates/serve/src/view.rs",
            "pub struct A { alpha: Mutex<u8> }\npub struct B { beta: Mutex<u8> }\n\
             impl A { fn forward(&self, b: &B) { { let _g = self.alpha.lock(); } \
             let _h = b.beta.lock(); } }\n\
             impl B { fn backward(&self, a: &A) { { let _g = self.beta.lock(); } \
             let _h = a.alpha.lock(); } }\n",
        )]);
        assert!(v.is_empty(), "{v:?}");
    }
}
