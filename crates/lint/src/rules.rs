//! The R1–R5 checks, evaluated over one file's token stream.
//!
//! Shared machinery first: test-region masking (rules exempt
//! `#[cfg(test)]` / `#[test]` items), the `// lint: allow(<rule>)`
//! escape hatch, and the comment-adjacency query R3 uses. Each check is
//! then a linear scan over the significant (non-comment) tokens.

use crate::catalog::{is_blessed_epoch_module, Rule};
use crate::lex::{tokenize, Token, TokenKind};
use crate::report::{AllowEntry, Violation};
use std::collections::BTreeSet;

/// Identifiers that can precede `[` without making it an index
/// expression (`&mut [T]`, `for x in [..]`, `return [..]`, …).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "as", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum", "fn",
    "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "static", "struct", "trait", "type", "unsafe", "use", "where", "while", "yield",
];

/// Tokens plus derived file-level facts the checks query.
struct FileView {
    /// Significant (non-comment) tokens in order.
    sig: Vec<Token>,
    /// Byte-true flag per significant token: inside a test item.
    in_test: Vec<bool>,
    /// For R5: inside a struct/enum/union/trait body or fn parameter
    /// list, where `name: Type` is declaration syntax, not a field write.
    in_decl: Vec<bool>,
    /// Lines that contain at least one comment token.
    comment_lines: BTreeSet<usize>,
    /// Lines that contain at least one significant token.
    code_lines: BTreeSet<usize>,
    /// Parsed `lint: allow(...)` comments by line.
    allows: Vec<ParsedAllow>,
    /// Syntactically broken allow comments (unknown rule id).
    bad_allows: Vec<(usize, String)>,
}

struct ParsedAllow {
    rule: Rule,
    line: usize,
    justification: String,
    used: std::cell::Cell<bool>,
}

/// Result of checking one file.
pub struct FileReport {
    /// Rule violations (allow-suppressed candidates excluded).
    pub violations: Vec<Violation>,
    /// Every allow-list entry found, with usage accounting.
    pub allows: Vec<AllowEntry>,
}

/// Run every applicable rule over `source` as `path` (workspace-relative,
/// `/`-separated).
pub fn check_file(path: &str, source: &str) -> FileReport {
    let view = FileView::build(source);
    let mut violations = Vec::new();

    for rule in crate::catalog::ALL_RULES {
        if rule.applies_to(path) {
            match rule {
                Rule::NoPanic => check_no_panic(&view, path, &mut violations),
                Rule::WallClock => check_wall_clock(&view, path, &mut violations),
                Rule::AtomicOrder => check_atomic_order(&view, path, &mut violations),
                Rule::PrintOutput => check_print_output(&view, path, &mut violations),
                Rule::EpochWrite => check_epoch_write(&view, path, &mut violations),
            }
        }
    }
    if is_blessed_epoch_module(path) {
        check_blessed_epoch_asserts(&view, path, &mut violations);
    }

    // Allow-list hygiene: unknown rule ids, missing justifications, and
    // entries that suppress nothing are themselves violations — the
    // escape hatch must stay audited.
    for (line, id) in &view.bad_allows {
        violations.push(Violation {
            rule: "allow-syntax".into(),
            path: path.into(),
            line: *line,
            column: 1,
            message: format!("allow comment names unknown rule `{id}`"),
        });
    }
    let mut allows = Vec::new();
    for allow in &view.allows {
        if allow.justification.is_empty() {
            violations.push(Violation {
                rule: allow.rule.id().into(),
                path: path.into(),
                line: allow.line,
                column: 1,
                message: format!(
                    "allow({}) entry has no written justification",
                    allow.rule.id()
                ),
            });
        } else if !allow.used.get() {
            violations.push(Violation {
                rule: allow.rule.id().into(),
                path: path.into(),
                line: allow.line,
                column: 1,
                message: format!(
                    "allow({}) entry suppresses nothing — remove the stale escape hatch",
                    allow.rule.id()
                ),
            });
        }
        allows.push(AllowEntry {
            rule: allow.rule.id().into(),
            path: path.into(),
            line: allow.line,
            justification: allow.justification.clone(),
            used: allow.used.get(),
        });
    }

    violations.sort_by_key(|a| (a.line, a.column));
    FileReport { violations, allows }
}

impl FileView {
    fn build(source: &str) -> FileView {
        let tokens = tokenize(source);
        let mut comment_lines = BTreeSet::new();
        let mut code_lines = BTreeSet::new();
        let mut allows = Vec::new();
        let mut bad_allows = Vec::new();
        let mut sig = Vec::new();
        for token in tokens {
            if token.is_comment() {
                comment_lines.insert(token.line);
                parse_allow_comment(&token, &mut allows, &mut bad_allows);
            } else {
                code_lines.insert(token.line);
                sig.push(token);
            }
        }
        let in_test = mask_test_items(&sig);
        let in_decl = mask_decl_positions(&sig);
        FileView {
            sig,
            in_test,
            in_decl,
            comment_lines,
            code_lines,
            allows,
            bad_allows,
        }
    }

    /// Is there a comment on `line`, or on the contiguous run of
    /// comment-only lines directly above it?
    fn has_adjacent_comment(&self, line: usize) -> bool {
        if self.comment_lines.contains(&line) {
            return true;
        }
        let mut l = line;
        while l > 1 {
            l -= 1;
            let has_comment = self.comment_lines.contains(&l);
            let has_code = self.code_lines.contains(&l);
            if has_comment && !has_code {
                return true;
            }
            if has_code || !has_comment {
                // A code line (or blank line) breaks the comment block.
                return false;
            }
        }
        false
    }

    /// Find an unused-or-used allow entry for `rule` adjacent to `line`
    /// (same line or the contiguous comment block directly above) and
    /// mark it used.
    fn consume_allow(&self, rule: Rule, line: usize) -> bool {
        let mut candidate_lines: Vec<usize> = vec![line];
        let mut l = line;
        while l > 1 {
            l -= 1;
            if self.comment_lines.contains(&l) && !self.code_lines.contains(&l) {
                candidate_lines.push(l);
            } else {
                break;
            }
        }
        for allow in &self.allows {
            if allow.rule == rule && candidate_lines.contains(&allow.line) {
                allow.used.set(true);
                return true;
            }
        }
        false
    }
}

fn parse_allow_comment(
    token: &Token,
    allows: &mut Vec<ParsedAllow>,
    bad: &mut Vec<(usize, String)>,
) {
    // A directive is a comment that *starts* with `lint: allow(…)` —
    // prose that merely mentions the syntax mid-sentence is not one.
    let body = token
        .text
        .trim_start_matches('/')
        .trim_start_matches('*')
        .trim_start_matches('!')
        .trim_start();
    let Some(rest) = body.strip_prefix("lint: allow(") else {
        return;
    };
    let Some(close) = rest.find(')') else {
        bad.push((token.line, rest.trim().to_string()));
        return;
    };
    let id = rest[..close].trim();
    let mut justification = rest[close + 1..].trim();
    justification = justification
        .trim_end_matches("*/")
        .trim_start_matches("--")
        .trim();
    match Rule::from_id(id) {
        Some(rule) => allows.push(ParsedAllow {
            rule,
            line: token.line,
            justification: justification.to_string(),
            used: std::cell::Cell::new(false),
        }),
        None => bad.push((token.line, id.to_string())),
    }
}

/// Mark every significant token inside a `#[cfg(test)]` or `#[test]`
/// item body. Attributes are matched structurally: `#` `[` … `]`, then
/// (skipping further attributes and item keywords) the region masked is
/// the braces of the item that follows.
fn mask_test_items(sig: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; sig.len()];
    let mut i = 0;
    while i < sig.len() {
        if sig[i].is_punct('#') && i + 1 < sig.len() && sig[i + 1].is_punct('[') {
            let Some(attr_end) = matching(sig, i + 1, '[', ']') else {
                break;
            };
            if attr_is_test(&sig[i + 2..attr_end]) {
                // Skip any further attributes between this one and the item.
                let mut j = attr_end + 1;
                while j + 1 < sig.len() && sig[j].is_punct('#') && sig[j + 1].is_punct('[') {
                    match matching(sig, j + 1, '[', ']') {
                        Some(e) => j = e + 1,
                        None => return mask,
                    }
                }
                // Mask to the end of the item: the matching `}` of the
                // first `{` before a terminating `;` at depth zero.
                let mut k = j;
                let mut done = false;
                while k < sig.len() && !done {
                    if sig[k].is_punct('{') {
                        let end = matching(sig, k, '{', '}').unwrap_or(sig.len() - 1);
                        for slot in mask.iter_mut().take(end + 1).skip(i) {
                            *slot = true;
                        }
                        i = end;
                        done = true;
                    } else if sig[k].is_punct(';') {
                        // `#[cfg(test)] use …;` — nothing to mask.
                        i = k;
                        done = true;
                    } else {
                        k += 1;
                    }
                }
            }
        }
        i += 1;
    }
    mask
}

/// Does the attribute body (tokens between `[` and `]`) gate on tests?
/// Matches `test`, `cfg(test)`, `cfg(any(test, …))`, `tokio::test`, ….
fn attr_is_test(body: &[Token]) -> bool {
    let mut i = 0;
    while i < body.len() {
        if body[i].is_ident("test") {
            return true;
        }
        if body[i].is_ident("cfg") {
            // Only a `test` ident *inside* the cfg predicate counts.
            if let Some(open) = body[i + 1..].first() {
                if open.is_punct('(') {
                    return body[i + 1..].iter().any(|t| t.is_ident("test"));
                }
            }
        }
        i += 1;
    }
    false
}

/// Mark tokens where `name: Type` is declaration syntax rather than a
/// struct-literal field write: struct/enum/union/trait bodies and `fn`
/// parameter lists.
fn mask_decl_positions(sig: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; sig.len()];
    let mut i = 0;
    while i < sig.len() {
        let tok = &sig[i];
        if tok.kind == TokenKind::Ident
            && matches!(tok.text.as_str(), "struct" | "enum" | "union" | "trait")
        {
            // Find the body `{` (or `(` for tuple structs, or `;`).
            let mut j = i + 1;
            while j < sig.len() {
                if sig[j].is_punct('{') {
                    if let Some(end) = matching(sig, j, '{', '}') {
                        for slot in mask.iter_mut().take(end + 1).skip(j) {
                            *slot = true;
                        }
                        i = end;
                    }
                    break;
                }
                if sig[j].is_punct('(') {
                    if let Some(end) = matching(sig, j, '(', ')') {
                        for slot in mask.iter_mut().take(end + 1).skip(j) {
                            *slot = true;
                        }
                        i = end;
                    }
                    break;
                }
                if sig[j].is_punct(';') {
                    i = j;
                    break;
                }
                j += 1;
            }
        } else if tok.is_ident("fn") {
            // Mask the parameter list.
            let mut j = i + 1;
            while j < sig.len() && !sig[j].is_punct('(') {
                j += 1;
            }
            if j < sig.len() {
                if let Some(end) = matching(sig, j, '(', ')') {
                    for slot in mask.iter_mut().take(end + 1).skip(j) {
                        *slot = true;
                    }
                    i = end;
                }
            }
        } else if tok.is_punct('|') && i > 0 && is_closure_open(&sig[i - 1]) {
            // Closure parameter list `|epoch: u64, …|` — annotations in
            // here are declarations, not writes. `|` opens a closure
            // when the preceding token cannot end an expression
            // (otherwise it is bitwise-or / pattern-or).
            let mut j = i + 1;
            while j < sig.len() && !sig[j].is_punct('|') {
                j += 1;
            }
            if j < sig.len() {
                for slot in mask.iter_mut().take(j + 1).skip(i) {
                    *slot = true;
                }
                i = j;
            }
        }
        i += 1;
    }
    mask
}

/// Can a `|` after this token open a closure parameter list? Yes when
/// the token cannot terminate an expression (after an operand, `|` is
/// bitwise-or or a pattern alternative instead).
fn is_closure_open(prev: &Token) -> bool {
    match prev.kind {
        TokenKind::Punct => matches!(
            prev.text.as_str(),
            "(" | "," | "{" | "=" | ";" | ":" | ">" | "&"
        ),
        TokenKind::Ident => matches!(prev.text.as_str(), "move" | "return" | "else"),
        _ => false,
    }
}

/// Index of the token closing the bracket opened at `open_idx`.
fn matching(sig: &[Token], open_idx: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0usize;
    for (i, tok) in sig.iter().enumerate().skip(open_idx) {
        if tok.is_punct(open) {
            depth += 1;
        } else if tok.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

fn emit(
    view: &FileView,
    rule: Rule,
    path: &str,
    token: &Token,
    message: String,
    out: &mut Vec<Violation>,
) {
    if view.consume_allow(rule, token.line) {
        return;
    }
    out.push(Violation {
        rule: rule.id().into(),
        path: path.into(),
        line: token.line,
        column: token.column,
        message,
    });
}

// ------------------------------------------------------------------ R1

fn check_no_panic(view: &FileView, path: &str, out: &mut Vec<Violation>) {
    let sig = &view.sig;
    for i in 0..sig.len() {
        if view.in_test[i] {
            continue;
        }
        let tok = &sig[i];
        // `.unwrap()` / `.expect(…)`
        if tok.kind == TokenKind::Ident
            && matches!(tok.text.as_str(), "unwrap" | "expect")
            && i > 0
            && sig[i - 1].is_punct('.')
            && sig.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            emit(
                view,
                Rule::NoPanic,
                path,
                tok,
                format!(
                    "`.{}()` on the panic-free path — return a typed error instead",
                    tok.text
                ),
                out,
            );
            continue;
        }
        // panic-family macros
        if tok.kind == TokenKind::Ident
            && matches!(
                tok.text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            )
            && sig.get(i + 1).is_some_and(|t| t.is_punct('!'))
        {
            emit(
                view,
                Rule::NoPanic,
                path,
                tok,
                format!("`{}!` on the panic-free path", tok.text),
                out,
            );
            continue;
        }
        // `expr[…]` indexing (can panic on out-of-range)
        if tok.is_punct('[') && i > 0 {
            let prev = &sig[i - 1];
            let indexes = match prev.kind {
                TokenKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text.as_str()),
                TokenKind::Punct => prev.is_punct(')') || prev.is_punct(']'),
                _ => false,
            };
            if indexes {
                emit(
                    view,
                    Rule::NoPanic,
                    path,
                    tok,
                    "`[…]` indexing can panic — use `.get(…)`/`split_at_checked` or justify"
                        .to_string(),
                    out,
                );
            }
        }
    }
}

// ------------------------------------------------------------------ R2

fn check_wall_clock(view: &FileView, path: &str, out: &mut Vec<Violation>) {
    let sig = &view.sig;
    for i in 3..sig.len() {
        if view.in_test[i] {
            continue;
        }
        if sig[i].is_ident("now")
            && sig[i - 1].is_punct(':')
            && sig[i - 2].is_punct(':')
            && sig[i - 3].kind == TokenKind::Ident
            && matches!(sig[i - 3].text.as_str(), "Instant" | "SystemTime")
        {
            emit(
                view,
                Rule::WallClock,
                path,
                &sig[i],
                format!(
                    "`{}::now()` outside ripki_rpki::time — take the clock as a parameter",
                    sig[i - 3].text
                ),
                out,
            );
        }
    }
}

// ------------------------------------------------------------------ R3

fn check_atomic_order(view: &FileView, path: &str, out: &mut Vec<Violation>) {
    let sig = &view.sig;
    for i in 3..sig.len() {
        if view.in_test[i] {
            continue;
        }
        if sig[i].kind == TokenKind::Ident
            && matches!(
                sig[i].text.as_str(),
                "Relaxed" | "Acquire" | "Release" | "AcqRel"
            )
            && sig[i - 1].is_punct(':')
            && sig[i - 2].is_punct(':')
            && sig[i - 3].is_ident("Ordering")
        {
            if view.has_adjacent_comment(sig[i].line) {
                continue;
            }
            emit(
                view,
                Rule::AtomicOrder,
                path,
                &sig[i],
                format!(
                    "`Ordering::{}` without a same-line or preceding justification comment",
                    sig[i].text
                ),
                out,
            );
        }
    }
}

// ------------------------------------------------------------------ R4

fn check_print_output(view: &FileView, path: &str, out: &mut Vec<Violation>) {
    let sig = &view.sig;
    for i in 0..sig.len() {
        if view.in_test[i] {
            continue;
        }
        if sig[i].kind == TokenKind::Ident
            && matches!(
                sig[i].text.as_str(),
                "println" | "eprintln" | "print" | "eprint" | "dbg"
            )
            && sig.get(i + 1).is_some_and(|t| t.is_punct('!'))
        {
            emit(
                view,
                Rule::PrintOutput,
                path,
                &sig[i],
                format!(
                    "`{}!` in a library crate — report through return values",
                    sig[i].text
                ),
                out,
            );
        }
    }
}

// ------------------------------------------------------------------ R5

const EPOCH_FIELDS: &[&str] = &["epoch", "from_epoch", "to_epoch"];

fn check_epoch_write(view: &FileView, path: &str, out: &mut Vec<Violation>) {
    let sig = &view.sig;
    for i in 0..sig.len() {
        if view.in_test[i] || view.in_decl[i] {
            continue;
        }
        let tok = &sig[i];
        if tok.kind != TokenKind::Ident || !EPOCH_FIELDS.contains(&tok.text.as_str()) {
            continue;
        }
        // Struct-literal field init: `epoch: value` (not a `::` path,
        // not preceded by one either).
        let field_init = sig.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && !sig.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && !(i > 0 && sig[i - 1].is_punct(':'));
        // Assignment through a place expression: `x.epoch = …` / `+=`.
        let assigned = i > 0
            && sig[i - 1].is_punct('.')
            && match (sig.get(i + 1), sig.get(i + 2)) {
                (Some(eq), Some(after)) if eq.is_punct('=') => {
                    !after.is_punct('=') && !after.is_punct('>')
                }
                (Some(op), Some(eq)) if eq.is_punct('=') => op.is_punct('+') || op.is_punct('-'),
                _ => false,
            };
        if field_init || assigned {
            emit(
                view,
                Rule::EpochWrite,
                path,
                tok,
                format!(
                    "`{}` written outside the blessed engine module — epochs must move \
                     through the asserting constructors",
                    tok.text
                ),
                out,
            );
        }
    }
}

/// The blessed module's side of the R5 bargain: its non-test code must
/// actually carry an epoch assertion.
fn check_blessed_epoch_asserts(view: &FileView, path: &str, out: &mut Vec<Violation>) {
    let sig = &view.sig;
    for i in 0..sig.len() {
        if view.in_test[i] {
            continue;
        }
        if sig[i].kind == TokenKind::Ident
            && sig[i].text.starts_with("assert")
            && sig.get(i + 1).is_some_and(|t| t.is_punct('!'))
        {
            // Look inside the macro call for an epoch-ish identifier.
            if let Some(open) = sig[i + 1..].iter().position(|t| t.is_punct('(')) {
                if let Some(end) = matching(sig, i + 1 + open, '(', ')') {
                    if sig[i..=end]
                        .iter()
                        .any(|t| t.kind == TokenKind::Ident && t.text.contains("epoch"))
                    {
                        return; // contract upheld
                    }
                }
            }
        }
    }
    out.push(Violation {
        rule: Rule::EpochWrite.id().into(),
        path: path.into(),
        line: 1,
        column: 1,
        message: "blessed epoch module carries no epoch monotonicity assertion".into(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    const SERVE_PATH: &str = "crates/serve/src/http.rs";

    fn violations(path: &str, src: &str) -> Vec<Violation> {
        check_file(path, src).violations
    }

    #[test]
    fn unwrap_on_request_path_is_flagged() {
        let v = violations(SERVE_PATH, "fn f(x: Option<u8>) -> u8 { x.unwrap() }");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-panic");
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn unwrap_in_test_mod_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n fn f(x: Option<u8>) { x.unwrap(); }\n}\n";
        assert!(violations(SERVE_PATH, src).is_empty());
    }

    #[test]
    fn unwrap_outside_scope_is_not_flagged() {
        let v = violations(
            "crates/dns/src/zone.rs",
            "fn f(x: Option<u8>) { x.unwrap(); }",
        );
        assert!(v.is_empty());
    }

    #[test]
    fn allow_comment_suppresses_and_is_counted() {
        let src = "fn f(b: &[u8]) -> u8 {\n    // lint: allow(no-panic) caller checked len\n    b[0]\n}\n";
        let report = check_file(SERVE_PATH, src);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert_eq!(report.allows.len(), 1);
        assert!(report.allows[0].used);
        assert_eq!(report.allows[0].justification, "caller checked len");
    }

    #[test]
    fn allow_without_justification_is_a_violation() {
        let src = "fn f(b: &[u8]) -> u8 {\n    b[0] // lint: allow(no-panic)\n}\n";
        let report = check_file(SERVE_PATH, src);
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0]
            .message
            .contains("no written justification"));
    }

    #[test]
    fn stale_allow_is_a_violation() {
        let src = "// lint: allow(no-panic) nothing here anymore\nfn f() {}\n";
        let report = check_file(SERVE_PATH, src);
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].message.contains("suppresses nothing"));
    }

    #[test]
    fn indexing_is_flagged_but_types_are_not() {
        let src = "fn f(b: &[u8], i: usize) -> u8 { let _a: [u8; 4] = [0; 4]; b[i] }";
        let v = violations(SERVE_PATH, src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("indexing"));
    }

    #[test]
    fn wall_clock_flagged_outside_time_module() {
        let src = "fn f() { let _ = std::time::Instant::now(); }";
        assert_eq!(violations("crates/ripki/src/stats.rs", src).len(), 1);
        assert!(violations("crates/rpki/src/time.rs", src).is_empty());
        assert!(violations("crates/cli/src/lib.rs", src).is_empty());
    }

    #[test]
    fn ordering_needs_a_comment() {
        let bare = "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }";
        let same_line =
            "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); // independent counter\n }";
        let above = "fn f(c: &AtomicU64) {\n    // independent counter\n    c.fetch_add(1, Ordering::Relaxed);\n}";
        let path = "crates/dns/src/cache.rs";
        assert_eq!(violations(path, bare).len(), 1);
        assert!(violations(path, same_line).is_empty());
        assert!(violations(path, above).is_empty());
        // SeqCst is the conservative default and never flagged.
        let seqcst = "fn f(c: &AtomicU64) { c.load(Ordering::SeqCst); }";
        assert!(violations(path, seqcst).is_empty());
    }

    #[test]
    fn cmp_ordering_is_not_atomic_ordering() {
        let src = "fn f() -> std::cmp::Ordering { std::cmp::Ordering::Less }";
        assert!(violations("crates/dns/src/cache.rs", src).is_empty());
    }

    #[test]
    fn println_in_library_flagged() {
        let src = "fn f() { println!(\"hi\"); }";
        assert_eq!(violations("crates/ripki/src/stats.rs", src).len(), 1);
        assert!(violations("crates/cli/src/main.rs", src).is_empty());
    }

    #[test]
    fn epoch_write_outside_engine_flagged() {
        let literal = "fn f(e: u64) -> Delta { Delta { from_epoch: e, payload: 0 } }";
        let assign = "fn f(r: &mut Results) { r.epoch = 9; }";
        let path = "crates/serve/src/view.rs";
        assert_eq!(violations(path, literal).len(), 1);
        assert_eq!(violations(path, assign).len(), 1);
    }

    #[test]
    fn epoch_declarations_are_not_writes() {
        let decl = "pub struct Delta { pub from_epoch: u64, pub to_epoch: u64 }";
        let param = "fn stamp(epoch: u64) -> u64 { epoch }";
        let path = "crates/serve/src/view.rs";
        assert!(violations(path, decl).is_empty(), "struct decl");
        assert!(violations(path, param).is_empty(), "fn param");
        // Closure parameter annotations are declarations too.
        let closure = "fn f() { let g = |epoch: u64, n: usize| epoch + n as u64; g(1, 2); }";
        assert!(violations(path, closure).is_empty(), "closure param");
        // Reads and comparisons are free.
        let read = "fn f(r: &Results) -> bool { r.epoch == 4 && r.epoch >= 2 }";
        assert!(violations(path, read).is_empty(), "reads");
    }

    #[test]
    fn slurm_epoch_writes_blessed_under_its_assert() {
        // The fixture mirrors ripki-slurm's delta mapping: epochs
        // copied verbatim into a struct literal, guarded by the
        // module's own forward-motion assertion.
        let shift = "fn shift(d: Delta, off: u64) -> Delta {\n\
                     \x20   assert!(d.to_epoch > d.from_epoch, \"forward\");\n\
                     \x20   Delta { from_epoch: d.from_epoch + off, to_epoch: d.to_epoch + off }\n\
                     }";
        assert!(
            violations("crates/slurm/src/lib.rs", shift).is_empty(),
            "slurm is a blessed epoch module"
        );
        // The same writes anywhere else stay violations.
        assert_eq!(violations("crates/proxy/src/units.rs", shift).len(), 2);
        // And the blessing is a bargain: drop the assert and the slurm
        // module itself gets flagged.
        let unguarded =
            "fn shift(d: Delta) -> Delta { Delta { from_epoch: d.from_epoch, to_epoch: 0 } }";
        let v = violations("crates/slurm/src/lib.rs", unguarded);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("monotonicity assertion"));
    }

    #[test]
    fn blessed_module_must_assert() {
        let good = "fn publish(old: u64, new_epoch: u64) { assert!(new_epoch > old, \"epoch\"); }";
        let bad = "fn publish(e: u64) -> u64 { e + 1 }";
        assert!(violations("crates/ripki/src/engine.rs", good).is_empty());
        let v = violations("crates/ripki/src/engine.rs", bad);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("monotonicity assertion"));
    }
}
