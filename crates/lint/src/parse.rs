//! A recursive-descent item-tree parser over the [`crate::lex`] token
//! stream.
//!
//! The offline build has no `syn`, so this is a purpose-built parser:
//! it recovers exactly the structure the rule catalog needs — modules,
//! functions (with their `impl`/`trait` owner and `#[cfg(test)]`
//! masking), `use` declarations, lock-typed struct fields — and distils
//! each function body into a flat stream of [`Op`]s (calls, method
//! calls, macro uses, index expressions, atomic-ordering mentions,
//! epoch field writes, block open/close markers). Everything the rules
//! and the call graph ask is answered from this tree, so string
//! literals, comments, and doc examples can never false-positive: they
//! were never tokens to begin with, and test items are masked at item
//! granularity rather than by brace-counting heuristics.
//!
//! The parser is deliberately tolerant: unknown constructs advance one
//! token, unterminated groups end at EOF. A lint tool must degrade on
//! weird-but-compiling code, not crash.

use crate::lex::{Token, TokenKind};

/// One parsed source file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Every function (and function-like initializer) with its body ops.
    pub fns: Vec<FnDef>,
    /// Flattened `use` declarations: binding name → full path.
    pub uses: Vec<UseDecl>,
    /// Struct fields typed `Mutex<…>` / `RwLock<…>` — the lock set R7
    /// orders.
    pub lock_fields: Vec<LockField>,
}

/// One `use` binding after tree flattening: `use a::b::{c as d};`
/// yields `name: "d", path: ["a","b","c"]`; a glob import yields
/// `name: "*"` with the module path.
#[derive(Debug, Clone)]
pub struct UseDecl {
    /// The name the import binds in this file (`*` for globs).
    pub name: String,
    /// Full path segments, including the final one.
    pub path: Vec<String>,
}

/// A struct field holding a lock.
#[derive(Debug, Clone)]
pub struct LockField {
    /// The struct that owns the field.
    pub owner: String,
    /// Field name.
    pub field: String,
    /// `Mutex` or `RwLock` — decides which acquisition methods count.
    pub kind: LockKind,
}

/// Which lock primitive a field holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    /// `std::sync::Mutex` — acquired by `.lock()`.
    Mutex,
    /// `std::sync::RwLock` — acquired by `.read()` / `.write()`.
    RwLock,
}

/// One function definition (or const/static initializer, which gets a
/// synthetic `FnDef` so top-level expressions are still checked).
#[derive(Debug)]
pub struct FnDef {
    /// Function name (const/static items keep their item name).
    pub name: String,
    /// Inline-module chain within the file (`mod a { mod b { … } }` →
    /// `["a","b"]`).
    pub module: Vec<String>,
    /// `impl Type { … }` / `trait Type { … }` owner, if any.
    pub impl_type: Option<String>,
    /// Under `#[cfg(test)]` / `#[test]` (directly or via an enclosing
    /// module) — rules skip these.
    pub is_test: bool,
    /// 1-based position of the `fn` name token.
    pub line: usize,
    /// 1-based byte column of the `fn` name token.
    pub column: usize,
    /// The distilled body.
    pub ops: Vec<Op>,
}

/// Receiver shape of a method call, as far as tokens reveal it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Recv {
    /// `self.method()`.
    SelfRecv,
    /// `self.field.method()` (possibly deeper: the *last* field name).
    Field(String),
    /// `ident.method()` on a local/param.
    Var(String),
    /// Anything else (`expr().method()`, chains, literals).
    Expr,
}

/// One body event, in source order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// `a::b::f(…)` — path segments as written (turbofish stripped).
    Call {
        /// Path segments.
        path: Vec<String>,
        /// Position of the final segment.
        line: usize,
        /// Byte column of the final segment.
        column: usize,
    },
    /// `recv.name(…)`.
    Method {
        /// Method name.
        name: String,
        /// Receiver shape.
        recv: Recv,
        /// Position of the method name.
        line: usize,
        /// Byte column of the method name.
        column: usize,
    },
    /// `name!(…)` — body tokens still scanned for nested ops.
    MacroUse {
        /// Macro name.
        name: String,
        /// For `assert*!`: did the argument list mention an epoch-ish
        /// identifier? (R5's blessed-module contract.)
        epoch_assert: bool,
        /// Position of the macro name.
        line: usize,
        /// Byte column of the macro name.
        column: usize,
    },
    /// `expr[…]` indexing.
    Index {
        /// Position of the `[`.
        line: usize,
        /// Byte column of the `[`.
        column: usize,
    },
    /// `Ordering::Relaxed` and friends (never `cmp::Ordering`
    /// variants — only the four atomic names are recorded).
    OrderingUse {
        /// `Relaxed` / `Acquire` / `Release` / `AcqRel`.
        name: String,
        /// Position of the variant name.
        line: usize,
        /// Byte column of the variant name.
        column: usize,
    },
    /// An epoch-bearing field written: struct-literal init or
    /// place-expression assignment.
    FieldWrite {
        /// The field (`epoch` / `from_epoch` / `to_epoch`).
        name: String,
        /// Position of the field name.
        line: usize,
        /// Byte column of the field name.
        column: usize,
    },
    /// `{` — scopes lock guards for R7.
    BlockOpen,
    /// `}`.
    BlockClose,
}

/// Keywords that cannot be call-path segments or index-expression
/// bases.
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "static", "struct", "trait", "true", "type", "unsafe", "use",
    "where", "while", "yield",
];

/// Epoch-bearing fields R5 guards.
pub const EPOCH_FIELDS: &[&str] = &["epoch", "from_epoch", "to_epoch"];

/// Parse one file's significant-token stream (comments already
/// stripped) into its item tree.
pub fn parse_file(sig: &[Token]) -> ParsedFile {
    let mut parser = Parser {
        toks: sig,
        pos: 0,
        out: ParsedFile::default(),
    };
    parser.items(&mut Vec::new(), None, false);
    parser.out
}

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
    out: ParsedFile,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&'a Token> {
        self.toks.get(self.pos)
    }

    fn peek_at(&self, offset: usize) -> Option<&'a Token> {
        self.toks.get(self.pos + offset)
    }

    fn bump(&mut self) -> Option<&'a Token> {
        let t = self.toks.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Skip a balanced group opened by the token at `self.pos` (which
    /// must be `open`). Leaves the cursor after the matching close;
    /// unterminated groups end at EOF.
    fn skip_group(&mut self, open: char, close: char) {
        let mut depth = 0usize;
        while let Some(t) = self.bump() {
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    return;
                }
            }
        }
    }

    /// Skip a generics group `<…>` starting at the current `<`. `>`
    /// that is part of `->` does not close (closure/Fn bounds inside
    /// generics carry arrows).
    fn skip_generics(&mut self) {
        let mut depth = 0usize;
        let mut prev_minus = false;
        while let Some(t) = self.bump() {
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') && !prev_minus {
                depth -= 1;
                if depth == 0 {
                    return;
                }
            }
            prev_minus = t.is_punct('-');
        }
    }

    /// Item loop for one brace scope (file, inline module, impl/trait
    /// body).
    fn items(&mut self, module: &mut Vec<String>, impl_type: Option<&str>, in_test: bool) {
        loop {
            // Per-item attribute run, tracking test gating.
            let mut item_test = in_test;
            loop {
                let Some(t) = self.peek() else { return };
                if t.is_punct('}') {
                    self.bump();
                    return;
                }
                if t.is_punct('#') {
                    self.bump();
                    // Inner attribute `#![…]` or outer `#[…]`.
                    if self.peek().is_some_and(|t| t.is_punct('!')) {
                        self.bump();
                    }
                    if self.peek().is_some_and(|t| t.is_punct('[')) {
                        let start = self.pos;
                        self.skip_group('[', ']');
                        if attr_is_test(&self.toks[start..self.pos]) {
                            item_test = true;
                        }
                    }
                    continue;
                }
                break;
            }
            // Visibility / qualifier prefix.
            while let Some(t) = self.peek() {
                match t.text.as_str() {
                    "pub" => {
                        self.bump();
                        if self.peek().is_some_and(|t| t.is_punct('(')) {
                            self.skip_group('(', ')');
                        }
                    }
                    "unsafe" | "async" | "default" => {
                        self.bump();
                    }
                    "extern"
                        if self
                            .peek_at(1)
                            .is_some_and(|t| t.kind == TokenKind::Literal) =>
                    {
                        // `extern "C" fn` qualifier or `extern "C" { … }`
                        // block — consume the ABI string, decide below.
                        self.bump();
                        self.bump();
                    }
                    _ => break,
                }
            }
            let Some(t) = self.peek() else { return };
            match t.text.as_str() {
                "use" => {
                    self.bump();
                    self.parse_use();
                }
                "mod" => {
                    self.bump();
                    let name = self.bump().map(|t| t.text.clone()).unwrap_or_default();
                    match self.peek() {
                        Some(t) if t.is_punct('{') => {
                            self.bump();
                            module.push(name);
                            self.items(module, impl_type, item_test);
                            module.pop();
                        }
                        _ => {
                            // `mod name;` — a file module, listed by the
                            // workspace walk on its own.
                            self.skip_to_semi();
                        }
                    }
                }
                "fn" => {
                    self.bump();
                    self.parse_fn(module, impl_type, item_test);
                }
                "impl" => {
                    self.bump();
                    let ty = self.parse_impl_header();
                    if self.peek().is_some_and(|t| t.is_punct('{')) {
                        self.bump();
                        self.items(module, ty.as_deref(), item_test);
                    }
                }
                "trait" => {
                    self.bump();
                    let name = self.bump().map(|t| t.text.clone()).unwrap_or_default();
                    // Skip generics / bounds up to the body.
                    while let Some(t) = self.peek() {
                        if t.is_punct('{') {
                            self.bump();
                            self.items(module, Some(&name), item_test);
                            break;
                        }
                        if t.is_punct(';') {
                            self.bump();
                            break;
                        }
                        if t.is_punct('<') {
                            self.skip_generics();
                        } else {
                            self.bump();
                        }
                    }
                }
                "struct" => {
                    self.bump();
                    self.parse_struct();
                }
                "enum" | "union" => {
                    self.bump();
                    self.skip_to_body_or_semi();
                }
                "const" | "static" => {
                    // `const fn` was already handled by the qualifier
                    // loop? No — `const` is consumed here; check for fn.
                    self.bump();
                    if self.peek().is_some_and(|t| t.is_ident("fn")) {
                        self.bump();
                        self.parse_fn(module, impl_type, item_test);
                    } else if self.peek().is_some_and(|t| t.is_ident("mut")) {
                        self.bump();
                        self.parse_const(module, impl_type, item_test);
                    } else {
                        self.parse_const(module, impl_type, item_test);
                    }
                }
                "type" => {
                    self.bump();
                    self.skip_to_semi();
                }
                "macro_rules" => {
                    // `macro_rules! name { … }` — token soup, skip it
                    // entirely so rule patterns never fire inside.
                    self.bump();
                    if self.peek().is_some_and(|t| t.is_punct('!')) {
                        self.bump();
                    }
                    self.bump(); // the macro name
                    if self.peek().is_some_and(|t| t.is_punct('{')) {
                        self.skip_group('{', '}');
                    } else {
                        self.skip_to_semi();
                    }
                }
                "extern" => {
                    // `extern { … }` foreign block (ABI string already
                    // eaten above when present): declarations only.
                    self.bump();
                    if self.peek().is_some_and(|t| t.kind == TokenKind::Literal) {
                        self.bump();
                    }
                    if self.peek().is_some_and(|t| t.is_punct('{')) {
                        self.skip_group('{', '}');
                    }
                }
                _ => {
                    // `extern "C" { … }` whose `extern`+ABI were eaten
                    // by the qualifier loop lands here on `{`.
                    if t.is_punct('{') {
                        self.skip_group('{', '}');
                    } else {
                        self.bump();
                    }
                }
            }
        }
    }

    fn skip_to_semi(&mut self) {
        while let Some(t) = self.bump() {
            if t.is_punct(';') {
                return;
            }
            if t.is_punct('{') {
                // Shouldn't happen mid-`use`, but never run away.
                self.pos -= 1;
                self.skip_group('{', '}');
            }
        }
    }

    fn skip_to_body_or_semi(&mut self) {
        while let Some(t) = self.peek() {
            if t.is_punct('{') {
                self.skip_group('{', '}');
                return;
            }
            if t.is_punct(';') {
                self.bump();
                return;
            }
            if t.is_punct('<') {
                self.skip_generics();
            } else {
                self.bump();
            }
        }
    }

    /// `use a::b::{c, d as e, f::*};` → flattened [`UseDecl`]s.
    fn parse_use(&mut self) {
        let mut prefix: Vec<String> = Vec::new();
        self.parse_use_tree(&mut prefix);
        if self.peek().is_some_and(|t| t.is_punct(';')) {
            self.bump();
        }
    }

    fn parse_use_tree(&mut self, prefix: &mut Vec<String>) {
        let depth_at_entry = prefix.len();
        loop {
            let Some(t) = self.peek() else { return };
            if t.is_punct(';') || t.is_punct(',') || t.is_punct('}') {
                // A path ending without `as` binds its last segment.
                if prefix.len() > depth_at_entry || depth_at_entry > 0 {
                    if let Some(last) = prefix.last().cloned() {
                        let name = if last == "self" {
                            prefix.pop();
                            prefix.last().cloned().unwrap_or_default()
                        } else {
                            last
                        };
                        if !name.is_empty() {
                            self.out.uses.push(UseDecl {
                                name,
                                path: prefix.clone(),
                            });
                        }
                    }
                }
                prefix.truncate(depth_at_entry);
                return;
            }
            if t.kind == TokenKind::Ident && t.text == "as" {
                self.bump();
                let alias = self.bump().map(|t| t.text.clone()).unwrap_or_default();
                self.out.uses.push(UseDecl {
                    name: alias,
                    path: prefix.clone(),
                });
                prefix.truncate(depth_at_entry);
                // Consume nothing further; terminator handled above.
                continue;
            }
            if t.kind == TokenKind::Ident {
                prefix.push(t.text.clone());
                self.bump();
                continue;
            }
            if t.is_punct(':') {
                self.bump();
                if self.peek().is_some_and(|t| t.is_punct(':')) {
                    self.bump();
                }
                continue;
            }
            if t.is_punct('*') {
                self.bump();
                self.out.uses.push(UseDecl {
                    name: "*".into(),
                    path: prefix.clone(),
                });
                prefix.truncate(depth_at_entry);
                continue;
            }
            if t.is_punct('{') {
                self.bump();
                loop {
                    match self.peek() {
                        Some(t) if t.is_punct('}') => {
                            self.bump();
                            break;
                        }
                        Some(t) if t.is_punct(',') => {
                            self.bump();
                        }
                        Some(_) => self.parse_use_tree(prefix),
                        None => break,
                    }
                }
                prefix.truncate(depth_at_entry);
                // After a brace group the tree is complete up to the
                // terminator.
                continue;
            }
            // Anything else (stray punctuation): advance.
            self.bump();
        }
    }

    /// After `impl`: `impl<T> Trait for Type<T> { … }` → `Some("Type")`.
    fn parse_impl_header(&mut self) -> Option<String> {
        if self.peek().is_some_and(|t| t.is_punct('<')) {
            self.skip_generics();
        }
        let mut last_ident: Option<String> = None;
        let mut after_for: Option<String> = None;
        let mut saw_for = false;
        while let Some(t) = self.peek() {
            if t.is_punct('{') || t.is_punct(';') {
                break;
            }
            if t.is_punct('<') {
                self.skip_generics();
                continue;
            }
            if t.kind == TokenKind::Ident && t.text == "for" {
                saw_for = true;
                self.bump();
                continue;
            }
            if t.kind == TokenKind::Ident && t.text == "where" {
                // Bounds until the body; idents in here are not the type.
                while let Some(t) = self.peek() {
                    if t.is_punct('{') || t.is_punct(';') {
                        break;
                    }
                    if t.is_punct('<') {
                        self.skip_generics();
                    } else {
                        self.bump();
                    }
                }
                continue;
            }
            if t.kind == TokenKind::Ident && !KEYWORDS.contains(&t.text.as_str()) {
                if saw_for {
                    after_for = Some(t.text.clone());
                } else {
                    last_ident = Some(t.text.clone());
                }
            }
            self.bump();
        }
        after_for.or(last_ident)
    }

    /// After `struct`: record lock-typed fields, skip the rest.
    fn parse_struct(&mut self) {
        let name = self.bump().map(|t| t.text.clone()).unwrap_or_default();
        loop {
            let Some(t) = self.peek() else { return };
            if t.is_punct('<') {
                self.skip_generics();
                continue;
            }
            if t.is_punct(';') {
                self.bump();
                return;
            }
            if t.is_punct('(') {
                self.skip_group('(', ')');
                continue;
            }
            if t.is_punct('{') {
                let start = self.pos;
                self.skip_group('{', '}');
                self.scan_struct_fields(&name, start + 1, self.pos.saturating_sub(1));
                return;
            }
            self.bump();
        }
    }

    /// Scan a struct body token range for `field: Mutex<…>` /
    /// `field: RwLock<…>` declarations (possibly behind `Arc<…>` — an
    /// `Arc<Mutex<…>>` field is still a lock the struct owns).
    fn scan_struct_fields(&mut self, owner: &str, start: usize, end: usize) {
        let toks = &self.toks[start.min(end)..end];
        let mut i = 0;
        while i + 2 < toks.len() {
            let is_field = toks[i].kind == TokenKind::Ident
                && toks[i + 1].is_punct(':')
                && !toks[i + 2].is_punct(':');
            if is_field {
                // Look ahead through the type tokens (to the next
                // top-level comma) for a lock head.
                let mut depth = 0usize;
                let mut j = i + 2;
                while j < toks.len() {
                    let t = &toks[j];
                    if t.is_punct('<') {
                        depth += 1;
                    } else if t.is_punct('>') {
                        depth = depth.saturating_sub(1);
                    } else if t.is_punct(',') && depth == 0 {
                        break;
                    } else if t.kind == TokenKind::Ident {
                        let kind = match t.text.as_str() {
                            "Mutex" => Some(LockKind::Mutex),
                            "RwLock" => Some(LockKind::RwLock),
                            _ => None,
                        };
                        if let Some(kind) = kind {
                            self.out.lock_fields.push(LockField {
                                owner: owner.to_string(),
                                field: toks[i].text.clone(),
                                kind,
                            });
                            break;
                        }
                    }
                    j += 1;
                }
                i = j;
            } else {
                i += 1;
            }
        }
    }

    /// After `const`/`static` (and optional `mut`): synthesize a
    /// [`FnDef`] from the initializer expression so `Ordering::` uses
    /// and epoch writes in top-level items are still seen.
    fn parse_const(&mut self, module: &[String], impl_type: Option<&str>, in_test: bool) {
        let Some(name_tok) = self.bump() else { return };
        let (name, line, column) = (name_tok.text.clone(), name_tok.line, name_tok.column);
        // Type: from `:` to the `=` (or `;` for const declarations in
        // traits), at bracket depth zero.
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            if depth == 0 && t.is_punct('=') {
                self.bump();
                break;
            }
            if depth == 0 && t.is_punct(';') {
                self.bump();
                return;
            }
            match () {
                () if t.is_punct('[') || t.is_punct('(') => depth += 1,
                () if t.is_punct(']') || t.is_punct(')') => depth -= 1,
                () if t.is_punct('<') => {
                    self.skip_generics();
                    continue;
                }
                () => {}
            }
            self.bump();
        }
        let start = self.pos;
        // Initializer runs to the `;` at depth zero.
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            if depth == 0 && t.is_punct(';') {
                break;
            }
            match () {
                () if t.is_punct('[') || t.is_punct('(') || t.is_punct('{') => depth += 1,
                () if t.is_punct(']') || t.is_punct(')') || t.is_punct('}') => depth -= 1,
                () => {}
            }
            self.bump();
        }
        let ops = extract_ops(&self.toks[start..self.pos]);
        if self.peek().is_some_and(|t| t.is_punct(';')) {
            self.bump();
        }
        self.out.fns.push(FnDef {
            name,
            module: module.to_vec(),
            impl_type: impl_type.map(str::to_string),
            is_test: in_test,
            line,
            column,
            ops,
        });
    }

    /// After `fn`: name, generics, params, return type, body.
    fn parse_fn(&mut self, module: &[String], impl_type: Option<&str>, in_test: bool) {
        let Some(name_tok) = self.bump() else { return };
        let (name, line, column) = (name_tok.text.clone(), name_tok.line, name_tok.column);
        if self.peek().is_some_and(|t| t.is_punct('<')) {
            self.skip_generics();
        }
        if self.peek().is_some_and(|t| t.is_punct('(')) {
            self.skip_group('(', ')');
        }
        // Return type / where clause: to the body `{` or a `;`
        // (trait/extern declaration), skipping bracketed groups so
        // `-> [u8; 4]` or `-> impl Fn() -> T` cannot derail.
        loop {
            let Some(t) = self.peek() else { return };
            if t.is_punct('{') {
                break;
            }
            if t.is_punct(';') {
                self.bump();
                return; // declaration only — no body, no ops
            }
            if t.is_punct('<') {
                self.skip_generics();
            } else if t.is_punct('(') {
                self.skip_group('(', ')');
            } else if t.is_punct('[') {
                self.skip_group('[', ']');
            } else {
                self.bump();
            }
        }
        let start = self.pos;
        self.skip_group('{', '}');
        // Body ops exclude the outer braces (they would add a spurious
        // block level).
        let ops = extract_ops(&self.toks[start + 1..self.pos.saturating_sub(1)]);
        self.out.fns.push(FnDef {
            name,
            module: module.to_vec(),
            impl_type: impl_type.map(str::to_string),
            is_test: in_test,
            line,
            column,
            ops,
        });
    }
}

/// Does an attribute body (tokens from `[` to `]` inclusive) gate on
/// tests? Matches `#[test]`, `#[cfg(test)]`, `#[cfg(any(test,…))]`,
/// `#[tokio::test]`, ….
fn attr_is_test(body: &[Token]) -> bool {
    let mut i = 0;
    while i < body.len() {
        if body[i].is_ident("test") {
            return true;
        }
        if body[i].is_ident("cfg") {
            if let Some(open) = body.get(i + 1) {
                if open.is_punct('(') {
                    return body[i + 1..].iter().any(|t| t.is_ident("test"));
                }
            }
        }
        i += 1;
    }
    false
}

/// Distil a body token slice into [`Op`]s.
pub fn extract_ops(toks: &[Token]) -> Vec<Op> {
    let mut ops = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        match t.kind {
            TokenKind::Punct if t.is_punct('{') => {
                ops.push(Op::BlockOpen);
                i += 1;
            }
            TokenKind::Punct if t.is_punct('}') => {
                ops.push(Op::BlockClose);
                i += 1;
            }
            TokenKind::Punct if t.is_punct('[') => {
                // `expr[…]` indexing: the previous token ends an
                // operand. Attribute bodies were consumed at item level;
                // array literals/types follow `=`/`:`/operators and are
                // excluded by the operand test.
                let indexes = i > 0
                    && match toks[i - 1].kind {
                        TokenKind::Ident => !KEYWORDS.contains(&toks[i - 1].text.as_str()),
                        TokenKind::Punct => toks[i - 1].is_punct(')') || toks[i - 1].is_punct(']'),
                        _ => false,
                    };
                if indexes {
                    ops.push(Op::Index {
                        line: t.line,
                        column: t.column,
                    });
                }
                i += 1;
            }
            TokenKind::Punct if t.is_punct('|') && i > 0 && closure_opens_after(&toks[i - 1]) => {
                // Closure parameter list: type annotations in here are
                // declarations, not struct-literal writes. Skip to the
                // closing `|` (no nesting inside a parameter list).
                let mut j = i + 1;
                while j < toks.len() && !toks[j].is_punct('|') {
                    j += 1;
                }
                i = j + 1;
            }
            TokenKind::Ident if t.text == "fn" => {
                // Nested fn / `extern { fn … ; }` declaration inside a
                // body: skip the declaration head so the name is not
                // mistaken for a call; its body (if any) continues as
                // ops of the enclosing fn.
                i += 1;
                if i < toks.len() && toks[i].kind == TokenKind::Ident {
                    i += 1;
                }
                i = skip_group_at(toks, i, '<', '>');
                i = skip_group_at(toks, i, '(', ')');
            }
            TokenKind::Ident if toks.get(i + 1).is_some_and(|n| n.is_punct('!')) => {
                let epoch_assert = t.text.starts_with("assert") && {
                    // Peek the macro group for an epoch-ish identifier.
                    let open = i + 2;
                    let close = match toks.get(open) {
                        Some(o) if o.is_punct('(') => matching_at(toks, open, '(', ')'),
                        Some(o) if o.is_punct('[') => matching_at(toks, open, '[', ']'),
                        Some(o) if o.is_punct('{') => matching_at(toks, open, '{', '}'),
                        _ => None,
                    };
                    close.is_some_and(|end| {
                        toks[open..end]
                            .iter()
                            .any(|t| t.kind == TokenKind::Ident && t.text.contains("epoch"))
                    })
                };
                ops.push(Op::MacroUse {
                    name: t.text.clone(),
                    epoch_assert,
                    line: t.line,
                    column: t.column,
                });
                // Continue scanning *inside* the macro body: calls in
                // `assert!(f(x))` are real calls.
                i += 2;
            }
            TokenKind::Ident
                if toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
                    && toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
                    && !(i > 0 && toks[i - 1].is_punct('.')) =>
            {
                // Path head `a::…` — walk the whole path. A
                // `.name::<…>` turbofish method is NOT a path head; the
                // arm below owns it.
                let (op, next) = scan_path(toks, i);
                if let Some(op) = op {
                    ops.push(op);
                }
                i = next;
            }
            TokenKind::Ident if toks.get(i + 1).is_some_and(|n| n.is_punct('(')) => {
                // Bare call `f(…)` — unless it is a method call
                // (`.f(…)`) or a definition keyword precedes.
                let is_method = i > 0 && toks[i - 1].is_punct('.');
                if is_method {
                    ops.push(method_op(toks, i));
                } else if !KEYWORDS.contains(&t.text.as_str())
                    && !t.text.starts_with(char::is_uppercase)
                {
                    ops.push(Op::Call {
                        path: vec![t.text.clone()],
                        line: t.line,
                        column: t.column,
                    });
                }
                i += 1;
            }
            TokenKind::Ident
                if i > 0
                    && toks[i - 1].is_punct('.')
                    && method_with_turbofish(toks, i).is_some() =>
            {
                // `.collect::<…>(…)` — method with a turbofish.
                ops.push(method_op(toks, i));
                i = method_with_turbofish(toks, i).unwrap_or(i + 1);
            }
            TokenKind::Ident if EPOCH_FIELDS.contains(&t.text.as_str()) => {
                if let Some(op) = epoch_write_op(toks, i) {
                    ops.push(op);
                }
                i += 1;
            }
            _ => {
                i += 1;
            }
        }
    }
    ops
}

/// For `.name::<…>(` at `i` (the name), return the index just past the
/// turbofish (at the `(`), or `None` when this is not that shape.
fn method_with_turbofish(toks: &[Token], i: usize) -> Option<usize> {
    if !(toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 3).is_some_and(|t| t.is_punct('<')))
    {
        return None;
    }
    let after = skip_group_at(toks, i + 3, '<', '>');
    toks.get(after)
        .is_some_and(|t| t.is_punct('('))
        .then_some(after)
}

/// Build the [`Op::Method`] for the name token at `i` (preceded by
/// `.`), reconstructing the receiver chain.
fn method_op(toks: &[Token], i: usize) -> Op {
    let t = &toks[i];
    // Walk the receiver chain backwards: `self`/ident (`.` ident)* `.`.
    let mut chain: Vec<String> = Vec::new();
    let mut j = i - 1; // the `.`
    let mut simple = true;
    loop {
        if j == 0 {
            simple = false;
            break;
        }
        let prev = &toks[j - 1];
        if prev.kind == TokenKind::Ident && !KEYWORDS.contains(&prev.text.as_str())
            || prev.is_ident("self")
        {
            chain.push(prev.text.clone());
            if j >= 2 && toks[j - 2].is_punct('.') {
                j -= 2;
                continue;
            }
            break;
        }
        simple = false;
        break;
    }
    chain.reverse();
    let recv = if !simple || chain.is_empty() {
        Recv::Expr
    } else if chain.len() == 1 && chain[0] == "self" {
        Recv::SelfRecv
    } else if chain[0] == "self" {
        Recv::Field(chain.last().cloned().unwrap_or_default())
    } else if chain.len() == 1 {
        Recv::Var(chain[0].clone())
    } else {
        // `a.b.method()` — treat the outermost field as the receiver
        // name (the lock analysis matches field names).
        Recv::Field(chain.last().cloned().unwrap_or_default())
    };
    Op::Method {
        name: t.text.clone(),
        recv,
        line: t.line,
        column: t.column,
    }
}

/// Scan a `::`-path starting at the ident at `i`. Returns the op (a
/// [`Op::Call`] when the path ends in `(`, an [`Op::OrderingUse`] for
/// atomic orderings, otherwise `None`) and the index to resume at.
fn scan_path(toks: &[Token], start: usize) -> (Option<Op>, usize) {
    let mut segs: Vec<(usize, String)> = Vec::new();
    let mut i = start;
    loop {
        match toks.get(i) {
            Some(t) if t.kind == TokenKind::Ident => {
                segs.push((i, t.text.clone()));
                i += 1;
            }
            _ => break,
        }
        if toks.get(i).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
        {
            i += 2;
            // Turbofish in the middle or at the end: `f::<T>(…)`.
            if toks.get(i).is_some_and(|t| t.is_punct('<')) {
                i = skip_group_at(toks, i, '<', '>');
                break;
            }
        } else {
            break;
        }
    }
    let resume = i;
    let Some((last_idx, last)) = segs.last().cloned() else {
        return (None, start + 1);
    };
    // `Ordering::Relaxed` and friends: an ordering mention, never a
    // call. Guard against `cmp::Ordering::Less` by the variant list.
    if segs.len() >= 2
        && matches!(last.as_str(), "Relaxed" | "Acquire" | "Release" | "AcqRel")
        && segs[segs.len() - 2].1 == "Ordering"
    {
        let t = &toks[last_idx];
        return (
            Some(Op::OrderingUse {
                name: last,
                line: t.line,
                column: t.column,
            }),
            resume,
        );
    }
    // A call only when the path is immediately applied and the final
    // segment is lowercase (uppercase-final paths are tuple-struct /
    // enum-variant constructors, which cannot panic or block).
    let applied = toks.get(resume).is_some_and(|t| t.is_punct('('));
    if applied && !last.starts_with(char::is_uppercase) {
        let t = &toks[last_idx];
        return (
            Some(Op::Call {
                path: segs.into_iter().map(|(_, s)| s).collect(),
                line: t.line,
                column: t.column,
            }),
            resume,
        );
    }
    (None, resume)
}

/// Is the epoch-field ident at `i` a write? Struct-literal init
/// (`epoch: value`, not a path or type ascription context) or
/// place-expression assignment (`x.epoch = …`, `+=`, `-=`).
fn epoch_write_op(toks: &[Token], i: usize) -> Option<Op> {
    let t = &toks[i];
    let field_init = toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
        && !toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
        && !(i > 0 && toks[i - 1].is_punct(':'));
    let assigned = i > 0
        && toks[i - 1].is_punct('.')
        && match (toks.get(i + 1), toks.get(i + 2)) {
            (Some(eq), Some(after)) if eq.is_punct('=') => {
                !after.is_punct('=') && !after.is_punct('>')
            }
            (Some(op), Some(eq)) if eq.is_punct('=') => op.is_punct('+') || op.is_punct('-'),
            _ => false,
        };
    (field_init || assigned).then(|| Op::FieldWrite {
        name: t.text.clone(),
        line: t.line,
        column: t.column,
    })
}

/// Can a `|` after this token open a closure parameter list?
fn closure_opens_after(prev: &Token) -> bool {
    match prev.kind {
        TokenKind::Punct => matches!(
            prev.text.as_str(),
            "(" | "," | "{" | "=" | ";" | ":" | ">" | "&"
        ),
        TokenKind::Ident => matches!(prev.text.as_str(), "move" | "return" | "else"),
        _ => false,
    }
}

/// Index just past the group opened at `open_idx` (which must hold
/// `open`; returns `open_idx` unchanged otherwise). `<…>` groups treat
/// `->`'s `>` as non-closing.
fn skip_group_at(toks: &[Token], open_idx: usize, open: char, close: char) -> usize {
    if !toks.get(open_idx).is_some_and(|t| t.is_punct(open)) {
        return open_idx;
    }
    let mut depth = 0usize;
    let mut prev_minus = false;
    let mut i = open_idx;
    while let Some(t) = toks.get(i) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) && !(open == '<' && prev_minus) {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        prev_minus = t.is_punct('-');
        i += 1;
    }
    i
}

/// Index of the token closing the bracket opened at `open_idx`.
fn matching_at(toks: &[Token], open_idx: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::tokenize;

    fn parse(src: &str) -> ParsedFile {
        let sig: Vec<Token> = tokenize(src)
            .into_iter()
            .filter(|t| !t.is_comment())
            .collect();
        parse_file(&sig)
    }

    #[test]
    fn fn_items_with_modules_and_impls() {
        let file = parse(
            "fn top() {}\n\
             mod inner { pub fn nested() {} }\n\
             impl Reactor { fn run(&mut self) { self.turn(); } }\n\
             impl Wake for SocketWaker { fn wake(&self) {} }\n",
        );
        let names: Vec<(String, Vec<String>, Option<String>)> = file
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.module.clone(), f.impl_type.clone()))
            .collect();
        assert_eq!(names[0], ("top".into(), vec![], None));
        assert_eq!(names[1], ("nested".into(), vec!["inner".into()], None));
        assert_eq!(names[2], ("run".into(), vec![], Some("Reactor".into())));
        assert_eq!(
            names[3],
            ("wake".into(), vec![], Some("SocketWaker".into()))
        );
        assert!(matches!(
            file.fns[2].ops.as_slice(),
            [Op::Method { name, recv: Recv::SelfRecv, .. }] if name == "turn"
        ));
    }

    #[test]
    fn test_items_are_masked_exactly() {
        let file = parse(
            "#[cfg(test)]\nmod tests { fn helper() {} #[test] fn case() {} }\n\
             #[test]\nfn standalone() {}\nfn shipping() {}\n",
        );
        let by_name = |n: &str| file.fns.iter().find(|f| f.name == n).expect(n);
        assert!(by_name("helper").is_test);
        assert!(by_name("case").is_test);
        assert!(by_name("standalone").is_test);
        assert!(!by_name("shipping").is_test);
    }

    #[test]
    fn use_trees_flatten_with_aliases_and_globs() {
        let file = parse(
            "use std::sync::{Arc, Mutex as Mx};\nuse crate::engine::*;\nuse ripki_payload::json;\n",
        );
        let find = |n: &str| {
            file.uses
                .iter()
                .find(|u| u.name == n)
                .map(|u| u.path.join("::"))
        };
        assert_eq!(find("Arc"), Some("std::sync::Arc".into()));
        assert_eq!(find("Mx"), Some("std::sync::Mutex".into()));
        assert_eq!(find("*"), Some("crate::engine".into()));
        assert_eq!(find("json"), Some("ripki_payload::json".into()));
    }

    #[test]
    fn body_ops_cover_calls_methods_macros_and_indexing() {
        let file = parse(
            "fn f(b: &[u8]) -> u8 {\n    helper(b);\n    ripki_payload::json::encode(b);\n    \
             b.first().copied().unwrap_or(0);\n    panic!(\"boom\");\n    b[0]\n}\n",
        );
        let ops = &file.fns[0].ops;
        assert!(ops
            .iter()
            .any(|o| matches!(o, Op::Call { path, .. } if path == &vec!["helper".to_string()])));
        assert!(ops.iter().any(
            |o| matches!(o, Op::Call { path, .. } if path.join("::") == "ripki_payload::json::encode")
        ));
        assert!(ops
            .iter()
            .any(|o| matches!(o, Op::Method { name, .. } if name == "unwrap_or")));
        assert!(ops
            .iter()
            .any(|o| matches!(o, Op::MacroUse { name, .. } if name == "panic")));
        assert!(ops.iter().any(|o| matches!(o, Op::Index { .. })));
    }

    #[test]
    fn params_and_types_produce_no_index_ops() {
        let file = parse("fn f(buf: [u8; 4]) -> [u8; 2] { let _x: [u8; 1] = [0; 1]; [0, 0] }");
        assert!(
            !file.fns[0]
                .ops
                .iter()
                .any(|o| matches!(o, Op::Index { .. })),
            "{:?}",
            file.fns[0].ops
        );
    }

    #[test]
    fn variant_constructors_are_not_calls() {
        let file = parse("fn f() -> Option<u8> { Some(1).or(None); Ok::<u8, ()>(2).ok() }");
        assert!(
            !file.fns[0].ops.iter().any(|o| matches!(o, Op::Call { .. })),
            "{:?}",
            file.fns[0].ops
        );
    }

    #[test]
    fn receiver_chains_resolve_to_shapes() {
        let file = parse(
            "impl R { fn f(&self, q: Q) { self.step(); self.queue.lock(); q.lock(); a().b(); } }",
        );
        let methods: Vec<(String, Recv)> = file.fns[0]
            .ops
            .iter()
            .filter_map(|o| match o {
                Op::Method { name, recv, .. } => Some((name.clone(), recv.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(methods[0], ("step".into(), Recv::SelfRecv));
        assert_eq!(methods[1], ("lock".into(), Recv::Field("queue".into())));
        assert_eq!(methods[2], ("lock".into(), Recv::Var("q".into())));
        assert_eq!(methods[3], ("b".into(), Recv::Expr));
    }

    #[test]
    fn lock_fields_are_recorded() {
        let file = parse(
            "pub struct Q { queue: Mutex<VecDeque<u8>>, view: RwLock<Arc<V>>, n: usize }\n\
             struct W { shared: Arc<Mutex<Vec<u8>>> }\n",
        );
        let locks: Vec<(String, String, LockKind)> = file
            .lock_fields
            .iter()
            .map(|l| (l.owner.clone(), l.field.clone(), l.kind))
            .collect();
        assert_eq!(
            locks,
            vec![
                ("Q".into(), "queue".into(), LockKind::Mutex),
                ("Q".into(), "view".into(), LockKind::RwLock),
                ("W".into(), "shared".into(), LockKind::Mutex),
            ]
        );
    }

    #[test]
    fn ordering_uses_and_epoch_writes() {
        let file = parse(
            "fn f(c: &AtomicU64, r: &mut R) {\n    c.load(Ordering::Relaxed);\n    \
             let _ = std::cmp::Ordering::Less;\n    r.epoch = 9;\n    \
             let d = Delta { from_epoch: 1, to_epoch: 2 };\n}\n",
        );
        let ops = &file.fns[0].ops;
        let orderings: Vec<&str> = ops
            .iter()
            .filter_map(|o| match o {
                Op::OrderingUse { name, .. } => Some(name.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(orderings, vec!["Relaxed"]);
        let writes: Vec<&str> = ops
            .iter()
            .filter_map(|o| match o {
                Op::FieldWrite { name, .. } => Some(name.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(writes, vec!["epoch", "from_epoch", "to_epoch"]);
    }

    #[test]
    fn closure_params_and_struct_decls_are_not_writes() {
        let file = parse(
            "pub struct Delta { pub from_epoch: u64, pub to_epoch: u64 }\n\
             fn f() { let g = |epoch: u64, n: usize| epoch + n as u64; g(1, 2); }\n\
             fn stamp(epoch: u64) -> u64 { epoch }\n",
        );
        for f in &file.fns {
            assert!(
                !f.ops.iter().any(|o| matches!(o, Op::FieldWrite { .. })),
                "{}: {:?}",
                f.name,
                f.ops
            );
        }
    }

    #[test]
    fn epoch_asserts_are_detected() {
        let file = parse(
            "fn publish(old: u64, new_epoch: u64) { assert!(new_epoch > old, \"forward\"); }\n\
             fn plain() { assert!(true); }\n",
        );
        assert!(matches!(
            file.fns[0].ops.first(),
            Some(Op::MacroUse {
                epoch_assert: true,
                ..
            })
        ));
        assert!(matches!(
            file.fns[1].ops.first(),
            Some(Op::MacroUse {
                epoch_assert: false,
                ..
            })
        ));
    }

    #[test]
    fn const_initializers_get_synthetic_fns() {
        let file = parse("const SHED: u64 = make_shed(503);\nstatic mut N: usize = 0;\n");
        assert_eq!(file.fns.len(), 2);
        assert_eq!(file.fns[0].name, "SHED");
        assert!(file.fns[0]
            .ops
            .iter()
            .any(|o| matches!(o, Op::Call { path, .. } if path == &vec!["make_shed".to_string()])));
    }

    #[test]
    fn extern_blocks_and_macro_rules_are_skipped() {
        let file = parse(
            "extern \"C\" { fn poll(fds: *mut PollFd, n: u64, t: i32) -> i32; }\n\
             macro_rules! boom { () => { panic!(\"in macro def\") }; }\n\
             fn f() { }\n",
        );
        assert_eq!(file.fns.len(), 1);
        assert_eq!(file.fns[0].name, "f");
        assert!(file.fns[0].ops.is_empty());
    }

    #[test]
    fn nested_extern_fn_decl_inside_body_is_not_a_call() {
        let file = parse(
            "fn outer() {\n    extern \"C\" { fn setsockopt(fd: i32) -> i32; }\n    \
             let rc = unsafe { setsockopt(1) };\n}\n",
        );
        let calls: Vec<String> = file.fns[0]
            .ops
            .iter()
            .filter_map(|o| match o {
                Op::Call { path, .. } => Some(path.join("::")),
                _ => None,
            })
            .collect();
        assert_eq!(calls, vec!["setsockopt"]);
    }

    #[test]
    fn turbofish_calls_and_methods() {
        let file = parse("fn f(v: Vec<u8>) { v.iter().collect::<Vec<_>>(); parse::<u64>(\"4\"); }");
        let ops = &file.fns[0].ops;
        assert!(ops
            .iter()
            .any(|o| matches!(o, Op::Method { name, .. } if name == "collect")));
        assert!(ops
            .iter()
            .any(|o| matches!(o, Op::Call { path, .. } if path == &vec!["parse".to_string()])));
    }
}
