//! CLI entry point: `ripki-lint check [--root DIR] [--format text|json]`
//! and `ripki-lint rules`.
//!
//! Exit codes: 0 = clean, 1 = violations found, 2 = usage or I/O error.

use ripki_lint::catalog::{ALL_RULES, CATALOG_VERSION};
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
ripki-lint — workspace invariant checker

USAGE:
    ripki-lint check [--root DIR] [--format text|json]
    ripki-lint rules

OPTIONS:
    --root DIR       workspace root to scan (default: current directory)
    --format FORMAT  `text` (default) or `json`
";

/// Write to stdout without panicking when the reader has gone away
/// (`ripki-lint rules | head` closes the pipe mid-stream).
fn emit(text: &str) {
    let _ = std::io::stdout().write_all(text.as_bytes());
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => run_check(&args[1..]),
        Some("rules") => {
            let mut text = format!("rule catalog v{CATALOG_VERSION}:\n");
            for rule in ALL_RULES {
                use std::fmt::Write as _;
                let _ = writeln!(
                    text,
                    "  {} {:<13} {}",
                    rule.code(),
                    rule.id(),
                    rule.summary()
                );
            }
            emit(&text);
            ExitCode::SUCCESS
        }
        Some("--help" | "-h") | None => {
            emit(USAGE);
            ExitCode::from(if args.is_empty() { 2 } else { 0 })
        }
        Some(other) => {
            eprintln!("ripki-lint: unknown command `{other}`\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn run_check(args: &[String]) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut format = "text".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                let Some(value) = args.get(i + 1) else {
                    eprintln!("ripki-lint: --root needs a value\n{USAGE}");
                    return ExitCode::from(2);
                };
                root = PathBuf::from(value);
                i += 2;
            }
            "--format" => {
                let Some(value) = args.get(i + 1) else {
                    eprintln!("ripki-lint: --format needs a value\n{USAGE}");
                    return ExitCode::from(2);
                };
                if value != "text" && value != "json" {
                    eprintln!("ripki-lint: unknown format `{value}`\n{USAGE}");
                    return ExitCode::from(2);
                }
                format = value.clone();
                i += 2;
            }
            other => {
                eprintln!("ripki-lint: unknown option `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let report = match ripki_lint::check_workspace(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("ripki-lint: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    match format.as_str() {
        "json" => emit(&report.render_json()),
        _ => emit(&report.render_text()),
    }
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
