//! CLI entry point: `ripki-lint check [--root DIR] [--format text|json]`,
//! `ripki-lint bench [--root DIR] [--out FILE]`, and `ripki-lint rules`.
//!
//! Exit codes: 0 = clean, 1 = violations found, 2 = usage or I/O error.

use ripki_lint::catalog::{ALL_RULES, CATALOG_VERSION};
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

const USAGE: &str = "\
ripki-lint — workspace invariant checker

USAGE:
    ripki-lint check [--root DIR] [--format text|json]
    ripki-lint bench [--root DIR] [--out FILE] [--iters N]
    ripki-lint rules

OPTIONS:
    --root DIR       workspace root to scan (default: current directory)
    --format FORMAT  `text` (default) or `json`
    --out FILE       bench JSON output (default: results/BENCH_lint.json)
    --iters N        bench iterations; the best wall time is kept (default: 3)
";

/// Write to stdout without panicking when the reader has gone away
/// (`ripki-lint rules | head` closes the pipe mid-stream).
fn emit(text: &str) {
    let _ = std::io::stdout().write_all(text.as_bytes());
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => run_check(&args[1..]),
        Some("bench") => run_bench(&args[1..]),
        Some("rules") => {
            let mut text = format!("rule catalog v{CATALOG_VERSION}:\n");
            for rule in ALL_RULES {
                use std::fmt::Write as _;
                let _ = writeln!(
                    text,
                    "  {} {:<13} {}",
                    rule.code(),
                    rule.id(),
                    rule.summary()
                );
            }
            emit(&text);
            ExitCode::SUCCESS
        }
        Some("--help" | "-h") | None => {
            emit(USAGE);
            ExitCode::from(if args.is_empty() { 2 } else { 0 })
        }
        Some(other) => {
            eprintln!("ripki-lint: unknown command `{other}`\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn run_check(args: &[String]) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut format = "text".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                let Some(value) = args.get(i + 1) else {
                    eprintln!("ripki-lint: --root needs a value\n{USAGE}");
                    return ExitCode::from(2);
                };
                root = PathBuf::from(value);
                i += 2;
            }
            "--format" => {
                let Some(value) = args.get(i + 1) else {
                    eprintln!("ripki-lint: --format needs a value\n{USAGE}");
                    return ExitCode::from(2);
                };
                if value != "text" && value != "json" {
                    eprintln!("ripki-lint: unknown format `{value}`\n{USAGE}");
                    return ExitCode::from(2);
                }
                format = value.clone();
                i += 2;
            }
            other => {
                eprintln!("ripki-lint: unknown option `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let report = match ripki_lint::check_workspace(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("ripki-lint: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    match format.as_str() {
        "json" => emit(&report.render_json()),
        _ => emit(&report.render_text()),
    }
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// Time the full two-phase workspace scan (lex + parse + link + all
/// seven rules) and write the bench JSON `scripts/bench_gate.py` gates
/// on. The scan repeats `--iters` times and keeps the best wall time:
/// the gate bounds the *tool's* cost, not the host's page-cache state.
fn run_bench(args: &[String]) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut out = PathBuf::from("results/BENCH_lint.json");
    let mut iters: u32 = 3;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                let Some(value) = args.get(i + 1) else {
                    eprintln!("ripki-lint: --root needs a value\n{USAGE}");
                    return ExitCode::from(2);
                };
                root = PathBuf::from(value);
                i += 2;
            }
            "--out" => {
                let Some(value) = args.get(i + 1) else {
                    eprintln!("ripki-lint: --out needs a value\n{USAGE}");
                    return ExitCode::from(2);
                };
                out = PathBuf::from(value);
                i += 2;
            }
            "--iters" => {
                let Some(parsed) = args.get(i + 1).and_then(|v| v.parse().ok()) else {
                    eprintln!("ripki-lint: --iters needs a positive integer\n{USAGE}");
                    return ExitCode::from(2);
                };
                iters = parsed;
                i += 2;
            }
            other => {
                eprintln!("ripki-lint: unknown option `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    if iters == 0 {
        eprintln!("ripki-lint: --iters needs a positive integer\n{USAGE}");
        return ExitCode::from(2);
    }

    let mut best_ms = f64::INFINITY;
    let mut files_scanned = 0usize;
    let mut violations = 0usize;
    for _ in 0..iters {
        let start = Instant::now();
        let report = match ripki_lint::check_workspace(&root) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("ripki-lint: cannot scan {}: {e}", root.display());
                return ExitCode::from(2);
            }
        };
        let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
        best_ms = best_ms.min(elapsed_ms);
        files_scanned = report.files_scanned;
        violations = report.violations.len();
    }

    let json = format!(
        "{{\"bench\":\"lint_workspace\",\"catalog_version\":{CATALOG_VERSION},\
         \"wall_ms\":{best_ms:.3},\"files_scanned\":{files_scanned},\
         \"violations\":{violations},\"iters\":{iters}}}\n"
    );
    if let Some(parent) = out.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("ripki-lint: cannot write {}: {e}", out.display());
        return ExitCode::from(2);
    }
    emit(&format!(
        "lint_workspace: {files_scanned} file(s) in {best_ms:.1} ms \
         (best of {iters}) -> {}\n",
        out.display()
    ));
    ExitCode::SUCCESS
}
