//! Diagnostics and the two output formats (human text, machine JSON).

use crate::catalog::{Rule, ALL_RULES, CATALOG_VERSION};
use serde_json::{Map, Value};
use std::fmt::Write as _;

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule id (`no-panic`, …) or `allow-syntax` for broken escape
    /// hatches.
    pub rule: String,
    /// Workspace-relative `/`-separated path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based byte column.
    pub column: usize,
    /// What went wrong and what to do instead.
    pub message: String,
}

/// One `// lint: allow(<rule>) <justification>` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule id the entry suppresses.
    pub rule: String,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line of the comment.
    pub line: usize,
    /// The written justification (empty string = violation).
    pub justification: String,
    /// Whether the entry actually suppressed a violation.
    pub used: bool,
}

/// The full run result.
#[derive(Debug, Default)]
pub struct Report {
    /// All violations across the workspace, in path/line order.
    pub violations: Vec<Violation>,
    /// All allow-list entries found.
    pub allows: Vec<AllowEntry>,
    /// Files checked.
    pub files_scanned: usize,
}

impl Report {
    /// Did the workspace pass?
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Human-readable rendering: `path:line:col: Rn[id]: message` per
    /// violation, then the allow-list audit, then a one-line summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            let code = Rule::from_id(&v.rule).map_or("--", Rule::code);
            let _ = writeln!(
                out,
                "{}:{}:{}: {}[{}]: {}",
                v.path, v.line, v.column, code, v.rule, v.message
            );
        }
        if !self.allows.is_empty() {
            let _ = writeln!(out, "allow-list entries ({}):", self.allows.len());
            for a in &self.allows {
                let _ = writeln!(
                    out,
                    "  {}:{}: allow({}) — {}{}",
                    a.path,
                    a.line,
                    a.rule,
                    a.justification,
                    if a.used { "" } else { "  [UNUSED]" }
                );
            }
        }
        let mut per_rule: Vec<(Rule, usize)> = ALL_RULES
            .iter()
            .map(|r| {
                (
                    *r,
                    self.violations.iter().filter(|v| v.rule == r.id()).count(),
                )
            })
            .collect();
        per_rule.retain(|(_, n)| *n > 0);
        let breakdown = per_rule
            .iter()
            .map(|(r, n)| format!("{} {}", r.code(), n))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(
            out,
            "ripki-lint: {} file(s), {} violation(s){}, {} allow(s) (catalog v{})",
            self.files_scanned,
            self.violations.len(),
            if breakdown.is_empty() {
                String::new()
            } else {
                format!(" [{breakdown}]")
            },
            self.allows.len(),
            CATALOG_VERSION,
        );
        out
    }

    /// Machine-readable rendering for `--format json` (one object, keys
    /// sorted by serde_json's map ordering).
    pub fn render_json(&self) -> String {
        let mut root = Map::new();
        root.insert("catalog_version".into(), CATALOG_VERSION.into());
        root.insert("files_scanned".into(), self.files_scanned.into());
        root.insert("clean".into(), self.clean().into());
        let violations: Vec<Value> = self
            .violations
            .iter()
            .map(|v| {
                let mut obj = Map::new();
                obj.insert("rule".into(), v.rule.as_str().into());
                obj.insert("path".into(), v.path.as_str().into());
                obj.insert("line".into(), v.line.into());
                obj.insert("column".into(), v.column.into());
                obj.insert("message".into(), v.message.as_str().into());
                Value::Object(obj)
            })
            .collect();
        root.insert("violations".into(), Value::Array(violations));
        let allows: Vec<Value> = self
            .allows
            .iter()
            .map(|a| {
                let mut obj = Map::new();
                obj.insert("rule".into(), a.rule.as_str().into());
                obj.insert("path".into(), a.path.as_str().into());
                obj.insert("line".into(), a.line.into());
                obj.insert("justification".into(), a.justification.as_str().into());
                obj.insert("used".into(), a.used.into());
                Value::Object(obj)
            })
            .collect();
        root.insert("allows".into(), Value::Array(allows));
        let mut summary = Map::new();
        for rule in ALL_RULES {
            summary.insert(
                rule.id().into(),
                self.violations
                    .iter()
                    .filter(|v| v.rule == rule.id())
                    .count()
                    .into(),
            );
        }
        root.insert("violations_by_rule".into(), Value::Object(summary));
        let mut text = serde_json::to_string(&Value::Object(root))
            .unwrap_or_else(|_| "{\"error\":\"report serialization failed\"}".to_string());
        text.push('\n');
        text
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            violations: vec![Violation {
                rule: "no-panic".into(),
                path: "crates/serve/src/http.rs".into(),
                line: 10,
                column: 7,
                message: "`.unwrap()` on the panic-free path".into(),
            }],
            allows: vec![AllowEntry {
                rule: "wall-clock".into(),
                path: "crates/serve/src/metrics.rs".into(),
                line: 3,
                justification: "latency measurement".into(),
                used: true,
            }],
            files_scanned: 2,
        }
    }

    #[test]
    fn text_report_has_file_line_diagnostics() {
        let text = sample().render_text();
        assert!(
            text.contains("crates/serve/src/http.rs:10:7: R1[no-panic]:"),
            "{text}"
        );
        assert!(text.contains("2 file(s), 1 violation(s)"), "{text}");
        assert!(
            text.contains("allow(wall-clock) — latency measurement"),
            "{text}"
        );
    }

    #[test]
    fn json_report_is_machine_readable() {
        let json: Value = serde_json::from_str(&sample().render_json()).expect("valid JSON");
        assert_eq!(json["catalog_version"], Value::from(4u32));
        assert_eq!(json["clean"], Value::from(false));
        assert_eq!(json["violations"][0]["rule"], Value::from("no-panic"));
        assert_eq!(json["violations"][0]["line"], Value::from(10));
        assert_eq!(json["violations_by_rule"]["no-panic"], Value::from(1));
        assert_eq!(json["allows"][0]["used"], Value::from(true));
    }
}
