//! The versioned rule catalog: what each rule forbids and where it
//! applies. DESIGN.md ("Invariants & enforcement") is the prose twin of
//! this file; bump [`CATALOG_VERSION`] whenever a rule's scope or
//! semantics change so downstream automation can detect drift.

use std::fmt;
use std::path::Path;

/// Version of the rule set encoded below.
///
/// v4: R1 became transitive panic-reachability over the workspace call
/// graph (flagging both the in-scope call site and the out-of-scope
/// panic site); R2 admits the monotonic `Instant::now` inside
/// `crates/serve/**` (a real-time serving plane measures deadlines —
/// `SystemTime` stays confined); R6 (no blocking reachable from a
/// reactor turn) and R7 (consistent lock acquisition order) were added
/// on the same graph.
pub const CATALOG_VERSION: u32 = 4;

/// The enforced invariants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// R1: no `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/
    /// `unimplemented!` and no `[]` indexing on the serving request path
    /// (`crates/serve/src/**`, which includes the poll(2) reactor and
    /// connection state machines), in the RTR PDU codec
    /// (`crates/rtr/src/pdu.rs`), or in the RTR accept front end
    /// (`crates/rtr/src/listener.rs`) — *including transitively*: a
    /// helper anywhere in the workspace that can panic and is reachable
    /// from an in-scope function is flagged at the panic site and at
    /// the in-scope call that reaches it. A malformed request or PDU
    /// must map to a typed error, never a worker or reactor panic.
    NoPanic,
    /// R2: `SystemTime::now` only inside `ripki_rpki::time` (the
    /// simulation clock) and the `cli` / `bench` crates; `Instant::now`
    /// additionally allowed in `crates/serve/**` (monotonic deadline
    /// arithmetic on a real-time plane). Everything else must take time
    /// as a parameter so study runs stay deterministic and replayable.
    WallClock,
    /// R3: every `Ordering::Relaxed` / `Acquire` / `Release` / `AcqRel`
    /// carries a same-line or immediately-preceding comment saying why
    /// that ordering is sufficient. (`SeqCst` is exempt: it is the
    /// conservative default.)
    AtomicOrder,
    /// R4: no `println!` / `eprintln!` / `print!` / `eprint!` / `dbg!`
    /// outside the `cli`, `bench`, and `lint` crates — library crates
    /// report through return values, not stdout.
    PrintOutput,
    /// R5: epoch-bearing fields (`epoch`, `from_epoch`, `to_epoch`) are
    /// written only inside the blessed engine module, whose constructors
    /// assert monotonicity; everywhere else must go through those
    /// constructors/setters.
    EpochWrite,
    /// R6: nothing that can block — `thread::sleep`, channel
    /// `recv`/`recv_timeout`, `join`, condvar `wait`, blocking
    /// `accept`/`connect` — is reachable from `Reactor::turn` outside
    /// the blessed poll/idle-sweep sites. One blocked turn stalls every
    /// connection on the reactor at once.
    NoBlocking,
    /// R7: the workspace lock set (struct fields of `Mutex`/`RwLock`
    /// type in `serve`/`par`/`proxy`) is acquired in one consistent
    /// order; any path that holds lock A while (transitively) taking
    /// lock B, when another path orders them B-then-A, is flagged.
    LockOrder,
}

/// All rules, in report order.
pub const ALL_RULES: [Rule; 7] = [
    Rule::NoPanic,
    Rule::WallClock,
    Rule::AtomicOrder,
    Rule::PrintOutput,
    Rule::EpochWrite,
    Rule::NoBlocking,
    Rule::LockOrder,
];

impl Rule {
    /// Stable machine identifier, used in `// lint: allow(<id>)` and in
    /// the JSON report.
    pub fn id(self) -> &'static str {
        match self {
            Rule::NoPanic => "no-panic",
            Rule::WallClock => "wall-clock",
            Rule::AtomicOrder => "atomic-order",
            Rule::PrintOutput => "print-output",
            Rule::EpochWrite => "epoch-write",
            Rule::NoBlocking => "no-blocking",
            Rule::LockOrder => "lock-order",
        }
    }

    /// Short catalog code (`R1`..`R7`).
    pub fn code(self) -> &'static str {
        match self {
            Rule::NoPanic => "R1",
            Rule::WallClock => "R2",
            Rule::AtomicOrder => "R3",
            Rule::PrintOutput => "R4",
            Rule::EpochWrite => "R5",
            Rule::NoBlocking => "R6",
            Rule::LockOrder => "R7",
        }
    }

    /// One-line description for `ripki-lint rules`.
    pub fn summary(self) -> &'static str {
        match self {
            Rule::NoPanic => {
                "no unwrap/expect/panic!/unreachable!/todo!/unimplemented! or [] indexing \
                 on the serve request path (reactor included), the RTR PDU codec, and the \
                 RTR accept front end — directly or via any workspace function they reach"
            }
            Rule::WallClock => {
                "SystemTime::now only in ripki_rpki::time and the cli/bench crates; \
                 Instant::now additionally allowed in crates/serve (monotonic deadlines)"
            }
            Rule::AtomicOrder => {
                "every Ordering::Relaxed/Acquire/Release/AcqRel needs a same-line or \
                 preceding justification comment"
            }
            Rule::PrintOutput => "no println!/eprintln!/print!/eprint!/dbg! outside cli/bench/lint",
            Rule::EpochWrite => {
                "epoch/from_epoch/to_epoch fields are written only in the blessed engine \
                 module, which must assert epoch monotonicity"
            }
            Rule::NoBlocking => {
                "no thread::sleep, channel recv, join, condvar wait, or blocking \
                 accept/connect reachable from Reactor::turn outside the blessed \
                 poll/idle-sweep sites"
            }
            Rule::LockOrder => {
                "the serve/par/proxy Mutex/RwLock field set is acquired in one global \
                 order; a path holding A then taking B while another takes B then A is \
                 a deadlock seed"
            }
        }
    }

    /// Parse a rule id (as written in allow comments).
    pub fn from_id(id: &str) -> Option<Rule> {
        ALL_RULES.iter().copied().find(|r| r.id() == id)
    }

    /// Does this rule apply to the (workspace-relative, `/`-separated)
    /// file at all? Test code is additionally exempted per-item by the
    /// parser; this is the file-level scope. The graph rules (R1
    /// transitive, R6, R7) root in these scopes but may *report* inside
    /// any workspace file their chains reach.
    pub fn applies_to(self, path: &str) -> bool {
        match self {
            Rule::NoPanic => {
                path.starts_with("crates/serve/src/")
                    || path == "crates/rtr/src/pdu.rs"
                    || path == "crates/rtr/src/listener.rs"
            }
            Rule::WallClock => {
                path != "crates/rpki/src/time.rs"
                    && !path.starts_with("crates/cli/")
                    && !path.starts_with("crates/bench/")
                    && !path.starts_with("crates/lint/")
            }
            Rule::AtomicOrder => true,
            Rule::PrintOutput => {
                !path.starts_with("crates/cli/")
                    && !path.starts_with("crates/bench/")
                    && !path.starts_with("crates/lint/")
            }
            Rule::EpochWrite => !is_blessed_epoch_module(path),
            // R6 roots in the reactor; R7 collects locks from the
            // concurrent crates. Reporting sites follow chains, so the
            // file-level scope is where *analysis roots* live.
            Rule::NoBlocking => path.starts_with("crates/serve/src/"),
            Rule::LockOrder => {
                path.starts_with("crates/serve/src/")
                    || path.starts_with("crates/par/src/")
                    || path.starts_with("crates/proxy/src/")
            }
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.code(), self.id())
    }
}

/// The modules allowed to write epoch fields directly. They carry the
/// monotonicity assertions every other caller inherits by construction:
/// the engine commits epochs, the payload crate's constructors stamp
/// them onto the wire currency, the proxy gossip channel enforces
/// forward motion at every fabric hop, and the SLURM crate maps deltas
/// between epoch spaces (exception reloads shift epochs by a constant
/// offset) under its own forward-motion assertion.
pub fn is_blessed_epoch_module(path: &str) -> bool {
    matches!(
        path,
        "crates/ripki/src/engine.rs"
            | "crates/payload/src/lib.rs"
            | "crates/proxy/src/comms.rs"
            | "crates/slurm/src/lib.rs"
    )
}

/// R6 analysis roots: `(file suffix, impl type, fn name)` of the
/// functions one reactor turn executes. `Reactor::turn` is the per-
/// iteration body `Reactor::run` loops over; `run` itself is *not* a
/// root because its post-loop teardown legitimately joins the pool.
pub const REACTOR_ROOTS: &[(&str, Option<&str>, &str)] =
    &[("crates/serve/src/reactor.rs", Some("Reactor"), "turn")];

/// R6 blessed sites: functions allowed to contain (or reach) op shapes
/// that look blocking, with the reason they are safe on the reactor.
///
/// `poll_fds` is the event source — blocking in `poll(2)` with a
/// timeout *is* the reactor idle state. The readiness handlers
/// (`read_ready`, `write_some`, `accept_ready`, `drain_wake_pipe`)
/// only ever touch fds already reported ready, in nonblocking mode.
/// `CompletionQueue::drain`/`push` hold a lock for a bounded O(len)
/// splice that the loom lane models.
pub const REACTOR_BLESSED: &[(&str, Option<&str>, &str)] = &[
    ("crates/serve/src/reactor.rs", None, "poll_fds"),
    ("crates/serve/src/reactor.rs", Some("Reactor"), "read_ready"),
    ("crates/serve/src/reactor.rs", None, "write_some"),
    (
        "crates/serve/src/reactor.rs",
        Some("Reactor"),
        "accept_ready",
    ),
    (
        "crates/serve/src/reactor.rs",
        Some("Reactor"),
        "drain_wake_pipe",
    ),
    ("crates/serve/src/pool.rs", Some("CompletionQueue"), "drain"),
    ("crates/serve/src/pool.rs", Some("CompletionQueue"), "push"),
];

/// Method names R6 treats as potentially blocking when reached from a
/// reactor root. `lock`/`read`/`write` are deliberately *absent*:
/// bounded lock hand-offs are R7's domain (order, not duration), and
/// readiness-mode IO is blessed at the fn granularity above.
pub const BLOCKING_METHODS: &[&str] = &[
    "recv",
    "recv_timeout",
    "join",
    "wait",
    "wait_timeout",
    "accept",
    "connect",
];

/// Free-fn / path tails R6 treats as blocking (`thread::sleep`,
/// `TcpStream::connect`, …).
pub const BLOCKING_PATHS: &[&str] = &["sleep", "park", "park_timeout"];

/// Convert an OS path (relative to the workspace root) to the canonical
/// `/`-separated form the scopes above match on.
pub fn canonical(path: &Path) -> String {
    let mut out = String::new();
    for comp in path.components() {
        if !out.is_empty() {
            out.push('/');
        }
        out.push_str(&comp.as_os_str().to_string_lossy());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip() {
        for rule in ALL_RULES {
            assert_eq!(Rule::from_id(rule.id()), Some(rule));
        }
        assert_eq!(Rule::from_id("nonsense"), None);
    }

    #[test]
    fn scopes_match_the_catalog() {
        assert!(Rule::NoPanic.applies_to("crates/serve/src/http.rs"));
        assert!(Rule::NoPanic.applies_to("crates/serve/src/reactor.rs"));
        assert!(Rule::NoPanic.applies_to("crates/serve/src/conn.rs"));
        assert!(Rule::NoPanic.applies_to("crates/rtr/src/pdu.rs"));
        assert!(Rule::NoPanic.applies_to("crates/rtr/src/listener.rs"));
        assert!(!Rule::NoPanic.applies_to("crates/rtr/src/cache.rs"));
        assert!(!Rule::NoPanic.applies_to("crates/rpki/src/validate.rs"));

        assert!(!Rule::WallClock.applies_to("crates/rpki/src/time.rs"));
        assert!(!Rule::WallClock.applies_to("crates/cli/src/lib.rs"));
        assert!(Rule::WallClock.applies_to("crates/serve/src/metrics.rs"));

        assert!(Rule::AtomicOrder.applies_to("crates/dns/src/cache.rs"));

        assert!(!Rule::PrintOutput.applies_to("crates/bench/src/bin/experiments.rs"));
        assert!(Rule::PrintOutput.applies_to("crates/ripki/src/engine.rs"));

        assert!(!Rule::EpochWrite.applies_to("crates/ripki/src/engine.rs"));
        assert!(!Rule::EpochWrite.applies_to("crates/payload/src/lib.rs"));
        assert!(!Rule::EpochWrite.applies_to("crates/proxy/src/comms.rs"));
        assert!(!Rule::EpochWrite.applies_to("crates/slurm/src/lib.rs"));
        assert!(Rule::EpochWrite.applies_to("crates/serve/src/view.rs"));
        assert!(Rule::EpochWrite.applies_to("crates/proxy/src/units.rs"));

        assert!(Rule::NoBlocking.applies_to("crates/serve/src/reactor.rs"));
        assert!(!Rule::NoBlocking.applies_to("crates/par/src/lib.rs"));
        assert!(Rule::LockOrder.applies_to("crates/par/src/lib.rs"));
        assert!(Rule::LockOrder.applies_to("crates/proxy/src/comms.rs"));
        assert!(!Rule::LockOrder.applies_to("crates/rpki/src/validate.rs"));
    }
}
