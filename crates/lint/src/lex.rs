//! A small Rust lexer, sufficient for token-level invariant checking.
//!
//! The container this workspace builds in has no crates.io access, so
//! `syn` is not available; the checks in [`crate::rules`] are written
//! against this hand-rolled token stream instead. The lexer understands
//! exactly the parts of the grammar that matter for not mis-reporting:
//! line and block comments (kept as tokens — the allow-list and the
//! atomic-ordering justifications live in them), string/char/byte/raw
//! literals (so a `panic!` inside a string is not a violation),
//! lifetimes vs char literals, raw identifiers, and nested block
//! comments.
//!
//! Everything else — numbers, identifiers, punctuation — is tokenized
//! just precisely enough to ask "is this `[` an index expression?" or
//! "is this `now` preceded by `Instant::`?".

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw `r#ident`, stored bare).
    Ident,
    /// `'a`, `'_` — lifetimes (not char literals).
    Lifetime,
    /// String / raw string / byte string / char / number literal.
    Literal,
    /// `// …` comment (text includes the `//`).
    LineComment,
    /// `/* … */` comment (text includes the delimiters).
    BlockComment,
    /// A single punctuation byte (`.`, `[`, `!`, `:`, …).
    Punct,
}

/// One token with its position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// The source text of the token.
    pub text: String,
    /// 1-based line of the token's first byte.
    pub line: usize,
    /// 1-based column (in bytes) of the token's first byte.
    pub column: usize,
}

impl Token {
    /// Is this token trivia (a comment)?
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// Is this an identifier with exactly this text?
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// Is this a punctuation token with exactly this byte?
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.starts_with(ch)
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    column: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, offset: usize) -> Option<u8> {
        self.bytes.get(self.pos + offset).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Tokenize `source`. Unterminated constructs (string running off the
/// end of the file) terminate the current token at EOF rather than
/// erroring — a lint tool should degrade, not crash, on weird input.
pub fn tokenize(source: &str) -> Vec<Token> {
    let mut cursor = Cursor {
        bytes: source.as_bytes(),
        pos: 0,
        line: 1,
        column: 1,
    };
    let mut tokens = Vec::new();
    while let Some(b) = cursor.peek() {
        let start = cursor.pos;
        let (line, column) = (cursor.line, cursor.column);
        let kind = match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cursor.bump();
                continue;
            }
            b'/' if cursor.peek_at(1) == Some(b'/') => {
                while let Some(c) = cursor.peek() {
                    if c == b'\n' {
                        break;
                    }
                    cursor.bump();
                }
                TokenKind::LineComment
            }
            b'/' if cursor.peek_at(1) == Some(b'*') => {
                cursor.bump();
                cursor.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    match (cursor.peek(), cursor.peek_at(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            cursor.bump();
                            cursor.bump();
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            cursor.bump();
                            cursor.bump();
                        }
                        (Some(_), _) => {
                            cursor.bump();
                        }
                        (None, _) => break,
                    }
                }
                TokenKind::BlockComment
            }
            b'r' | b'b' | b'c' if starts_prefixed_string(&mut cursor) => TokenKind::Literal,
            b'"' => {
                cursor.bump();
                consume_quoted(&mut cursor, b'"');
                TokenKind::Literal
            }
            b'\'' => lex_quote(&mut cursor),
            b if is_ident_start(b) => {
                // `r#ident` raw identifiers: swallow the `r#` prefix.
                if b == b'r' && cursor.peek_at(1) == Some(b'#') {
                    if let Some(after) = cursor.peek_at(2) {
                        if is_ident_start(after) {
                            cursor.bump();
                            cursor.bump();
                        }
                    }
                }
                while let Some(c) = cursor.peek() {
                    if !is_ident_continue(c) {
                        break;
                    }
                    cursor.bump();
                }
                TokenKind::Ident
            }
            b if b.is_ascii_digit() => {
                // Numbers: consume digits, `_`, suffix letters, `.` when
                // followed by a digit (so `1.0` is one token but
                // `tuple.0` keeps its dot), and `e±` exponents.
                while let Some(c) = cursor.peek() {
                    let decimal_point =
                        c == b'.' && cursor.peek_at(1).map(|d| d.is_ascii_digit()) == Some(true);
                    let exponent_sign = (c == b'+' || c == b'-')
                        && matches!(
                            cursor.bytes.get(cursor.pos.wrapping_sub(1)),
                            Some(b'e' | b'E')
                        );
                    if c.is_ascii_alphanumeric() || c == b'_' || decimal_point || exponent_sign {
                        cursor.bump();
                    } else {
                        break;
                    }
                }
                TokenKind::Literal
            }
            _ => {
                cursor.bump();
                TokenKind::Punct
            }
        };
        // Raw/byte strings already consumed their text inside the match
        // guard helper, which leaves `start..cursor.pos` as the span.
        let text = source[start..cursor.pos].to_string();
        tokens.push(Token {
            kind,
            text,
            line,
            column,
        });
    }
    tokens
}

/// `'…` is either a lifetime (`'a`, `'static`, `'_`) or a char literal
/// (`'x'`, `'\n'`, `'\''`). Disambiguate by looking for the closing
/// quote after one (possibly escaped) character.
fn lex_quote(cursor: &mut Cursor) -> TokenKind {
    cursor.bump(); // the opening '
    match cursor.peek() {
        Some(b'\\') => {
            // Escape sequence: definitely a char literal. The old
            // scanner handed off to `consume_quoted` *after* eating the
            // backslash, so `'\''` ended at the escaped quote and the
            // real closing quote leaked into the stream (and `'\\'`
            // swallowed code up to the next apostrophe). Consume the
            // escape payload explicitly instead.
            cursor.bump(); // the backslash
            consume_char_escape_and_close(cursor);
            TokenKind::Literal
        }
        Some(c) if is_ident_start(c) => {
            // `'a'` is a char; `'a` (no closing quote) is a lifetime.
            let mut len = 0;
            while let Some(c) = cursor.peek() {
                if !is_ident_continue(c) {
                    break;
                }
                cursor.bump();
                len += 1;
            }
            if cursor.peek() == Some(b'\'') && len == 1 {
                cursor.bump();
                TokenKind::Literal
            } else if cursor.peek() == Some(b'\'') && len > 1 {
                // `'abc'` is not valid Rust; treat as literal and move on.
                cursor.bump();
                TokenKind::Literal
            } else {
                TokenKind::Lifetime
            }
        }
        Some(_) => {
            // `'+'` style: one non-ident char then the closing quote.
            cursor.bump();
            if cursor.peek() == Some(b'\'') {
                cursor.bump();
            }
            TokenKind::Literal
        }
        None => TokenKind::Punct,
    }
}

/// The cursor sits on the first byte of a char-literal escape payload
/// (the backslash is already consumed). Consume the payload — one byte
/// for `\n`-style escapes, the hex digits of `\x7f`, the braced group
/// of `\u{…}` — and then the closing quote if present.
fn consume_char_escape_and_close(cursor: &mut Cursor) {
    match cursor.bump() {
        Some(b'x') => {
            // Up to two hex digits.
            for _ in 0..2 {
                if cursor.peek().is_some_and(|c| c.is_ascii_hexdigit()) {
                    cursor.bump();
                }
            }
        }
        Some(b'u') if cursor.peek() == Some(b'{') => {
            while let Some(c) = cursor.bump() {
                if c == b'}' {
                    break;
                }
            }
        }
        // `\n`, `\'`, `\\`, … — the single escaped byte is consumed.
        _ => {}
    }
    if cursor.peek() == Some(b'\'') {
        cursor.bump();
    }
}

/// Consume a quoted run up to an unescaped `close` byte (which is also
/// consumed). The opening delimiter must already be consumed.
fn consume_quoted(cursor: &mut Cursor, close: u8) {
    while let Some(c) = cursor.peek() {
        if c == b'\\' {
            cursor.bump();
            cursor.bump();
            continue;
        }
        cursor.bump();
        if c == close {
            return;
        }
    }
}

/// If the cursor sits on a `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'`,
/// or `c"…"` literal, consume it entirely and return true. Otherwise
/// consume nothing and return false (the caller lexes an identifier).
fn starts_prefixed_string(cursor: &mut Cursor) -> bool {
    let b0 = cursor.peek();
    let mut offset = 1;
    // Optional second prefix byte: `br"…"` and `cr"…"` raw variants.
    if matches!(b0, Some(b'b' | b'c')) && cursor.peek_at(1) == Some(b'r') {
        offset = 2;
    }
    let raw = b0 == Some(b'r') || offset == 2;
    // Count `#`s of a raw string.
    let mut hashes = 0;
    while raw && cursor.peek_at(offset + hashes) == Some(b'#') {
        hashes += 1;
    }
    match cursor.peek_at(offset + hashes) {
        Some(b'"') => {}
        Some(b'\'') if b0 == Some(b'b') && offset == 1 && hashes == 0 => {
            // b'…' byte char literal.
            cursor.bump(); // b
            cursor.bump(); // '
            if cursor.peek() == Some(b'\\') {
                cursor.bump(); // the backslash
                consume_char_escape_and_close(cursor);
            } else {
                cursor.bump();
                if cursor.peek() == Some(b'\'') {
                    cursor.bump();
                }
            }
            return true;
        }
        _ => {
            // `r#ident` raw identifiers must stay identifiers.
            return false;
        }
    }
    // Consume prefix, hashes, and the opening quote.
    for _ in 0..(offset + hashes + 1) {
        cursor.bump();
    }
    if hashes == 0 {
        if raw {
            // Raw string: no escapes; scan to the bare closing quote.
            while let Some(c) = cursor.bump() {
                if c == b'"' {
                    break;
                }
            }
        } else {
            consume_quoted(cursor, b'"');
        }
    } else {
        // Scan for `"` followed by `hashes` `#`s.
        'outer: while let Some(c) = cursor.bump() {
            if c == b'"' {
                for i in 0..hashes {
                    if cursor.peek_at(i) != Some(b'#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    cursor.bump();
                }
                break;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        tokenize(src)
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_puncts_and_numbers() {
        let toks = kinds("let x = buf[0] + 1.5e-3;");
        assert!(toks.contains(&(TokenKind::Ident, "buf".into())));
        assert!(toks.contains(&(TokenKind::Punct, "[".into())));
        assert!(toks.contains(&(TokenKind::Literal, "1.5e-3".into())));
    }

    #[test]
    fn panics_inside_strings_are_literals() {
        let toks = kinds(r##"let s = "panic!(\"no\")"; let r = r#"unwrap()"#;"##);
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "panic"));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "unwrap"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r###"let s = r#"has "quotes" and unwrap()"#; x.unwrap()"###);
        let unwraps: Vec<_> = toks
            .iter()
            .filter(|(k, t)| *k == TokenKind::Ident && t == "unwrap")
            .collect();
        assert_eq!(unwraps.len(), 1);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Lifetime && t == "'a"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Literal && t == "'x'"));
    }

    #[test]
    fn escaped_char_literals() {
        let toks = kinds(r"let q = '\''; let n = '\n'; x.unwrap()");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "unwrap"));
    }

    #[test]
    fn comments_keep_their_text_and_lines() {
        let toks = tokenize("let a = 1; // lint: allow(no-panic) because\n/* block */ let b;");
        let line_comment = toks.iter().find(|t| t.kind == TokenKind::LineComment);
        let comment = line_comment.map(|t| t.text.as_str());
        assert_eq!(comment, Some("// lint: allow(no-panic) because"));
        assert_eq!(line_comment.map(|t| t.line), Some(1));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::BlockComment && t.line == 2));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ still comment */ ident");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1], (TokenKind::Ident, "ident".into()));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let toks = kinds(r#"let b = b"panic!"; let c = b'\n'; let d = b'x'; done"#);
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "panic"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "done"));
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let toks = kinds("let r#type = 1; r#fn();");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "r#type"));
    }

    #[test]
    fn columns_are_byte_accurate() {
        let toks = tokenize("abc.unwrap()");
        let unwrap = toks.iter().find(|t| t.is_ident("unwrap")).expect("token");
        assert_eq!((unwrap.line, unwrap.column), (1, 5));
    }

    /// Regression: `'\''` used to end at the escaped quote, leaking the
    /// real closing quote as a stray token that swallowed following
    /// code; `'\\'` ran to the next apostrophe anywhere in the file.
    #[test]
    fn escaped_quote_and_backslash_char_literals_end_exactly() {
        let toks = tokenize(r"let q = '\''; let b = '\\'; x.unwrap()");
        let lits: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lits, vec![r"'\''", r"'\\'"]);
        let unwrap = toks.iter().find(|t| t.is_ident("unwrap")).expect("unwrap");
        assert_eq!((unwrap.line, unwrap.column), (1, 31));
    }

    /// Regression: hex and unicode escapes in char / byte-char literals
    /// must consume their full payload, not just one byte.
    #[test]
    fn hex_and_unicode_char_escapes() {
        let toks = tokenize(r"let a = '\x7f'; let b = '\u{1F600}'; let c = b'\xFF'; done()");
        let lits: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lits, vec![r"'\x7f'", r"'\u{1F600}'", r"b'\xFF'"]);
        let done = toks.iter().find(|t| t.is_ident("done")).expect("done");
        assert_eq!((done.line, done.column), (1, 55));
    }

    /// A multi-line raw string is one literal and the line/column of the
    /// token after it is exact (positions feed `path:line:col`
    /// diagnostics, so drift here mislocates every later finding).
    #[test]
    fn multiline_raw_string_keeps_positions_exact() {
        let src = "let s = r#\"line one\n  panic!(\"inside\")\nlast\"#;\nafter.unwrap()";
        let toks = tokenize(src);
        assert!(
            !toks.iter().any(|t| t.is_ident("panic")),
            "panic! inside a raw string must stay literal"
        );
        let after = toks.iter().find(|t| t.is_ident("after")).expect("after");
        assert_eq!((after.line, after.column), (4, 1));
        let unwrap = toks.iter().find(|t| t.is_ident("unwrap")).expect("unwrap");
        assert_eq!((unwrap.line, unwrap.column), (4, 7));
    }

    /// Raw strings whose body contains a quote followed by *fewer*
    /// hashes than the delimiter must keep scanning.
    #[test]
    fn raw_string_with_inner_quote_hash_runs() {
        let src = r####"let s = r##"inner "# quote"##; tail()"####;
        let toks = tokenize(src);
        let lit = toks
            .iter()
            .find(|t| t.kind == TokenKind::Literal)
            .expect("literal");
        assert_eq!(lit.text, r####"r##"inner "# quote"##"####);
        let tail = toks.iter().find(|t| t.is_ident("tail")).expect("tail");
        assert_eq!((tail.line, tail.column), (1, 32));
    }

    /// `cr#"…"#` C-string raw literals (Rust 1.77) lex as one literal
    /// instead of `cr` + stray punctuation.
    #[test]
    fn c_string_raw_literals() {
        let toks = tokenize(r###"let s = cr#"unwrap()"#; done()"###);
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
        assert!(toks.iter().any(|t| t.is_ident("done")));
    }

    /// Nested block comments spanning lines: the token after the
    /// comment carries the exact post-comment position.
    #[test]
    fn nested_multiline_block_comment_positions() {
        let src = "/* outer\n /* inner\n  */ still outer\n*/  after.unwrap()";
        let toks = tokenize(src);
        let comment = toks.first().expect("comment token");
        assert_eq!(comment.kind, TokenKind::BlockComment);
        assert_eq!((comment.line, comment.column), (1, 1));
        let after = toks.iter().find(|t| t.is_ident("after")).expect("after");
        assert_eq!((after.line, after.column), (4, 5));
    }

    /// An unterminated nested block comment degrades to one trailing
    /// comment token instead of panicking or looping.
    #[test]
    fn unterminated_nested_block_comment_degrades() {
        let toks = tokenize("ident /* outer /* inner */ never closed");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].kind, TokenKind::Ident);
        assert_eq!(toks[1].kind, TokenKind::BlockComment);
    }
}
