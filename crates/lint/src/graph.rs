//! The workspace call graph over [`crate::parse`]'s item trees.
//!
//! Every parsed file contributes its functions as nodes; edges are
//! resolved from body [`Op`]s using the file's `use` map, the crate's
//! module tree, impl-type receivers, and (as a last resort) a
//! unique-name match for `var.method()` calls whose method name occurs
//! exactly once in the workspace. Paths into `std`/`core`/`alloc` or
//! vendored crates produce no edges — the graph is *workspace*-exact,
//! and external effects (blocking, panicking) are modelled by the op
//! patterns in [`crate::rules`], not by edges.
//!
//! On top of the graph: BFS reachability with predecessor chains (for
//! "reachable from the reactor via a → b → c" diagnostics) and a
//! per-function transitive lock-acquisition summary for R7.

use crate::parse::{FnDef, LockKind, Op, ParsedFile, Recv};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::path::{Path, PathBuf};

/// Methods so common on std types that a unique-name fallback match
/// would be noise, never signal.
const COMMON_METHODS: &[&str] = &[
    "all",
    "any",
    "as_bytes",
    "as_mut",
    "as_ref",
    "as_slice",
    "as_str",
    "borrow",
    "borrow_mut",
    "capacity",
    "chain",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "copied",
    "count",
    "dedup",
    "drain",
    "entry",
    "enumerate",
    "eq",
    "extend",
    "filter",
    "filter_map",
    "find",
    "flat_map",
    "flatten",
    "fold",
    "get",
    "get_mut",
    "insert",
    "into_iter",
    "is_empty",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "lock",
    "map",
    "max",
    "min",
    "next",
    "parse",
    "peek",
    "pop",
    "position",
    "push",
    "read",
    "recv",
    "remove",
    "retain",
    "rev",
    "send",
    "skip",
    "sort",
    "sort_by",
    "split",
    "starts_with",
    "sum",
    "take",
    "then",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "try_into",
    "unwrap",
    "unwrap_or",
    "values",
    "wait",
    "write",
    "zip",
];

/// Path prefixes that never resolve into the workspace.
const EXTERNAL_ROOTS: &[&str] = &[
    "std",
    "core",
    "alloc",
    "libc",
    "rand",
    "proptest",
    "criterion",
    "bytes",
    "serde",
    "serde_json",
    "loom",
];

/// A function's identity in the graph.
pub type FnId = usize;

/// One graph node: a function plus where it lives.
pub struct FnNode {
    /// Workspace-relative file path (canonical form).
    pub path: PathBuf,
    /// Crate name as importable (`ripki_serve`, not `ripki-serve`).
    pub krate: String,
    /// The parsed definition.
    pub def: FnDef,
}

/// The assembled workspace.
#[derive(Default)]
pub struct Workspace {
    /// All nodes, indexed by [`FnId`].
    pub fns: Vec<FnNode>,
    /// Resolved call edges, deduplicated, caller → callees.
    pub edges: Vec<Vec<FnId>>,
    /// Per-file `use` maps: binding name → path segments.
    use_maps: HashMap<PathBuf, HashMap<String, Vec<String>>>,
    /// Glob imports per file: the module paths starred in.
    glob_uses: HashMap<PathBuf, Vec<Vec<String>>>,
    /// (crate, module-chain, fn-name) → id, for free functions.
    free_fns: HashMap<(String, Vec<String>, String), FnId>,
    /// (impl type, method name) → ids (cross-crate; usually unique).
    methods: HashMap<(String, String), Vec<FnId>>,
    /// Method name → ids across all impls, for the unique-name
    /// fallback.
    by_method_name: HashMap<String, Vec<FnId>>,
    /// Lock fields: (owner type, field name) → kind.
    pub lock_fields: HashMap<(String, String), LockKind>,
    /// Field name → owners, to resolve `self.field.lock()` when the
    /// impl type is known, and bare `name.lock()` when unique.
    lock_field_owners: HashMap<String, Vec<String>>,
    /// Lock owner type → file that declares it, so rules can scope the
    /// lock set to the concurrent crates.
    pub lock_owner_paths: HashMap<String, PathBuf>,
}

/// A resolved call edge paired with the op it came from — kept per
/// function for rule checks that need op-level positions.
pub struct ResolvedOp<'a> {
    /// The originating op.
    pub op: &'a Op,
    /// The workspace callee, when resolution found one.
    pub callee: Option<FnId>,
}

impl Workspace {
    /// Add one parsed file. `path` must be the canonical
    /// workspace-relative path (`crates/<name>/src/...`).
    pub fn add_file(&mut self, path: &Path, krate: &str, file: ParsedFile) {
        let mut use_map = HashMap::new();
        let mut globs = Vec::new();
        for u in &file.uses {
            if u.name == "*" {
                globs.push(u.path.clone());
            } else {
                use_map.insert(u.name.clone(), u.path.clone());
            }
        }
        self.use_maps.insert(path.to_path_buf(), use_map);
        self.glob_uses.insert(path.to_path_buf(), globs);
        for lf in &file.lock_fields {
            self.lock_fields
                .insert((lf.owner.clone(), lf.field.clone()), lf.kind);
            self.lock_field_owners
                .entry(lf.field.clone())
                .or_default()
                .push(lf.owner.clone());
            self.lock_owner_paths
                .entry(lf.owner.clone())
                .or_insert_with(|| path.to_path_buf());
        }
        let file_module = file_module_chain(path);
        for def in file.fns {
            let id = self.fns.len();
            let mut module = file_module.clone();
            module.extend(def.module.iter().cloned());
            if let Some(ty) = &def.impl_type {
                self.methods
                    .entry((ty.clone(), def.name.clone()))
                    .or_default()
                    .push(id);
                self.by_method_name
                    .entry(def.name.clone())
                    .or_default()
                    .push(id);
            } else {
                self.free_fns
                    .entry((krate.to_string(), module.clone(), def.name.clone()))
                    .or_insert(id);
            }
            self.fns.push(FnNode {
                path: path.to_path_buf(),
                krate: krate.to_string(),
                def,
            });
        }
    }

    /// Resolve all edges. Call once after every file is added.
    pub fn link(&mut self, crate_names: &BTreeSet<String>) {
        self.edges = (0..self.fns.len())
            .map(|id| {
                let mut out = BTreeSet::new();
                for op in &self.fns[id].def.ops {
                    if let Some(callee) = self.resolve_op(id, op, crate_names) {
                        if callee != id {
                            out.insert(callee);
                        }
                    }
                }
                out.into_iter().collect()
            })
            .collect();
    }

    /// Resolve one op to a workspace callee, if any.
    pub fn resolve_op(
        &self,
        caller: FnId,
        op: &Op,
        crate_names: &BTreeSet<String>,
    ) -> Option<FnId> {
        let node = &self.fns[caller];
        match op {
            Op::Call { path, .. } => self.resolve_path_call(node, path, crate_names),
            Op::Method { name, recv, .. } => self.resolve_method(node, name, recv),
            _ => None,
        }
    }

    fn resolve_path_call(
        &self,
        node: &FnNode,
        path: &[String],
        crate_names: &BTreeSet<String>,
    ) -> Option<FnId> {
        match path {
            [] => None,
            [name] => {
                // Bare call: same module, then use map, then glob
                // imports.
                let module = self.module_of(node);
                if let Some(&id) =
                    self.free_fns
                        .get(&(node.krate.clone(), module.clone(), name.clone()))
                {
                    return Some(id);
                }
                if let Some(full) = self.use_maps.get(&node.path).and_then(|m| m.get(name)) {
                    return self.resolve_absolute(node, full, crate_names);
                }
                for glob in self.glob_uses.get(&node.path).into_iter().flatten() {
                    let mut full = glob.clone();
                    full.push(name.clone());
                    if let Some(id) = self.resolve_absolute(node, &full, crate_names) {
                        return Some(id);
                    }
                }
                // Enclosing modules up to the crate root (Rust requires
                // explicit `self::`/`super::` for parents, but a bare
                // name also finds items in ancestor scopes of the same
                // file's nested mods; cheap and safe to try).
                let mut prefix = module;
                while prefix.pop().is_some() {
                    if let Some(&id) =
                        self.free_fns
                            .get(&(node.krate.clone(), prefix.clone(), name.clone()))
                    {
                        return Some(id);
                    }
                }
                None
            }
            [head, rest @ ..] => {
                // Qualified path. `Type::method` first: a two-segment
                // path whose head is a known impl type (directly or via
                // an alias).
                if rest.len() == 1 {
                    let ty = if head == "Self" {
                        node.def.impl_type.clone()
                    } else {
                        Some(head.clone())
                    };
                    if let Some(ty) = ty {
                        let ty = self
                            .use_maps
                            .get(&node.path)
                            .and_then(|m| m.get(&ty))
                            .and_then(|p| p.last())
                            .cloned()
                            .unwrap_or(ty);
                        if let Some(ids) = self.methods.get(&(ty, rest[0].clone())) {
                            if let [id] = ids.as_slice() {
                                return Some(*id);
                            }
                        }
                    }
                }
                // Absolute or use-aliased module path.
                let mut full: Vec<String> = Vec::new();
                if let Some(mapped) = self.use_maps.get(&node.path).and_then(|m| m.get(head)) {
                    full.extend(mapped.iter().cloned());
                    full.extend(rest.iter().cloned());
                } else {
                    full.push(head.clone());
                    full.extend(rest.iter().cloned());
                }
                self.resolve_absolute(node, &full, crate_names)
            }
        }
    }

    /// Resolve a fully-spelled path (`crate::a::f`, `super::f`,
    /// `ripki_payload::json::encode`, …) to a free fn or a
    /// `Type::method`.
    fn resolve_absolute(
        &self,
        node: &FnNode,
        path: &[String],
        crate_names: &BTreeSet<String>,
    ) -> Option<FnId> {
        let (krate, segs): (String, Vec<String>) = match path.first().map(String::as_str) {
            Some("crate") => (node.krate.clone(), path[1..].to_vec()),
            Some("self") => {
                let mut m = self.module_of(node);
                m.extend(path[1..].iter().cloned());
                (node.krate.clone(), m)
            }
            Some("super") => {
                let mut m = self.module_of(node);
                let mut rest = path;
                while rest.first().map(String::as_str) == Some("super") {
                    m.pop();
                    rest = &rest[1..];
                }
                m.extend(rest.iter().cloned());
                (node.krate.clone(), m)
            }
            Some(head) if EXTERNAL_ROOTS.contains(&head) => return None,
            Some(head) if crate_names.contains(head) => (head.to_string(), path[1..].to_vec()),
            // Unanchored multi-segment path: relative to the current
            // module (`mod sub; … sub::helper()`).
            Some(_) => {
                let mut m = self.module_of(node);
                m.extend(path.iter().cloned());
                (node.krate.clone(), m)
            }
            None => return None,
        };
        let [module @ .., name] = segs.as_slice() else {
            return None;
        };
        if let Some(&id) = self
            .free_fns
            .get(&(krate.clone(), module.to_vec(), name.clone()))
        {
            return Some(id);
        }
        // `path::Type::method` — second-to-last segment an impl type.
        if let [_module_rest @ .., ty] = module {
            if ty.starts_with(char::is_uppercase) {
                if let Some(ids) = self.methods.get(&(ty.clone(), name.clone())) {
                    if let [id] = ids.as_slice() {
                        return Some(*id);
                    }
                }
            }
        }
        None
    }

    fn resolve_method(&self, node: &FnNode, name: &str, recv: &Recv) -> Option<FnId> {
        match recv {
            Recv::SelfRecv => {
                let ty = node.def.impl_type.as_ref()?;
                match self
                    .methods
                    .get(&(ty.clone(), name.to_string()))?
                    .as_slice()
                {
                    [id] => Some(*id),
                    ids => ids
                        .iter()
                        .copied()
                        .find(|&id| self.fns[id].krate == node.krate),
                }
            }
            Recv::Field(_) | Recv::Var(_) | Recv::Expr => {
                // Unique-name fallback: method names that exist exactly
                // once in the workspace and are not std noise resolve
                // even without type information. This is what makes
                // 2-hop chains like `conn.machine.step()` traceable.
                if COMMON_METHODS.contains(&name) {
                    return None;
                }
                match self.by_method_name.get(name)?.as_slice() {
                    [id] => Some(*id),
                    _ => None,
                }
            }
        }
    }

    fn module_of(&self, node: &FnNode) -> Vec<String> {
        let mut m = file_module_chain(&node.path);
        m.extend(node.def.module.iter().cloned());
        m
    }

    /// BFS from `roots`; returns, for each reached fn, its predecessor
    /// (and the root is its own predecessor). Test fns are never
    /// traversed.
    pub fn reach(&self, roots: &[FnId]) -> HashMap<FnId, FnId> {
        self.reach_excluding(roots, &BTreeSet::new())
    }

    /// [`Workspace::reach`] that never enters `skip` nodes — used by R6
    /// so traversal stops at the blessed poll/idle-sweep sites.
    pub fn reach_excluding(&self, roots: &[FnId], skip: &BTreeSet<FnId>) -> HashMap<FnId, FnId> {
        let mut pred: HashMap<FnId, FnId> = HashMap::new();
        let mut queue: VecDeque<FnId> = VecDeque::new();
        for &r in roots {
            if !self.fns[r].def.is_test && !skip.contains(&r) {
                pred.insert(r, r);
                queue.push_back(r);
            }
        }
        while let Some(id) = queue.pop_front() {
            for &next in &self.edges[id] {
                if self.fns[next].def.is_test || skip.contains(&next) {
                    continue;
                }
                if let std::collections::hash_map::Entry::Vacant(e) = pred.entry(next) {
                    e.insert(id);
                    queue.push_back(next);
                }
            }
        }
        pred
    }

    /// Render the call chain root → … → `id` as `a::b → c::d` for
    /// diagnostics.
    pub fn chain_text(&self, pred: &HashMap<FnId, FnId>, id: FnId) -> String {
        let mut chain = vec![id];
        let mut cur = id;
        while let Some(&p) = pred.get(&cur) {
            if p == cur {
                break;
            }
            chain.push(p);
            cur = p;
        }
        chain.reverse();
        chain
            .iter()
            .map(|&f| self.fn_label(f))
            .collect::<Vec<_>>()
            .join(" -> ")
    }

    /// `Type::name` or plain `name`, qualified enough to find.
    pub fn fn_label(&self, id: FnId) -> String {
        let node = &self.fns[id];
        match &node.def.impl_type {
            Some(ty) => format!("{ty}::{}", node.def.name),
            None => node.def.name.clone(),
        }
    }

    /// Find a function by `(path-suffix, impl type, name)`.
    pub fn find_fn(&self, path_suffix: &str, impl_type: Option<&str>, name: &str) -> Option<FnId> {
        self.fns.iter().position(|n| {
            n.path.to_string_lossy().ends_with(path_suffix)
                && n.def.impl_type.as_deref() == impl_type
                && n.def.name == name
        })
    }

    /// The lock id `"Owner.field"` for a lock-acquiring method op, if
    /// the receiver names a known lock field. `.lock()` acquires a
    /// Mutex; `.read()`/`.write()` acquire a RwLock (only counted on
    /// fields known to *be* RwLocks — IO reads/writes don't match
    /// because their receivers aren't lock fields).
    pub fn lock_acquired(&self, node: &FnNode, name: &str, recv: &Recv) -> Option<String> {
        let field = match recv {
            Recv::Field(f) => f,
            Recv::Var(v) => v,
            _ => return None,
        };
        let owners = self.lock_field_owners.get(field)?;
        // Prefer the impl type of the enclosing fn; else unique owner.
        let owner = match &node.def.impl_type {
            Some(ty) if owners.contains(ty) => ty.clone(),
            _ => match owners.as_slice() {
                [one] => one.clone(),
                _ => return None,
            },
        };
        let kind = *self.lock_fields.get(&(owner.clone(), field.clone()))?;
        let acquires = match kind {
            LockKind::Mutex => name == "lock",
            LockKind::RwLock => name == "read" || name == "write",
        };
        acquires.then(|| format!("{owner}.{field}"))
    }

    /// Per-function transitive lock-acquisition summary: fixpoint over
    /// the call graph of "locks this fn (or anything it calls) takes".
    pub fn transitive_locks(&self) -> Vec<BTreeSet<String>> {
        let mut own: Vec<BTreeSet<String>> = Vec::with_capacity(self.fns.len());
        for node in &self.fns {
            let mut set = BTreeSet::new();
            for op in &node.def.ops {
                if let Op::Method { name, recv, .. } = op {
                    if let Some(lock) = self.lock_acquired(node, name, recv) {
                        set.insert(lock);
                    }
                }
            }
            own.push(set);
        }
        // Propagate along reversed edges until stable. The graph is
        // small (hundreds of fns); a simple fixpoint is fine.
        let mut changed = true;
        while changed {
            changed = false;
            for id in 0..self.fns.len() {
                let mut add: Vec<String> = Vec::new();
                for &callee in &self.edges[id] {
                    for lock in &own[callee] {
                        if !own[id].contains(lock) {
                            add.push(lock.clone());
                        }
                    }
                }
                if !add.is_empty() {
                    own[id].extend(add);
                    changed = true;
                }
            }
        }
        own
    }
}

/// `crates/serve/src/reactor.rs` → `["reactor"]`; `…/src/lib.rs` and
/// `…/src/main.rs` → `[]`; `…/src/sub/mod.rs` → `["sub"]`;
/// `…/src/bin/x.rs` → `[]` (its own root).
pub fn file_module_chain(path: &Path) -> Vec<String> {
    let mut segs: Vec<String> = Vec::new();
    let mut in_src = false;
    for comp in path.components() {
        let s = comp.as_os_str().to_string_lossy();
        if !in_src {
            if s == "src" {
                in_src = true;
            }
            continue;
        }
        segs.push(s.into_owned());
    }
    if !in_src {
        return Vec::new();
    }
    let Some(last) = segs.pop() else {
        return Vec::new();
    };
    let stem = last.strip_suffix(".rs").unwrap_or(&last);
    match stem {
        "lib" | "main" | "mod" => {}
        _ => segs.push(stem.to_string()),
    }
    if segs.first().map(String::as_str) == Some("bin") {
        segs.clear();
    }
    segs
}

/// First witness of a lock-order edge: `(path, line, column,
/// description)` of the acquisition that created it.
pub type EdgeWitness = (PathBuf, usize, usize, String);

/// One detected inversion: the offending `(held, acquired)` direction
/// plus the witness of the edge to fix.
pub type CycleFinding<'a> = ((String, String), &'a EdgeWitness);

/// Directed lock-order graph: `order[a]` contains `b` when some path
/// holds `a` while (transitively) acquiring `b`. A cycle means two
/// paths disagree on acquisition order.
#[derive(Default)]
pub struct LockOrder {
    /// Edge → first witness.
    pub edges: BTreeMap<(String, String), EdgeWitness>,
}

impl LockOrder {
    /// Record `held` then `acquired` at a source position.
    pub fn record(
        &mut self,
        held: &str,
        acquired: &str,
        path: &Path,
        line: usize,
        column: usize,
        via: String,
    ) {
        if held == acquired {
            return;
        }
        self.edges
            .entry((held.to_string(), acquired.to_string()))
            .or_insert_with(|| (path.to_path_buf(), line, column, via));
    }

    /// Find cycles: returns each reversed pair `(a, b)` where both
    /// `a→b` and `b→a` exist, plus any longer cycle detected by DFS,
    /// with the witness of the lexically-later edge (the one to fix).
    pub fn cycles(&self) -> Vec<CycleFinding<'_>> {
        let mut out = Vec::new();
        // Direct inversions first — the common case and the clearest
        // diagnostic.
        for (edge, witness) in &self.edges {
            let rev = (edge.1.clone(), edge.0.clone());
            if self.edges.contains_key(&rev) && edge.0 < edge.1 {
                // Report the lexically-greater direction as the
                // violation (stable choice; the fixture pins it).
                let (e, w) = (rev.clone(), &self.edges[&rev]);
                out.push((e, w));
            }
            let _ = witness;
        }
        // Longer cycles via DFS coloring.
        let nodes: BTreeSet<&String> = self.edges.keys().flat_map(|(a, b)| [a, b]).collect();
        let mut color: HashMap<&String, u8> = HashMap::new();
        let mut stack_edges: Vec<(String, String)> = Vec::new();
        for &start in &nodes {
            if color.get(start).copied().unwrap_or(0) != 0 {
                continue;
            }
            self.dfs(start, &mut color, &mut stack_edges, &mut out);
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out.dedup_by(|a, b| a.0 == b.0);
        out
    }

    fn dfs<'a>(
        &'a self,
        node: &'a String,
        color: &mut HashMap<&'a String, u8>,
        stack: &mut Vec<(String, String)>,
        out: &mut Vec<CycleFinding<'a>>,
    ) {
        color.insert(node, 1);
        for ((a, b), witness) in &self.edges {
            if a != node {
                continue;
            }
            match color.get(b).copied().unwrap_or(0) {
                1 => {
                    // Back edge → cycle; skip 2-cycles already reported
                    // by the direct-inversion pass.
                    let rev = (b.clone(), a.clone());
                    if !self.edges.contains_key(&rev) {
                        out.push(((a.clone(), b.clone()), witness));
                    }
                }
                0 => {
                    stack.push((a.clone(), b.clone()));
                    self.dfs(b, color, stack, out);
                    stack.pop();
                }
                _ => {}
            }
        }
        color.insert(node, 2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::tokenize;
    use crate::parse::parse_file;

    fn ws(files: &[(&str, &str, &str)]) -> Workspace {
        let mut w = Workspace::default();
        let mut names = BTreeSet::new();
        for (krate, _, _) in files {
            names.insert(krate.to_string());
        }
        for (krate, path, src) in files {
            let sig: Vec<_> = tokenize(src)
                .into_iter()
                .filter(|t| !t.is_comment())
                .collect();
            w.add_file(Path::new(path), krate, parse_file(&sig));
        }
        w.link(&names);
        w
    }

    fn edge(
        w: &Workspace,
        from: (&str, Option<&str>, &str),
        to: (&str, Option<&str>, &str),
    ) -> bool {
        let f = w.find_fn(from.0, from.1, from.2).expect("from fn");
        let t = w.find_fn(to.0, to.1, to.2).expect("to fn");
        w.edges[f].contains(&t)
    }

    #[test]
    fn same_module_and_use_resolution() {
        let w = ws(&[
            (
                "ripki_serve",
                "crates/serve/src/http.rs",
                "use ripki_payload::json::encode;\n\
                 fn respond() { encode(); local(); }\nfn local() {}\n",
            ),
            (
                "ripki_payload",
                "crates/payload/src/json.rs",
                "pub fn encode() { inner(); }\nfn inner() {}\n",
            ),
        ]);
        assert!(edge(
            &w,
            ("http.rs", None, "respond"),
            ("json.rs", None, "encode")
        ));
        assert!(edge(
            &w,
            ("http.rs", None, "respond"),
            ("http.rs", None, "local")
        ));
        assert!(edge(
            &w,
            ("json.rs", None, "encode"),
            ("json.rs", None, "inner")
        ));
    }

    #[test]
    fn two_hop_cross_crate_reachability_with_chain() {
        let w = ws(&[
            (
                "ripki_serve",
                "crates/serve/src/reactor.rs",
                "impl Reactor { fn turn(&mut self) { self.dispatch(); } \
                 fn dispatch(&mut self) { ripki_payload::json::encode(); } }",
            ),
            (
                "ripki_payload",
                "crates/payload/src/json.rs",
                "pub fn encode() { deep(); }\nfn deep() {}\n",
            ),
        ]);
        let turn = w.find_fn("reactor.rs", Some("Reactor"), "turn").unwrap();
        let deep = w.find_fn("json.rs", None, "deep").unwrap();
        let pred = w.reach(&[turn]);
        assert!(pred.contains_key(&deep));
        assert_eq!(
            w.chain_text(&pred, deep),
            "Reactor::turn -> Reactor::dispatch -> encode -> deep"
        );
    }

    #[test]
    fn test_fns_are_not_traversed() {
        let w = ws(&[(
            "ripki_serve",
            "crates/serve/src/lib.rs",
            "fn root() { helper(); }\n#[cfg(test)]\nmod tests { \
             pub fn helper() { super::dangerous(); } }\nfn dangerous() {}\n",
        )]);
        let root = w.find_fn("lib.rs", None, "root").unwrap();
        let dangerous = w.find_fn("lib.rs", None, "dangerous").unwrap();
        let pred = w.reach(&[root]);
        assert!(!pred.contains_key(&dangerous));
    }

    #[test]
    fn self_method_and_type_method_resolution() {
        let w = ws(&[(
            "ripki_rtr",
            "crates/rtr/src/pdu.rs",
            "impl Pdu { fn parse(b: &[u8]) -> Pdu { Pdu::validate(b); todo() } \
             fn validate(b: &[u8]) {} }\nfn todo() -> Pdu { loop {} }\n",
        )]);
        assert!(edge(
            &w,
            ("pdu.rs", Some("Pdu"), "parse"),
            ("pdu.rs", Some("Pdu"), "validate")
        ));
        assert!(edge(
            &w,
            ("pdu.rs", Some("Pdu"), "parse"),
            ("pdu.rs", None, "todo")
        ));
    }

    #[test]
    fn unique_method_name_fallback_and_common_name_refusal() {
        let w = ws(&[
            (
                "ripki_serve",
                "crates/serve/src/conn.rs",
                "impl Conn { fn on_ready(&mut self, m: Machine) { m.step_machine(); m.len(); } }",
            ),
            (
                "ripki_serve",
                "crates/serve/src/machine.rs",
                "impl Machine { pub fn step_machine(&mut self) {} pub fn len(&self) -> usize { 0 } }",
            ),
        ]);
        assert!(edge(
            &w,
            ("conn.rs", Some("Conn"), "on_ready"),
            ("machine.rs", Some("Machine"), "step_machine")
        ));
        // `len` is on the common-method deny list: no edge even though
        // the workspace has exactly one `len`.
        let f = w.find_fn("conn.rs", Some("Conn"), "on_ready").unwrap();
        let t = w.find_fn("machine.rs", Some("Machine"), "len").unwrap();
        assert!(!w.edges[f].contains(&t));
    }

    #[test]
    fn std_paths_produce_no_edges() {
        let w = ws(&[(
            "ripki_serve",
            "crates/serve/src/lib.rs",
            "fn f() { std::thread::sleep(d); String::from(\"x\"); }",
        )]);
        let f = w.find_fn("lib.rs", None, "f").unwrap();
        assert!(w.edges[f].is_empty());
    }

    #[test]
    fn lock_fields_and_transitive_locks() {
        let w = ws(&[(
            "ripki_serve",
            "crates/serve/src/pool.rs",
            "pub struct Q { queue: Mutex<V> }\n\
             pub struct S { inner: RwLock<A> }\n\
             impl Q { fn push_job(&self) { self.queue.lock(); } }\n\
             impl S { fn publish(&self) { self.inner.write(); self.helper(); } \
             fn helper(&self) {} }\n\
             fn outer(q: &Q) { q.push_job(); }\n",
        )]);
        let locks = w.transitive_locks();
        let push = w.find_fn("pool.rs", Some("Q"), "push_job").unwrap();
        let publish = w.find_fn("pool.rs", Some("S"), "publish").unwrap();
        let outer = w.find_fn("pool.rs", None, "outer").unwrap();
        assert!(locks[push].contains("Q.queue"));
        assert!(locks[publish].contains("S.inner"));
        // `q.push_job()` resolves via unique-name fallback → outer
        // transitively takes Q.queue.
        assert!(locks[outer].contains("Q.queue"));
    }

    #[test]
    fn lock_order_cycle_detection() {
        let mut order = LockOrder::default();
        let p = Path::new("crates/serve/src/a.rs");
        order.record("A.x", "B.y", p, 1, 1, "f".into());
        order.record("B.y", "A.x", p, 9, 5, "g".into());
        let cycles = order.cycles();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].0, ("B.y".to_string(), "A.x".to_string()));
        assert_eq!(cycles[0].1 .1, 9);
    }

    #[test]
    fn module_chains_from_paths() {
        assert_eq!(
            file_module_chain(Path::new("crates/serve/src/reactor.rs")),
            vec!["reactor".to_string()]
        );
        assert!(file_module_chain(Path::new("crates/serve/src/lib.rs")).is_empty());
        assert_eq!(
            file_module_chain(Path::new("crates/rpki/src/sub/mod.rs")),
            vec!["sub".to_string()]
        );
        assert!(file_module_chain(Path::new("src/main.rs")).is_empty());
        assert!(file_module_chain(Path::new("crates/cli/src/bin/probe.rs")).is_empty());
    }
}
