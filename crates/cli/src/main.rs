//! Binary entry point; all command logic lives in `ripki_cli::run`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match ripki_cli::run(&args, &mut std::io::stdout()) {
        Ok(()) => {}
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
