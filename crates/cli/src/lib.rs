//! # ripki-cli
//!
//! The command-line face of the workspace — what an operator or
//! researcher would actually run. Everything is file-based, using the
//! workspace's interchange formats (zone files, RIS-style table dumps,
//! RPKI archives), so worlds can be generated once and re-analysed many
//! times:
//!
//! ```text
//! ripki-cli generate --domains 20000 --seed 42 --out world/
//! ripki-cli validate --data world/
//! ripki-cli rov --data world/ 85.1.0.0/16 AS100
//! ripki-cli study --data world/ --bin 2000
//! ripki-cli rtr-serve --data world/ --listen 127.0.0.1:8282
//! ```
//!
//! The library exposes [`run`] so tests drive the exact code path the
//! binary uses, with output captured.

use ripki::classify::HttpArchiveClassifier;
use ripki::engine::StudyEngine;
use ripki::exposure::{exposure_curve, ExposureConfig};
use ripki::figures;
use ripki::pipeline::PipelineConfig;
use ripki::report::HeadlineStats;
use ripki::tables;
use ripki_bgp::dump::TableDump;
use ripki_bgp::rov::{RouteOriginValidator, RpkiState, VrpTriple};
use ripki_dns::DomainName;
use ripki_net::{Asn, IpPrefix};
use ripki_rpki::time::SimTime;
use ripki_rpki::validate;
use ripki_websim::churn::{ChurnConfig, ChurnStream};
use ripki_websim::{Scenario, ScenarioConfig};
use std::fmt;
use std::io::Write;
use std::path::{Path, PathBuf};

/// CLI failures, each mapping to a non-zero exit.
#[derive(Debug)]
pub enum CliError {
    /// No or unknown subcommand.
    Usage(String),
    /// A flag was malformed or missing its value.
    BadFlag(String),
    /// Filesystem problem.
    Io(std::io::Error),
    /// A data file failed to parse.
    Data(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(s) => write!(f, "{s}\n\n{USAGE}"),
            CliError::BadFlag(s) => write!(f, "bad flag: {s}"),
            CliError::Io(e) => write!(f, "I/O error: {e}"),
            CliError::Data(s) => write!(f, "data error: {s}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> CliError {
        CliError::Io(e)
    }
}

/// Top-level usage text.
pub const USAGE: &str = "\
ripki-cli — the RiPKI reproduction toolbox

USAGE:
  ripki-cli generate --out DIR [--domains N] [--seed S]
      build a synthetic world and write its data files
  ripki-cli validate --data DIR
      cryptographically validate the RPKI archive, print VRPs
  ripki-cli rov --data DIR PREFIX ASN
      RFC 6811 validation state of one announcement
  ripki-cli study --data DIR [--bin N]
      run the full four-step measurement from the data files
  ripki-cli rtr-serve --data DIR --listen ADDR
      validate, then serve the VRPs over RPKI-to-Router (RFC 6810)
  ripki-cli longitudinal [--domains N] [--seed S] [--epochs E]
                         [--churn-seed C] [--stride K] [--threads T]
                         [--slurm FILE]
      replay E epochs of world churn through the incremental engine
      and report validation outcome + hijack exposure over time
      (--threads 0 = auto-detect; the RIPKI_THREADS env var overrides)
  ripki-cli serve [--domains N] [--seed S] [--listen ADDR]
                  [--rtr-listen ADDR] [--epochs E] [--epoch-interval-ms MS]
                  [--churn-seed C] [--stride K] [--exit-after-churn BOOL]
                  [--slurm FILE] [--http-workers W] [--max-conns N]
                  [--idle-timeout-ms MS] [--read-deadline-ms MS]
                  [--write-stall-ms MS]
      measure a synthetic world and serve it over the HTTP query plane
      (validity API, VRP exports, domain lookups, Prometheus metrics),
      optionally alongside an RTR cache, applying E churn epochs live;
      --slurm layers RFC 8416 local exceptions over every serving plane.
      The HTTP plane is a poll(2) event loop: --max-conns sets the
      connection watermark (LRA idle shedding beyond it),
      --idle-timeout-ms drops silent keep-alive peers,
      --read-deadline-ms bounds slow-loris partial reads (408), and
      --write-stall-ms drops stalled writers
  ripki-cli whatif [--domains N] [--seed S] [--stride K] [--bin B]
                   [--rov F] [--threads T] [--out FILE]
                   [--scenario SPEC]...
      run a ROV-deployment counterfactual: measure the baseline hijack
      exposure curve, compile the declarative scenario levers into one
      synthetic churn epoch, re-measure, and report capture-rate deltas
      per rank bin (CSV written to FILE). SPEC is one of
        cdn-signs:NAME         CDN NAME signs ROAs for all its prefixes
        top-k-drop-invalid:K   operators of the top-K ranks drop Invalids
        revoke-class:CLASS     revoke every ROA issued by operators of
                               CLASS (isp|webhoster|cdn|enterprise)
      with no --scenario the run reproduces the baseline exactly
  ripki-cli proxy --config FILE [--exit-after-drain BOOL]
      run a VRP distribution fabric (units → combinators → targets)
      declared in FILE; targets keep serving after finite units drain
      (--exit-after-drain only returns for engine-rooted pipelines)
  ripki-cli rtr-probe --connect ADDR [--timeout-ms MS]
      sync once against an RTR cache and print its session, serial,
      and payload summary (epoch, VRP count, digest)
  ripki-cli help
      this text";

/// Tiny flag parser: `--key value` pairs plus positionals.
struct Flags {
    pairs: Vec<(String, String)>,
    positional: Vec<String>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Flags, CliError> {
        let mut pairs = Vec::new();
        let mut positional = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                let value = it
                    .next()
                    .ok_or_else(|| CliError::BadFlag(format!("--{key} needs a value")))?;
                pairs.push((key.to_string(), value.clone()));
            } else {
                positional.push(a.clone());
            }
        }
        Ok(Flags { pairs, positional })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Every occurrence of a repeatable flag, in argument order
    /// (`--scenario a --scenario b`).
    fn get_all(&self, key: &str) -> Vec<&str> {
        self.pairs
            .iter()
            .filter(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::BadFlag(format!("--{key} {v}: cannot parse"))),
        }
    }

    fn require(&self, key: &str) -> Result<&str, CliError> {
        self.get(key)
            .ok_or_else(|| CliError::BadFlag(format!("--{key} is required")))
    }
}

/// Dispatch a full argument vector (without the program name).
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let Some(command) = args.first() else {
        return Err(CliError::Usage("no subcommand".into()));
    };
    let flags = Flags::parse(&args[1..])?;
    match command.as_str() {
        "generate" => cmd_generate(&flags, out),
        "validate" => cmd_validate(&flags, out),
        "rov" => cmd_rov(&flags, out),
        "study" => cmd_study(&flags, out),
        "rtr-serve" => cmd_rtr_serve(&flags, out),
        "longitudinal" => cmd_longitudinal(&flags, out),
        "whatif" => cmd_whatif(&flags, out),
        "serve" => cmd_serve(&flags, out),
        "proxy" => cmd_proxy(&flags, out),
        "rtr-probe" => cmd_rtr_probe(&flags, out),
        "help" | "--help" | "-h" => {
            writeln!(out, "{USAGE}")?;
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown subcommand {other:?}"))),
    }
}

// ---- data directory layout -------------------------------------------------

fn ranking_path(dir: &Path) -> PathBuf {
    dir.join("ranking.txt")
}
fn zones_path(dir: &Path) -> PathBuf {
    dir.join("zones.zone")
}
fn table_path(dir: &Path) -> PathBuf {
    dir.join("table.dump")
}
fn rpki_path(dir: &Path) -> PathBuf {
    dir.join("rpki")
}
fn meta_path(dir: &Path) -> PathBuf {
    dir.join("meta.txt")
}

struct World {
    ranking: Vec<DomainName>,
    zones: ripki_dns::ZoneStore,
    rib: ripki_bgp::Rib,
    repository: ripki_rpki::Repository,
    now: SimTime,
}

fn load_world(dir: &Path) -> Result<World, CliError> {
    let ranking_text = std::fs::read_to_string(ranking_path(dir))?;
    let ranking: Result<Vec<DomainName>, _> = ranking_text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(DomainName::parse)
        .collect();
    let ranking = ranking.map_err(|e| CliError::Data(format!("ranking.txt: {e}")))?;
    let zones = ripki_dns::zonefile::parse(&std::fs::read_to_string(zones_path(dir))?)
        .map_err(|e| CliError::Data(format!("zones.zone: {e}")))?;
    let rib = TableDump::parse(&std::fs::read_to_string(table_path(dir))?)
        .map_err(|e| CliError::Data(format!("table.dump: {e}")))?;
    let repository = ripki_rpki::load_archive(&rpki_path(dir))
        .map_err(|e| CliError::Data(format!("rpki/: {e}")))?;
    let meta = std::fs::read_to_string(meta_path(dir)).unwrap_or_default();
    let now = meta
        .lines()
        .find_map(|l| l.strip_prefix("now: "))
        .and_then(|v| v.trim().parse::<u64>().ok())
        .map_or_else(SimTime::start_of_study, SimTime);
    Ok(World {
        ranking,
        zones,
        rib,
        repository,
        now,
    })
}

// ---- subcommands -----------------------------------------------------------

fn cmd_generate(flags: &Flags, out: &mut dyn Write) -> Result<(), CliError> {
    let dir = PathBuf::from(flags.require("out")?);
    let domains: usize = flags.get_parsed("domains", 20_000)?;
    let seed: u64 = flags.get_parsed("seed", 42)?;
    writeln!(out, "generating world: {domains} domains, seed {seed}")?;
    let scenario = Scenario::build(ScenarioConfig {
        seed,
        ..ScenarioConfig::with_domains(domains)
    });

    std::fs::create_dir_all(&dir)?;
    let mut ranking_text = String::new();
    for name in &scenario.ranking {
        ranking_text.push_str(name.as_str());
        ranking_text.push('\n');
    }
    std::fs::write(ranking_path(&dir), ranking_text)?;

    // Export every name the resolver may touch: listed names, both
    // forms, their chains, and asset subdomains.
    let mut all_names: Vec<DomainName> = Vec::new();
    let resolver = ripki_dns::Resolver::new(&scenario.zones, ripki_dns::Vantage::GOOGLE_DNS_BERLIN);
    for listed in &scenario.ranking {
        let bare = listed.without_www();
        for form in [bare.clone(), bare.with_www()] {
            if let Ok(res) = resolver.resolve(&form) {
                all_names.push(form);
                all_names.extend(res.cname_chain);
            }
        }
        if let Ok(static_name) = DomainName::parse(&format!("static.{bare}")) {
            if let Ok(res) = resolver.resolve(&static_name) {
                all_names.push(static_name);
                all_names.extend(res.cname_chain);
            }
        }
    }
    let zone_text = ripki_dns::zonefile::export(&scenario.zones, &mut all_names.iter());
    std::fs::write(zones_path(&dir), zone_text)?;
    std::fs::write(table_path(&dir), TableDump::to_string(&scenario.rib))?;
    ripki_rpki::save_archive(&scenario.repository, &rpki_path(&dir))
        .map_err(|e| CliError::Data(e.to_string()))?;
    std::fs::write(
        meta_path(&dir),
        format!(
            "now: {}\nseed: {seed}\ndomains: {domains}\n",
            scenario.now.as_secs()
        ),
    )?;
    writeln!(
        out,
        "wrote {}: {} names, {} table entries, {} ROAs",
        dir.display(),
        scenario.ranking.len(),
        scenario.rib.len(),
        scenario.repository.roa_count(),
    )?;
    Ok(())
}

fn cmd_validate(flags: &Flags, out: &mut dyn Write) -> Result<(), CliError> {
    let dir = PathBuf::from(flags.require("data")?);
    let repository =
        ripki_rpki::load_archive(&rpki_path(&dir)).map_err(|e| CliError::Data(e.to_string()))?;
    let meta = std::fs::read_to_string(meta_path(&dir)).unwrap_or_default();
    let now = meta
        .lines()
        .find_map(|l| l.strip_prefix("now: "))
        .and_then(|v| v.trim().parse::<u64>().ok())
        .map_or_else(SimTime::start_of_study, SimTime);
    let report = validate(&repository, now);
    writeln!(
        out,
        "validated at T+{}s: {} accepted, {} rejected, {} VRPs",
        now.as_secs(),
        report.accepted_count(),
        report.rejected_count(),
        report.vrps.len(),
    )?;
    for vrp in &report.vrps {
        writeln!(out, "  {vrp}")?;
    }
    for event in report.rejections() {
        writeln!(
            out,
            "  REJECTED {} — {}",
            event.object,
            event.rejected.as_ref().expect("rejections() filters")
        )?;
    }
    Ok(())
}

fn build_validator(dir: &Path) -> Result<(RouteOriginValidator, SimTime), CliError> {
    let repository =
        ripki_rpki::load_archive(&rpki_path(dir)).map_err(|e| CliError::Data(e.to_string()))?;
    let meta = std::fs::read_to_string(meta_path(dir)).unwrap_or_default();
    let now = meta
        .lines()
        .find_map(|l| l.strip_prefix("now: "))
        .and_then(|v| v.trim().parse::<u64>().ok())
        .map_or_else(SimTime::start_of_study, SimTime);
    let report = validate(&repository, now);
    let validator = RouteOriginValidator::from_vrps(report.vrps.iter().map(|v| VrpTriple {
        prefix: v.prefix,
        max_length: v.max_length,
        asn: v.asn,
    }));
    Ok((validator, now))
}

fn cmd_rov(flags: &Flags, out: &mut dyn Write) -> Result<(), CliError> {
    let dir = PathBuf::from(flags.require("data")?);
    if flags.positional.len() != 2 {
        return Err(CliError::Usage("rov needs PREFIX and ASN".into()));
    }
    let prefix: IpPrefix = flags.positional[0]
        .parse()
        .map_err(|e| CliError::Data(format!("prefix: {e}")))?;
    let asn: Asn = flags.positional[1]
        .parse()
        .map_err(|e| CliError::Data(format!("asn: {e}")))?;
    let (validator, _) = build_validator(&dir)?;
    writeln!(
        out,
        "{} from {} → {}",
        prefix,
        asn,
        validator.validate(&prefix, asn)
    )?;
    Ok(())
}

fn cmd_study(flags: &Flags, out: &mut dyn Write) -> Result<(), CliError> {
    let dir = PathBuf::from(flags.require("data")?);
    let world = load_world(&dir)?;
    let bin: usize = flags.get_parsed("bin", (world.ranking.len() / 10).max(1))?;
    let engine = StudyEngine::new(
        world.zones.clone(),
        world.rib.clone(),
        &world.repository,
        PipelineConfig {
            bogus_dns_ppm: 0,
            now: world.now,
            ..Default::default()
        },
    );
    let results = engine.run(&world.ranking);
    writeln!(out, "{}", HeadlineStats::compute(&results))?;

    let fig2 = figures::fig2_rpki_outcome(&results, bin);
    writeln!(out, "\nFigure 2 (valid % per {bin}-rank bin):")?;
    for (i, m) in fig2.valid.means.iter().enumerate() {
        if let Some(v) = m {
            writeln!(out, "  {:>8}  {:.3}%", i * bin, v * 100.0)?;
        }
    }
    let fig1 = figures::fig1_www_overlap(&results, bin);
    writeln!(
        out,
        "\nFigure 1 overall www/bare equality: {:.1}%",
        fig1.overall_mean().unwrap_or(0.0) * 100.0
    )?;
    // Fig 3 needs the CDN pattern table; infer patterns from the zone
    // data (names matching the simulated CDN namespace).
    let patterns: Vec<String> = ripki_websim::operators::CDN_SPECS
        .iter()
        .map(|(n, _, _)| format!("{}-sim.net", n.to_ascii_lowercase()))
        .collect();
    let classifier = HttpArchiveClassifier::new(&world.zones, patterns);
    let fig3 = figures::fig3_cdn_popularity(&results, &classifier, bin);
    writeln!(
        out,
        "Figure 3 overall CDN share: heuristic {:.1}%, HTTPArchive {:.1}%",
        fig3.cname_heuristic.overall_mean().unwrap_or(0.0) * 100.0,
        fig3.httparchive.overall_mean().unwrap_or(0.0) * 100.0
    )?;
    let fig4 = figures::fig4_rpki_on_cdns(&results, bin);
    writeln!(
        out,
        "Figure 4: RPKI-enabled {:.2}% overall vs {:.2}% on CDNs",
        fig4.rpki_enabled.overall_mean().unwrap_or(0.0) * 100.0,
        fig4.rpki_enabled_on_cdns.overall_mean().unwrap_or(0.0) * 100.0
    )?;
    let rows = tables::table1_top_covered(&results, 10);
    writeln!(out, "\n{}", tables::render_table1(&rows))?;
    Ok(())
}

fn cmd_rtr_serve(flags: &Flags, out: &mut dyn Write) -> Result<(), CliError> {
    let dir = PathBuf::from(flags.require("data")?);
    let listen = flags.require("listen")?;
    let world = load_world(&dir)?;
    // The engine validates the repository into an epoch-1 snapshot; the
    // RTR cache serves that snapshot's VRPs under the epoch as serial,
    // so a future `install_rpki` maps onto a serial increment.
    let engine = StudyEngine::new(
        world.zones,
        world.rib,
        &world.repository,
        PipelineConfig {
            bogus_dns_ppm: 0,
            now: world.now,
            ..Default::default()
        },
    );
    let snapshot = engine.snapshot();
    let cache = std::sync::Arc::new(ripki_rtr::CacheServer::new(0x1715));
    cache.install_snapshot(snapshot.epoch() as u32, snapshot.vrps().iter().copied());
    let listener = std::net::TcpListener::bind(listen)?;
    writeln!(
        out,
        "RTR cache serving {} VRPs on {} (session {:#06x}); ctrl-c to stop",
        cache.vrp_count(),
        listener.local_addr()?,
        cache.session_id(),
    )?;
    // Non-blocking accept front end (watermark + shutdown-aware poll);
    // each admitted session still gets a synchronous serving thread
    // with unsolicited Serial Notify.
    let _listener =
        ripki_rtr::RtrListener::spawn(listener, cache, ripki_rtr::ListenerConfig::default())?;
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

/// Load and compile the `--slurm` exception file when the flag is
/// given, echoing its warnings (ignored BGPsec stanzas and the like).
fn load_exceptions(
    flags: &Flags,
    out: &mut dyn Write,
) -> Result<Option<ripki_slurm::ExceptionSet>, CliError> {
    let Some(path) = flags.get("slurm") else {
        return Ok(None);
    };
    let file =
        ripki_slurm::SlurmFile::load(Path::new(path)).map_err(|e| CliError::Data(e.to_string()))?;
    for warning in &file.warnings {
        writeln!(out, "slurm: warning: {warning}")?;
    }
    let exceptions = file.compile();
    writeln!(out, "slurm: loaded {path} ({exceptions})")?;
    Ok(Some(exceptions))
}

/// The engine snapshot's VRPs with the exception layer applied, as the
/// canonical payload (so every serving plane agrees byte-for-byte).
fn excepted_payload(
    exceptions: Option<&ripki_slurm::ExceptionSet>,
    epoch: u64,
    vrps: &[VrpTriple],
) -> ripki_payload::VrpPayload {
    let payload = ripki_payload::VrpPayload::new(epoch, vrps.iter().copied());
    match exceptions {
        Some(x) => x.excepted(&payload),
        None => payload,
    }
}

/// Map an engine epoch delta through the exception layer: filtered or
/// asserted VRPs never churn on the wire.
fn excepted_delta(
    exceptions: &ripki_slurm::ExceptionSet,
    from_epoch: u64,
    to_epoch: u64,
    announced: &[VrpTriple],
    withdrawn: &[VrpTriple],
) -> ripki_payload::VrpDelta {
    exceptions.map_delta(&ripki_payload::VrpDelta::new(
        from_epoch,
        to_epoch,
        announced.to_vec(),
        withdrawn.to_vec(),
    ))
}

/// One row of the longitudinal report: aggregate validation outcome and
/// hijack exposure of the measured domains at one epoch.
fn longitudinal_row(
    scenario: &Scenario,
    results: &ripki::StudyResults,
    served: &ripki_payload::VrpPayload,
    exposure_cfg: &ExposureConfig,
) -> (f64, f64, f64) {
    let (mut valid, mut covered, mut total) = (0usize, 0usize, 0usize);
    for d in &results.domains {
        for p in d.bare.pairs.iter().chain(&d.www.pairs) {
            total += 1;
            if p.state == RpkiState::Valid {
                valid += 1;
            }
            if p.state != RpkiState::NotFound {
                covered += 1;
            }
        }
    }
    let share = |n: usize| {
        if total == 0 {
            0.0
        } else {
            n as f64 / total as f64
        }
    };
    let validator = RouteOriginValidator::from_vrps(served.vrps().iter().copied());
    let exposures = exposure_curve(
        &results.domains,
        &scenario.topology,
        &validator,
        exposure_cfg,
    );
    let capture = if exposures.is_empty() {
        0.0
    } else {
        exposures.iter().map(|e| e.capture_rate).sum::<f64>() / exposures.len() as f64
    };
    (share(valid), share(covered), capture)
}

fn cmd_longitudinal(flags: &Flags, out: &mut dyn Write) -> Result<(), CliError> {
    let domains: usize = flags.get_parsed("domains", 2_000)?;
    let seed: u64 = flags.get_parsed("seed", 42)?;
    let epochs: u64 = flags.get_parsed("epochs", 8)?;
    let churn_seed: u64 = flags.get_parsed("churn-seed", ChurnConfig::default().seed)?;
    let stride: usize = flags.get_parsed("stride", 50)?;
    let threads: usize = flags.get_parsed("threads", 0)?;
    writeln!(
        out,
        "longitudinal study: {domains} domains, seed {seed}, {epochs} epochs of churn"
    )?;
    let exceptions = load_exceptions(flags, out)?;

    let scenario = Scenario::build(ScenarioConfig {
        seed,
        ..ScenarioConfig::with_domains(domains)
    });
    let config = PipelineConfig {
        bogus_dns_ppm: 0,
        now: scenario.now,
        threads,
        ..Default::default()
    };
    // One line with the *effective* count (after the RIPKI_THREADS
    // override and auto-detection), so CI can grep that the knob took.
    writeln!(out, "worker threads: {}", config.worker_threads())?;
    let engine = StudyEngine::new(
        scenario.zones.clone(),
        scenario.rib.clone(),
        &scenario.repository,
        config,
    );
    let mut results = engine.run(&scenario.ranking);

    // The RTR cache shadows the engine: the initial snapshot is
    // installed once, then each `EpochDelta`'s announce/withdraw sets
    // stream in through `apply_delta` under the epoch as serial — the
    // same incremental path a router sees, not a full reinstall.
    let cache = ripki_rtr::CacheServer::new(0x1715);
    {
        let snapshot = engine.snapshot();
        let served = excepted_payload(exceptions.as_ref(), snapshot.epoch(), snapshot.vrps());
        cache.install_snapshot(served.serial(), served.vrps().iter().copied());
    }
    let exposure_cfg = ExposureConfig {
        stride: stride.max(1),
        ..Default::default()
    };

    writeln!(
        out,
        "{:>5} {:>7} {:>6} {:>5} {:>5} {:>6} {:>7} {:>7} {:>9}",
        "epoch", "events", "remeas", "+vrp", "-vrp", "vrps", "valid%", "cover%", "capture%"
    )?;
    let print_row = |out: &mut dyn Write,
                     results: &ripki::StudyResults,
                     epoch: u64,
                     events: usize,
                     remeasured: usize,
                     announced: usize,
                     withdrawn: usize|
     -> Result<(), CliError> {
        let snapshot = engine.snapshot();
        let served = excepted_payload(exceptions.as_ref(), snapshot.epoch(), snapshot.vrps());
        let (valid, covered, capture) =
            longitudinal_row(&scenario, results, &served, &exposure_cfg);
        writeln!(
            out,
            "{:>5} {:>7} {:>6} {:>5} {:>5} {:>6} {:>6.1}% {:>6.1}% {:>8.1}%",
            epoch,
            events,
            remeasured,
            announced,
            withdrawn,
            served.len(),
            valid * 100.0,
            covered * 100.0,
            capture * 100.0,
        )?;
        Ok(())
    };
    print_row(out, &results, results.epoch, 0, results.domains.len(), 0, 0)?;

    let mut stream = ChurnStream::new(
        &scenario,
        ChurnConfig {
            seed: churn_seed,
            ..ChurnConfig::default()
        },
    );
    let mut inc_objects = 0usize;
    let mut inc_reused = 0usize;
    let mut inc_points = 0usize;
    let mut inc_epochs = 0usize;
    for _ in 0..epochs {
        let batch = stream.next_epoch();
        let events = batch.events.len();
        let delta = engine.apply_events(&batch, &mut results);
        if let Some(stats) = delta.rpki_stats {
            if stats.full_pass_avoided() {
                inc_objects += stats.objects_validated;
                inc_reused += stats.points_reused;
                inc_points += stats.points_total;
                inc_epochs += 1;
            }
        }
        // Stream the epoch's churn into the cache — through the
        // exception layer when one is loaded, so excepted VRPs never
        // churn on the wire. A serial mismatch (e.g. a wrapped counter)
        // falls back to a full (excepted) reinstall.
        let applied = match &exceptions {
            Some(x) => {
                let mapped = excepted_delta(
                    x,
                    delta.from_epoch,
                    delta.to_epoch,
                    &delta.announced,
                    &delta.withdrawn,
                );
                cache.apply_delta(mapped.to_epoch as u32, &mapped.announced, &mapped.withdrawn)
            }
            None => cache.apply_delta(delta.to_epoch as u32, &delta.announced, &delta.withdrawn),
        };
        if !applied {
            let snapshot = engine.snapshot();
            let served = excepted_payload(exceptions.as_ref(), snapshot.epoch(), snapshot.vrps());
            cache.install_snapshot(served.serial(), served.vrps().iter().copied());
        }
        print_row(
            out,
            &results,
            delta.to_epoch,
            events,
            delta.domains_remeasured,
            delta.announced.len(),
            delta.withdrawn.len(),
        )?;
    }
    if inc_epochs > 0 {
        writeln!(
            out,
            "validated {inc_objects} objects incrementally (full pass avoided; \
             {inc_reused}/{inc_points} publication-point validations reused \
             across {inc_epochs} epochs)",
        )?;
    }
    writeln!(
        out,
        "final epoch {}, RTR serial {}, {} VRPs cached",
        engine.epoch(),
        cache.serial(),
        cache.vrp_count(),
    )?;
    Ok(())
}

fn cmd_serve(flags: &Flags, out: &mut dyn Write) -> Result<(), CliError> {
    use ripki_serve::{EpochView, Server, ServerConfig, SharedView};
    use std::sync::Arc;

    let domains: usize = flags.get_parsed("domains", 1_000)?;
    let seed: u64 = flags.get_parsed("seed", 42)?;
    let listen = flags.get("listen").unwrap_or("127.0.0.1:8080");
    let epochs: u64 = flags.get_parsed("epochs", 0)?;
    let interval_ms: u64 = flags.get_parsed("epoch-interval-ms", 1_000)?;
    let churn_seed: u64 = flags.get_parsed("churn-seed", ChurnConfig::default().seed)?;
    let stride: usize = flags.get_parsed("stride", 50)?;
    let exit_after_churn: bool = flags.get_parsed("exit-after-churn", false)?;

    // Event-loop tunables; defaults mirror `ServerConfig::default()`.
    let defaults = ServerConfig::default();
    let http_workers: usize = flags.get_parsed("http-workers", defaults.workers)?;
    let max_conns: usize = flags.get_parsed("max-conns", defaults.max_connections)?;
    let idle_timeout_ms: u64 =
        flags.get_parsed("idle-timeout-ms", defaults.read_timeout.as_millis() as u64)?;
    let read_deadline_ms: u64 = flags.get_parsed(
        "read-deadline-ms",
        defaults.read_deadline.as_millis() as u64,
    )?;
    let write_stall_ms: u64 = flags.get_parsed(
        "write-stall-ms",
        defaults.write_stall_timeout.as_millis() as u64,
    )?;
    let server_config = ServerConfig {
        workers: http_workers.max(1),
        read_timeout: std::time::Duration::from_millis(idle_timeout_ms.max(1)),
        max_connections: max_conns.max(1),
        read_deadline: std::time::Duration::from_millis(read_deadline_ms.max(1)),
        write_stall_timeout: std::time::Duration::from_millis(write_stall_ms.max(1)),
        ..defaults
    };

    writeln!(out, "measuring world: {domains} domains, seed {seed}")?;
    let exceptions = load_exceptions(flags, out)?;
    let scenario = Scenario::build(ScenarioConfig {
        seed,
        ..ScenarioConfig::with_domains(domains)
    });
    let engine = StudyEngine::new(
        scenario.zones.clone(),
        scenario.rib.clone(),
        &scenario.repository,
        PipelineConfig {
            bogus_dns_ppm: 0,
            now: scenario.now,
            ..Default::default()
        },
    );
    let mut results = engine.run(&scenario.ranking);
    let topology = Arc::new(scenario.topology.clone());
    let exposure_cfg = ExposureConfig {
        stride: stride.max(1),
        ..Default::default()
    };
    let make_view = |snapshot, results: &ripki::StudyResults| {
        let view = EpochView::new(
            snapshot,
            Arc::new(results.clone()),
            Some(Arc::clone(&topology)),
            exposure_cfg.clone(),
        );
        match &exceptions {
            Some(x) => view.with_exceptions(x),
            None => view,
        }
    };

    let shared = Arc::new(SharedView::new(make_view(engine.snapshot(), &results)));
    let mut server = Server::start(listen, Arc::clone(&shared), server_config)?;
    writeln!(
        out,
        "HTTP query plane on http://{} — epoch {}, {} VRPs, {} domains",
        server.addr(),
        engine.epoch(),
        shared.current().payload().len(),
        results.domains.len(),
    )?;

    // Optional RTR cache side by side, fed by the same delta stream
    // (exception-layered like every other serving plane).
    let rtr_cache = match flags.get("rtr-listen") {
        Some(rtr_listen) => {
            let cache = Arc::new(ripki_rtr::CacheServer::new(0x1715));
            let snapshot = engine.snapshot();
            let served = excepted_payload(exceptions.as_ref(), snapshot.epoch(), snapshot.vrps());
            cache.install_snapshot(served.serial(), served.vrps().iter().copied());
            let listener = std::net::TcpListener::bind(rtr_listen)?;
            writeln!(
                out,
                "RTR cache on {} (session {:#06x}, serial {})",
                listener.local_addr()?,
                cache.session_id(),
                cache.serial(),
            )?;
            // Same non-blocking accept discipline as the HTTP plane:
            // shutdown-aware poll loop with a session watermark.
            let rtr_listener = ripki_rtr::RtrListener::spawn(
                listener,
                Arc::clone(&cache),
                ripki_rtr::ListenerConfig::default(),
            )?;
            Some((cache, rtr_listener))
        }
        None => None,
    };

    if epochs > 0 {
        let mut stream = ChurnStream::new(
            &scenario,
            ChurnConfig {
                seed: churn_seed,
                ..ChurnConfig::default()
            },
        );
        for _ in 0..epochs {
            std::thread::sleep(std::time::Duration::from_millis(interval_ms));
            let batch = stream.next_epoch();
            let events = batch.events.len();
            let delta = engine.apply_events(&batch, &mut results);
            // The epoch exists the moment the engine commits it; the
            // announcement lets `/status` report lag while the (possibly
            // slow) view build below is still running.
            shared.announce_epoch(delta.to_epoch);
            // HTTP views and RTR serials advance in lockstep with the
            // engine's epoch — the serving plane's consistency contract.
            shared.publish(make_view(engine.snapshot(), &results));
            if let Some((cache, _)) = &rtr_cache {
                let applied = match &exceptions {
                    Some(x) => {
                        let mapped = excepted_delta(
                            x,
                            delta.from_epoch,
                            delta.to_epoch,
                            &delta.announced,
                            &delta.withdrawn,
                        );
                        cache.apply_delta(
                            mapped.to_epoch as u32,
                            &mapped.announced,
                            &mapped.withdrawn,
                        )
                    }
                    None => {
                        cache.apply_delta(delta.to_epoch as u32, &delta.announced, &delta.withdrawn)
                    }
                };
                if !applied {
                    let snapshot = engine.snapshot();
                    let served =
                        excepted_payload(exceptions.as_ref(), snapshot.epoch(), snapshot.vrps());
                    cache.install_snapshot(served.serial(), served.vrps().iter().copied());
                }
            }
            writeln!(
                out,
                "epoch {}: {events} events, {} domains re-measured, +{} -{} VRPs",
                delta.to_epoch,
                delta.domains_remeasured,
                delta.announced.len(),
                delta.withdrawn.len(),
            )?;
        }
    }

    if exit_after_churn {
        server.shutdown();
        if let Some((_, mut rtr_listener)) = rtr_cache {
            rtr_listener.shutdown();
        }
        writeln!(out, "exiting after churn (epoch {})", engine.epoch())?;
        return Ok(());
    }
    writeln!(out, "serving; ctrl-c to stop")?;
    out.flush()?;
    wait_for_shutdown_signal();
    writeln!(out, "shutdown signal received; draining in-flight requests")?;
    server.shutdown();
    if let Some((_, mut rtr_listener)) = rtr_cache {
        rtr_listener.shutdown();
    }
    writeln!(out, "drained; exiting cleanly")?;
    Ok(())
}

/// Park the calling thread until SIGTERM or SIGINT arrives. The handler
/// performs a single atomic store — async-signal-safe — so `serve` can
/// drain its event loop on shutdown instead of dying mid-response.
#[cfg(unix)]
fn wait_for_shutdown_signal() {
    use std::os::raw::c_int;
    use std::sync::atomic::{AtomicBool, Ordering};
    static REQUESTED: AtomicBool = AtomicBool::new(false);
    extern "C" fn on_signal(_signum: c_int) {
        // Release: pairs with the Acquire load in the wait loop, so the
        // waiter observes everything sequenced before the signal.
        REQUESTED.store(true, Ordering::Release);
    }
    const SIGINT: c_int = 2;
    const SIGTERM: c_int = 15;
    extern "C" {
        fn signal(signum: c_int, handler: usize) -> usize;
    }
    // SAFETY: the handler only performs an atomic store (async-signal-
    // safe), and the function pointer lives for the whole process.
    unsafe {
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGTERM, on_signal as *const () as usize);
    }
    // Acquire: pairs with the Release store in the signal handler.
    while !REQUESTED.load(Ordering::Acquire) {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
}

#[cfg(not(unix))]
fn wait_for_shutdown_signal() {
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn cmd_proxy(flags: &Flags, out: &mut dyn Write) -> Result<(), CliError> {
    let path = PathBuf::from(flags.require("config")?);
    let exit_after_drain: bool = flags.get_parsed("exit-after-drain", false)?;
    let text = std::fs::read_to_string(&path)?;
    writeln!(out, "starting distribution fabric from {}", path.display())?;
    out.flush()?;
    // Fabric threads outlive this call's borrow of `out`, so the fabric
    // logs straight to stdout — in the binary that is the same stream,
    // and the multi-process chain test (and CI smoke) greps those lines.
    let log = ripki_proxy::Log::to(Box::new(std::io::stdout()));
    let mut manager =
        ripki_proxy::Manager::from_toml(&text, &log).map_err(|e| CliError::Data(e.to_string()))?;
    manager.drain();
    if exit_after_drain {
        manager.shutdown();
        writeln!(out, "fabric drained; exiting")?;
        return Ok(());
    }
    writeln!(out, "fabric drained; serving final state, ctrl-c to stop")?;
    out.flush()?;
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn cmd_rtr_probe(flags: &Flags, out: &mut dyn Write) -> Result<(), CliError> {
    let addr = flags.require("connect")?;
    let timeout_ms: u64 = flags.get_parsed("timeout-ms", 3_000)?;
    let stream = std::net::TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(std::time::Duration::from_millis(timeout_ms)))?;
    let mut client = ripki_rtr::Client::new(stream);
    client
        .sync()
        .map_err(|e| CliError::Data(format!("rtr sync against {addr} failed: {e}")))?;
    let (session, serial) = client
        .state()
        .ok_or_else(|| CliError::Data(format!("cache at {addr} sent no data")))?;
    let payload = client
        .payload()
        .ok_or_else(|| CliError::Data(format!("cache at {addr} sent no data")))?;
    writeln!(
        out,
        "rtr-probe {addr}: session {session:#06x} serial {serial} in lockstep with {payload}",
    )?;
    Ok(())
}

// ---- counterfactual scenario runner ----------------------------------------

/// A declarative counterfactual lever, parsed from `--scenario`.
enum WhatIf {
    /// CDN `name` signs ROAs for every prefix it announces.
    CdnSigns(String),
    /// Operators hosting the top-`k` ranks deploy ROV (drop Invalids).
    TopKDropInvalid(usize),
    /// Every ROA issued by operators of this class is revoked.
    RevokeClass(ripki_websim::operators::OperatorClass),
}

fn parse_whatif(spec: &str) -> Result<WhatIf, CliError> {
    use ripki_websim::operators::OperatorClass;
    let bad = |why: &str| CliError::BadFlag(format!("--scenario {spec}: {why}"));
    let (kind, arg) = spec
        .split_once(':')
        .ok_or_else(|| bad("expected KIND:ARG"))?;
    match kind {
        "cdn-signs" => Ok(WhatIf::CdnSigns(arg.to_string())),
        "top-k-drop-invalid" => {
            let k: usize = arg.parse().map_err(|_| bad("K must be a number"))?;
            Ok(WhatIf::TopKDropInvalid(k))
        }
        "revoke-class" => {
            let class = match arg.to_ascii_lowercase().as_str() {
                "isp" => OperatorClass::Isp,
                "webhoster" => OperatorClass::Webhoster,
                "cdn" => OperatorClass::Cdn,
                "enterprise" => OperatorClass::Enterprise,
                _ => return Err(bad("class must be isp|webhoster|cdn|enterprise")),
            };
            Ok(WhatIf::RevokeClass(class))
        }
        _ => Err(bad(
            "kind must be cdn-signs|top-k-drop-invalid|revoke-class",
        )),
    }
}

/// The scenario levers compiled against one built world: a synthetic
/// churn epoch (events + evolved repository) plus exposure-side knobs.
struct CompiledWhatIf {
    events: Vec<ripki_websim::churn::WorldEvent>,
    repository: Option<std::sync::Arc<ripki_rpki::Repository>>,
    extra_deployers: Vec<Asn>,
}

fn compile_whatif(
    specs: &[WhatIf],
    scenario: &Scenario,
    results: &ripki::StudyResults,
    out: &mut dyn Write,
) -> Result<CompiledWhatIf, CliError> {
    use ripki_websim::churn::WorldEvent;
    use ripki_websim::operators::OperatorClass;
    use std::collections::{BTreeSet, HashMap};

    let mut events = Vec::new();
    let mut extra: BTreeSet<Asn> = BTreeSet::new();
    // RPKI levers evolve the still-open deterministic issuing program
    // that produced `scenario.repository`: untouched CAs re-issue
    // byte-identically, so the engine's incremental validator sees only
    // the counterfactual's own additions/revocations as the delta.
    let mut builder: Option<ripki_rpki::RepositoryBuilder> = None;

    for spec in specs {
        match spec {
            WhatIf::CdnSigns(name) => {
                let (idx, op) = scenario
                    .operators
                    .iter()
                    .enumerate()
                    .find(|(_, op)| {
                        op.class == OperatorClass::Cdn && op.name.eq_ignore_ascii_case(name)
                    })
                    .ok_or_else(|| {
                        CliError::BadFlag(format!("--scenario cdn-signs:{name}: unknown CDN"))
                    })?;
                let b = builder.get_or_insert_with(|| scenario.issuing_builder().0);
                let ca_name = format!("{}-{}", op.name, idx);
                let err = |e: ripki_rpki::repo::BuildError| {
                    CliError::Data(format!("cdn-signs:{name}: {e}"))
                };
                let ca = match b.find_ca(&ca_name) {
                    Some(ca) => ca,
                    None => {
                        let ta = b
                            .find_ca(ripki_websim::allocation::RIR_NAMES[op.rir])
                            .expect("the issuing program created all five RIR trust anchors");
                        let resources = ripki_rpki::Resources {
                            prefixes: ripki_net::PrefixSet::from_prefixes(
                                scenario
                                    .holdings
                                    .iter()
                                    .filter(|h| h.operator == idx)
                                    .map(|h| h.prefix),
                            ),
                            ..Default::default()
                        };
                        b.add_ca(ta, &ca_name, resources).map_err(err)?
                    }
                };
                let mut signed = 0usize;
                for h in scenario.holdings.iter().filter(|h| h.operator == idx) {
                    b.add_roa(
                        ca,
                        h.asn,
                        vec![ripki_rpki::RoaPrefix::up_to(h.prefix, h.deepest_announced)],
                    )
                    .map_err(err)?;
                    events.push(WorldEvent::RoaAdded {
                        prefix: h.prefix,
                        asn: h.asn,
                    });
                    signed += 1;
                }
                writeln!(
                    out,
                    "lever: CDN {} signs ROAs for {signed} prefixes",
                    op.name
                )?;
            }
            WhatIf::TopKDropInvalid(k) => {
                let owner: HashMap<Asn, usize> = scenario
                    .holdings
                    .iter()
                    .map(|h| (h.asn, h.operator))
                    .collect();
                let mut ops: BTreeSet<usize> = BTreeSet::new();
                let mut asns: BTreeSet<Asn> = BTreeSet::new();
                for d in results.domains.iter().filter(|d| d.rank < *k) {
                    for p in d.bare.pairs.iter().chain(&d.www.pairs) {
                        match owner.get(&p.origin) {
                            // The whole operator flips the knob, not
                            // just the one AS a domain happened to hit.
                            Some(op) => {
                                ops.insert(*op);
                            }
                            None => {
                                asns.insert(p.origin);
                            }
                        }
                    }
                }
                for op in &ops {
                    asns.extend(scenario.operators[*op].asns.iter().copied());
                }
                writeln!(
                    out,
                    "lever: operators of the top-{k} ranks drop Invalids \
                     ({} operators, {} ASes)",
                    ops.len(),
                    asns.len(),
                )?;
                extra.extend(asns);
            }
            WhatIf::RevokeClass(class) => {
                let b = builder.get_or_insert_with(|| scenario.issuing_builder().0);
                let mut revoked = 0usize;
                for (idx, op) in scenario
                    .operators
                    .iter()
                    .enumerate()
                    .filter(|(_, op)| op.class == *class)
                {
                    let Some(ca) = b.find_ca(&format!("{}-{}", op.name, idx)) else {
                        continue; // never adopted: nothing to revoke
                    };
                    for (ca_id, serial, _) in b.list_roas() {
                        if ca_id == ca {
                            b.revoke(ca, serial).map_err(|e| {
                                CliError::Data(format!("revoke-class:{class}: {e}"))
                            })?;
                            revoked += 1;
                        }
                    }
                    for h in scenario.holdings.iter().filter(|h| h.operator == idx) {
                        events.push(WorldEvent::RoaRevoked {
                            prefix: h.prefix,
                            asn: h.asn,
                        });
                    }
                }
                writeln!(out, "lever: revoke {class} ROAs ({revoked} revoked)")?;
            }
        }
    }
    let repository = builder.map(|mut b| std::sync::Arc::new(b.snapshot()));
    Ok(CompiledWhatIf {
        events,
        repository,
        extra_deployers: extra.into_iter().collect(),
    })
}

fn cmd_whatif(flags: &Flags, out: &mut dyn Write) -> Result<(), CliError> {
    use ripki::exposure::binned;
    use ripki_websim::churn::EpochChurn;

    let domains: usize = flags.get_parsed("domains", 2_000)?;
    let seed: u64 = flags.get_parsed("seed", 42)?;
    let stride: usize = flags.get_parsed("stride", 25)?;
    let threads: usize = flags.get_parsed("threads", 0)?;
    let rov: f64 = flags.get_parsed("rov", ExposureConfig::default().rov_deployment)?;
    let bin: usize = flags.get_parsed("bin", domains.div_ceil(10).max(1))?;
    let out_path = PathBuf::from(
        flags
            .get("out")
            .map_or_else(|| format!("results/whatif_{domains}.csv"), String::from),
    );
    let specs: Vec<WhatIf> = flags
        .get_all("scenario")
        .into_iter()
        .map(parse_whatif)
        .collect::<Result<_, _>>()?;

    writeln!(
        out,
        "what-if study: {domains} domains, seed {seed}, {} scenario lever(s)",
        specs.len()
    )?;
    let scenario = Scenario::build(ScenarioConfig {
        seed,
        ..ScenarioConfig::with_domains(domains)
    });
    let engine = StudyEngine::new(
        scenario.zones.clone(),
        scenario.rib.clone(),
        &scenario.repository,
        PipelineConfig {
            bogus_dns_ppm: 0,
            now: scenario.now,
            threads,
            ..Default::default()
        },
    );
    let mut results = engine.run(&scenario.ranking);

    let exposure_cfg = ExposureConfig {
        rov_deployment: rov,
        stride: stride.max(1),
        ..Default::default()
    };
    let baseline_snapshot = engine.snapshot();
    let baseline = exposure_curve(
        &results.domains,
        &scenario.topology,
        baseline_snapshot.validator(),
        &exposure_cfg,
    );
    writeln!(
        out,
        "baseline: epoch {}, {} VRPs, {} domains sampled for exposure",
        baseline_snapshot.epoch(),
        baseline_snapshot.vrp_count(),
        baseline.len(),
    )?;

    let compiled = compile_whatif(&specs, &scenario, &results, out)?;
    if compiled.repository.is_some() {
        // One synthetic churn epoch carries the whole counterfactual
        // through the same incremental path real churn takes — no
        // engine rebuild, no full revalidation.
        let batch = EpochChurn {
            events: compiled.events,
            repository: compiled.repository,
            now: scenario.now,
        };
        let delta = engine.apply_events(&batch, &mut results);
        writeln!(
            out,
            "counterfactual epoch {} -> {}: +{} -{} VRPs, {} domains re-measured",
            delta.from_epoch,
            delta.to_epoch,
            delta.announced.len(),
            delta.withdrawn.len(),
            delta.domains_remeasured,
        )?;
    }
    let counter_cfg = ExposureConfig {
        extra_deployers: compiled.extra_deployers,
        ..exposure_cfg
    };
    let counter_snapshot = engine.snapshot();
    let counterfactual = exposure_curve(
        &results.domains,
        &scenario.topology,
        counter_snapshot.validator(),
        &counter_cfg,
    );

    let base_bins = binned(&baseline, domains, bin);
    let cf_bins = binned(&counterfactual, domains, bin);
    writeln!(
        out,
        "{:>14} {:>10} {:>10} {:>9}",
        "rank_bin_start", "baseline", "whatif", "delta"
    )?;
    let mut csv = String::from("rank_bin_start,baseline_capture,whatif_capture,delta\n");
    for (i, (b, c)) in base_bins.means.iter().zip(&cf_bins.means).enumerate() {
        let start = i * bin;
        let (Some(b), Some(c)) = (b, c) else {
            writeln!(out, "{start:>14} {:>10} {:>10} {:>9}", "-", "-", "-")?;
            continue;
        };
        writeln!(out, "{start:>14} {b:>10.6} {c:>10.6} {:>+9.6}", c - b)?;
        csv.push_str(&format!("{start},{b:.6},{c:.6},{:.6}\n", c - b));
    }
    if let (Some(b), Some(c)) = (
        base_bins.means.first().copied().flatten(),
        cf_bins.means.first().copied().flatten(),
    ) {
        writeln!(
            out,
            "top-bin capture: baseline {b:.6} -> whatif {c:.6} (delta {:+.6})",
            c - b
        )?;
    }
    if let (Some(b), Some(c)) = (base_bins.overall_mean(), cf_bins.overall_mean()) {
        writeln!(out, "exposure delta (overall): {:+.6}", c - b)?;
    }
    if let Some(parent) = out_path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(&out_path, csv)?;
    writeln!(out, "wrote {}", out_path.display())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripki::pipeline::Pipeline;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn scratch() -> PathBuf {
        static COUNTER: AtomicU32 = AtomicU32::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("ripki-cli-test-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn run_ok(args: &[&str]) -> String {
        let args: Vec<String> = args.iter().map(std::string::ToString::to_string).collect();
        let mut out = Vec::new();
        run(&args, &mut out).expect("command succeeds");
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn help_prints_usage() {
        let text = run_ok(&["help"]);
        assert!(text.contains("ripki-cli"));
        assert!(text.contains("generate"));
    }

    #[test]
    fn unknown_command_errors() {
        let args = vec!["frobnicate".to_string()];
        let mut out = Vec::new();
        assert!(matches!(run(&args, &mut out), Err(CliError::Usage(_))));
        let mut out = Vec::new();
        assert!(matches!(run(&[], &mut out), Err(CliError::Usage(_))));
    }

    #[test]
    fn flag_errors() {
        let mut out = Vec::new();
        let args: Vec<String> = ["generate", "--out"]
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        assert!(matches!(run(&args, &mut out), Err(CliError::BadFlag(_))));
        let args: Vec<String> = ["generate"]
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        assert!(matches!(run(&args, &mut out), Err(CliError::BadFlag(_))));
        let args: Vec<String> = ["generate", "--out", "/tmp/x", "--domains", "many"]
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        assert!(matches!(run(&args, &mut out), Err(CliError::BadFlag(_))));
    }

    #[test]
    fn generate_validate_rov_study_end_to_end() {
        let dir = scratch();
        let dir_s = dir.to_str().unwrap();
        let text = run_ok(&[
            "generate",
            "--out",
            dir_s,
            "--domains",
            "1500",
            "--seed",
            "7",
        ]);
        assert!(text.contains("wrote"));
        assert!(dir.join("ranking.txt").is_file());
        assert!(dir.join("zones.zone").is_file());
        assert!(dir.join("table.dump").is_file());
        assert!(dir.join("rpki/tals").is_dir());

        let text = run_ok(&["validate", "--data", dir_s]);
        assert!(text.contains("0 rejected"), "{text}");
        assert!(text.contains("VRPs"));

        // Pick a VRP line and check `rov` agrees it is valid.
        let vrp_line = text
            .lines()
            .find(|l| l.trim_start().starts_with(|c: char| c.is_ascii_digit()))
            .expect("some VRP printed");
        // Format: "  <prefix>-<ml> => AS<asn>"
        let parts: Vec<&str> = vrp_line.trim().split(" => ").collect();
        let prefix = parts[0].rsplit_once('-').unwrap().0;
        let asn = parts[1];
        let text = run_ok(&["rov", "--data", dir_s, prefix, asn]);
        assert!(text.contains("valid"), "{text}");
        let text = run_ok(&["rov", "--data", dir_s, prefix, "AS4294000000"]);
        assert!(text.contains("invalid"), "{text}");
        let text = run_ok(&["rov", "--data", dir_s, "198.51.100.0/24", "AS1"]);
        assert!(text.contains("not found"), "{text}");

        let text = run_ok(&["study", "--data", dir_s, "--bin", "300"]);
        assert!(text.contains("Figure 2"));
        assert!(text.contains("Figure 4"));
        assert!(text.contains("domains measured:          1500"));

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn longitudinal_replays_churn_epochs() {
        let text = run_ok(&[
            "longitudinal",
            "--domains",
            "300",
            "--seed",
            "5",
            "--epochs",
            "3",
            "--stride",
            "25",
            "--threads",
            "2",
        ]);
        assert!(text.contains("3 epochs of churn"), "{text}");
        // The effective worker count is logged (RIPKI_THREADS, when set
        // by CI's thread matrix, overrides the flag — compute the same
        // answer the engine will).
        let effective = PipelineConfig {
            threads: 2,
            ..Default::default()
        }
        .worker_threads();
        assert!(
            text.contains(&format!("worker threads: {effective}")),
            "{text}"
        );
        // Initial epoch-1 row plus one row per churn epoch.
        assert!(text.contains("epoch"), "{text}");
        let rows: Vec<&str> = text
            .lines()
            .filter(|l| l.trim_start().starts_with(|c: char| c.is_ascii_digit()))
            .collect();
        assert_eq!(rows.len(), 4, "{text}");
        // Epoch == RTR serial all the way through.
        assert!(text.contains("final epoch 4, RTR serial 4"), "{text}");
        // RPKI epochs went through the incremental path, not full passes.
        assert!(
            text.contains("objects incrementally (full pass avoided"),
            "{text}"
        );
    }

    #[test]
    fn serve_runs_http_and_rtr_side_by_side() {
        use std::io::Read as _;
        use std::sync::{Arc, Mutex};

        #[derive(Clone)]
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let buf = SharedBuf(Arc::new(Mutex::new(Vec::new())));
        let mut thread_buf = buf.clone();
        let handle = std::thread::spawn(move || {
            let args: Vec<String> = [
                "serve",
                "--domains",
                "200",
                "--seed",
                "3",
                "--listen",
                "127.0.0.1:0",
                "--rtr-listen",
                "127.0.0.1:0",
                "--epochs",
                "2",
                "--epoch-interval-ms",
                "400",
                "--exit-after-churn",
                "true",
            ]
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
            run(&args, &mut thread_buf)
        });

        // Wait for both listeners to announce their bound addresses.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
        let (http_addr, rtr_addr) = loop {
            assert!(std::time::Instant::now() < deadline, "serve never started");
            let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
            let http = text
                .lines()
                .find_map(|l| l.split_once("http://").map(|(_, r)| r))
                .and_then(|r| r.split_whitespace().next().map(str::to_string));
            let rtr = text
                .lines()
                .find(|l| l.starts_with("RTR cache on "))
                .and_then(|l| l.split_whitespace().nth(3).map(str::to_string));
            match (http, rtr) {
                (Some(h), Some(r)) => break (h, r),
                _ => std::thread::sleep(std::time::Duration::from_millis(20)),
            }
        };

        // The HTTP plane answers while churn epochs apply.
        let mut stream = std::net::TcpStream::connect(&http_addr).unwrap();
        stream
            .write_all(b"GET /status HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200"), "{response}");
        assert!(response.contains("\"epoch\""), "{response}");

        // The RTR cache serves the same world to a router client.
        let conn = std::net::TcpStream::connect(&rtr_addr).unwrap();
        let mut client = ripki_rtr::Client::new(conn);
        client.sync().expect("RTR sync");
        assert!(!client.vrps().is_empty());

        handle.join().unwrap().expect("serve exits cleanly");
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert!(text.contains("epoch 2:"), "{text}");
        assert!(text.contains("epoch 3:"), "{text}");
        assert!(text.contains("exiting after churn (epoch 3)"), "{text}");
    }

    #[test]
    fn serve_applies_slurm_exceptions_across_planes() {
        use std::io::Read as _;
        use std::sync::{Arc, Mutex};

        #[derive(Clone)]
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        // Pick a real VRP out of the same world `serve` will build, so
        // the SLURM file can filter something that actually exists.
        let scenario = Scenario::build(ScenarioConfig {
            seed: 3,
            ..ScenarioConfig::with_domains(200)
        });
        let report = validate(&scenario.repository, scenario.now);
        let victim = *report.vrps.first().expect("world has VRPs");
        let dir = scratch();
        std::fs::create_dir_all(&dir).unwrap();
        let slurm_path = dir.join("exceptions.json");
        std::fs::write(
            &slurm_path,
            format!(
                r#"{{
                    "slurmVersion": 1,
                    "validationOutputFilters": {{
                        "prefixFilters": [{{ "prefix": "{}", "asn": "{}" }}]
                    }},
                    "locallyAddedAssertions": {{
                        "prefixAssertions": [{{ "prefix": "198.51.100.0/24", "asn": 64496 }}]
                    }}
                }}"#,
                victim.prefix, victim.asn,
            ),
        )
        .unwrap();

        let buf = SharedBuf(Arc::new(Mutex::new(Vec::new())));
        let mut thread_buf = buf.clone();
        let slurm_arg = slurm_path.to_str().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            let args: Vec<String> = [
                "serve",
                "--domains",
                "200",
                "--seed",
                "3",
                "--listen",
                "127.0.0.1:0",
                "--rtr-listen",
                "127.0.0.1:0",
                "--epochs",
                "2",
                "--epoch-interval-ms",
                "700",
                "--exit-after-churn",
                "true",
                "--slurm",
                &slurm_arg,
            ]
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
            run(&args, &mut thread_buf)
        });

        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
        let (http_addr, rtr_addr) = loop {
            assert!(std::time::Instant::now() < deadline, "serve never started");
            let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
            let http = text
                .lines()
                .find_map(|l| l.split_once("http://").map(|(_, r)| r))
                .and_then(|r| r.split_whitespace().next().map(str::to_string));
            let rtr = text
                .lines()
                .find(|l| l.starts_with("RTR cache on "))
                .and_then(|l| l.split_whitespace().nth(3).map(str::to_string));
            match (http, rtr) {
                (Some(h), Some(r)) => break (h, r),
                _ => std::thread::sleep(std::time::Duration::from_millis(20)),
            }
        };

        let get = |path: &str| -> String {
            let mut stream = std::net::TcpStream::connect(&http_addr).unwrap();
            stream
                .write_all(
                    format!("GET {path} HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n")
                        .as_bytes(),
                )
                .unwrap();
            let mut response = String::new();
            stream.read_to_string(&mut response).unwrap();
            response
        };

        // The JSON export serves the excepted set: asserted VRP in,
        // filtered VRP out.
        let export = get("/vrps.json");
        assert!(export.contains("198.51.100.0/24"), "{export}");
        assert!(
            !export.contains(&victim.prefix.to_string()),
            "filtered VRP still exported: {}",
            victim.prefix
        );

        // The validity API agrees with the export.
        let verdict = get("/api/v1/validity/AS64496/198.51.100.0/24");
        assert!(verdict.contains("\"state\":\"valid\""), "{verdict}");

        // Status and metrics surface the exception counts.
        let status = get("/status");
        assert!(status.contains("\"slurm_asserted\":1"), "{status}");
        assert!(status.contains("\"slurm_filtered\":"), "{status}");
        let metrics = get("/metrics");
        assert!(
            metrics.contains("ripki_serve_slurm_asserted 1"),
            "{metrics}"
        );

        // The RTR cache serves the same excepted set.
        let conn = std::net::TcpStream::connect(&rtr_addr).unwrap();
        let mut client = ripki_rtr::Client::new(conn);
        client.sync().expect("RTR sync");
        let asserted = VrpTriple {
            prefix: "198.51.100.0/24".parse().unwrap(),
            max_length: 24,
            asn: Asn::new(64496),
        };
        assert!(
            client.vrps().contains(&asserted),
            "assertion missing in RTR"
        );
        let victim_triple = VrpTriple {
            prefix: victim.prefix,
            max_length: victim.max_length,
            asn: victim.asn,
        };
        assert!(
            !client.vrps().contains(&victim_triple),
            "filtered VRP still in RTR"
        );

        handle.join().unwrap().expect("serve exits cleanly");
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert!(text.contains("slurm: loaded"), "{text}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn longitudinal_applies_slurm_exceptions() {
        let dir = scratch();
        std::fs::create_dir_all(&dir).unwrap();
        let slurm_path = dir.join("exceptions.json");
        std::fs::write(
            &slurm_path,
            r#"{
                "slurmVersion": 1,
                "locallyAddedAssertions": {
                    "prefixAssertions": [{ "prefix": "198.51.100.0/24", "asn": 64496 }]
                }
            }"#,
        )
        .unwrap();
        let text = run_ok(&[
            "longitudinal",
            "--domains",
            "300",
            "--seed",
            "5",
            "--epochs",
            "2",
            "--stride",
            "25",
            "--threads",
            "2",
            "--slurm",
            slurm_path.to_str().unwrap(),
        ]);
        assert!(text.contains("slurm: loaded"), "{text}");
        assert!(text.contains("1 assertions"), "{text}");
        // The excepted set chains through the RTR cache epoch by epoch.
        assert!(text.contains("final epoch 3, RTR serial 3"), "{text}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn study_from_files_matches_in_memory_study() {
        let dir = scratch();
        let dir_s = dir.to_str().unwrap();
        run_ok(&[
            "generate",
            "--out",
            dir_s,
            "--domains",
            "800",
            "--seed",
            "9",
        ]);

        // File-based.
        let world = load_world(&dir).unwrap();
        let pipeline = Pipeline::new(
            &world.zones,
            &world.rib,
            &world.repository,
            PipelineConfig {
                bogus_dns_ppm: 0,
                now: world.now,
                ..Default::default()
            },
        );
        let file_results = pipeline.run(&world.ranking);

        // In-memory.
        let scenario = Scenario::build(ScenarioConfig {
            seed: 9,
            ..ScenarioConfig::with_domains(800)
        });
        let pipeline = Pipeline::new(
            &scenario.zones,
            &scenario.rib,
            &scenario.repository,
            PipelineConfig {
                bogus_dns_ppm: 0,
                now: scenario.now,
                ..Default::default()
            },
        );
        let mem_results = pipeline.run(&scenario.ranking);

        assert_eq!(file_results.domains.len(), mem_results.domains.len());
        for (a, b) in file_results.domains.iter().zip(&mem_results.domains) {
            assert_eq!(a.bare.pairs, b.bare.pairs, "rank {}", a.rank);
            assert_eq!(a.www.pairs, b.www.pairs, "rank {}", a.rank);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rtr_probe_reports_cache_state() {
        let cache = std::sync::Arc::new(ripki_rtr::CacheServer::new(0xBEEF));
        cache.install_snapshot(
            3,
            [VrpTriple {
                prefix: "10.0.0.0/24".parse().unwrap(),
                max_length: 24,
                asn: Asn::new(64496),
            }],
        );
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = {
            let cache = std::sync::Arc::clone(&cache);
            std::thread::spawn(move || {
                let (conn, _) = listener.accept().expect("accept");
                let _ = cache.serve_connection(conn);
            })
        };
        let text = run_ok(&["rtr-probe", "--connect", &addr.to_string()]);
        assert!(text.contains("session 0xbeef"), "{text}");
        assert!(text.contains("serial 3"), "{text}");
        assert!(text.contains("epoch 3 (1 vrps"), "{text}");
        server.join().unwrap();
    }

    #[test]
    fn proxy_rejects_bad_configs() {
        let mut out = Vec::new();
        let args: Vec<String> = vec!["proxy".into()];
        assert!(matches!(run(&args, &mut out), Err(CliError::BadFlag(_))));

        let args: Vec<String> = vec![
            "proxy".into(),
            "--config".into(),
            "/nonexistent.toml".into(),
        ];
        assert!(matches!(run(&args, &mut out), Err(CliError::Io(_))));

        let dir = scratch();
        std::fs::create_dir_all(&dir).unwrap();
        let config = dir.join("broken.toml");
        std::fs::write(&config, "[units.a]\ntype = \"flux\"\n").unwrap();
        let args: Vec<String> = vec![
            "proxy".into(),
            "--config".into(),
            config.to_str().unwrap().into(),
        ];
        match run(&args, &mut out) {
            Err(CliError::Data(message)) => {
                assert!(message.contains("unknown type"), "{message}");
            }
            other => panic!("expected a data error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn proxy_engine_pipeline_drains_and_exits() {
        let dir = scratch();
        std::fs::create_dir_all(&dir).unwrap();
        let config = dir.join("proxy.toml");
        std::fs::write(
            &config,
            "[units.world]\ntype = \"engine\"\ndomains = 40\nepochs = 1\n\
             \n[targets.cache]\ntype = \"rtr\"\nlisten = \"127.0.0.1:0\"\nunit = \"world\"\n",
        )
        .unwrap();
        let text = run_ok(&[
            "proxy",
            "--config",
            config.to_str().unwrap(),
            "--exit-after-drain",
            "true",
        ]);
        assert!(text.contains("fabric drained; exiting"), "{text}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The two numbers of a `"... baseline X -> whatif Y ..."` line.
    fn capture_pair(output: &str, prefix: &str) -> (f64, f64) {
        let line = output
            .lines()
            .find(|l| l.starts_with(prefix))
            .unwrap_or_else(|| panic!("no {prefix:?} line in {output}"));
        let nums: Vec<f64> = line
            .split_whitespace()
            .filter_map(|w| w.trim_start_matches('(').parse().ok())
            .collect();
        (nums[0], nums[1])
    }

    #[test]
    fn whatif_empty_scenario_reproduces_baseline() {
        let dir = scratch();
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("whatif.csv");
        let output = run_ok(&[
            "whatif",
            "--domains",
            "400",
            "--seed",
            "5",
            "--stride",
            "5",
            "--bin",
            "100",
            "--out",
            csv.to_str().unwrap(),
        ]);
        assert!(
            output.contains("exposure delta (overall): +0.000000"),
            "{output}"
        );
        let written = std::fs::read_to_string(&csv).unwrap();
        let mut lines = written.lines();
        assert_eq!(
            lines.next(),
            Some("rank_bin_start,baseline_capture,whatif_capture,delta")
        );
        let mut rows = 0;
        for line in lines {
            assert!(
                line.ends_with(",0.000000"),
                "empty scenario must reproduce the baseline exactly: {line}"
            );
            rows += 1;
        }
        assert_eq!(rows, 4, "400 domains / bin 100");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn whatif_top_cdn_signing_lowers_top_bin_capture() {
        let dir = scratch();
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("whatif.csv");
        let output = run_ok(&[
            "whatif",
            "--domains",
            "400",
            "--seed",
            "5",
            "--stride",
            "5",
            "--bin",
            "100",
            "--scenario",
            "cdn-signs:Akamai",
            "--out",
            csv.to_str().unwrap(),
        ]);
        assert!(
            output.contains("lever: CDN Akamai signs ROAs for"),
            "{output}"
        );
        // The counterfactual rode one incremental churn epoch (announce
        // only — untouched CAs re-issued identically, nothing withdrawn).
        assert!(output.contains("counterfactual epoch 1 -> 2:"), "{output}");
        assert!(output.contains("-0 VRPs"), "{output}");
        let (baseline, whatif) = capture_pair(&output, "top-bin capture:");
        assert!(
            whatif < baseline,
            "signing the top CDN's prefixes must strictly lower top-bin \
             capture: {baseline} -> {whatif}\n{output}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn whatif_revoking_a_class_raises_exposure() {
        let dir = scratch();
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("whatif.csv");
        let output = run_ok(&[
            "whatif",
            "--domains",
            "400",
            "--seed",
            "5",
            "--stride",
            "5",
            "--bin",
            "100",
            "--scenario",
            "revoke-class:webhoster",
            "--out",
            csv.to_str().unwrap(),
        ]);
        assert!(output.contains("lever: revoke webhoster ROAs"), "{output}");
        assert!(
            !output.contains("(0 revoked)"),
            "the adoption model always produces webhoster ROAs: {output}"
        );
        let delta_line = output
            .lines()
            .find(|l| l.starts_with("exposure delta (overall):"))
            .unwrap();
        let delta: f64 = delta_line
            .rsplit(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap_or_else(|_| panic!("unparsable delta in {delta_line:?}"));
        assert!(
            delta > 0.0,
            "revoking a class's ROAs must raise exposure: {output}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn whatif_top_k_lever_reports_deployers() {
        let dir = scratch();
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("whatif.csv");
        let output = run_ok(&[
            "whatif",
            "--domains",
            "400",
            "--seed",
            "5",
            "--stride",
            "5",
            "--bin",
            "100",
            "--scenario",
            "top-k-drop-invalid:100",
            "--out",
            csv.to_str().unwrap(),
        ]);
        assert!(
            output.contains("lever: operators of the top-100 ranks drop Invalids"),
            "{output}"
        );
        // A pure exposure-side lever runs no churn epoch at all.
        assert!(!output.contains("counterfactual epoch"), "{output}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn whatif_rejects_malformed_scenarios() {
        for spec in [
            "nonsense",
            "cdn-signs",
            "top-k-drop-invalid:many",
            "revoke-class:bank",
        ] {
            let args: Vec<String> = ["whatif", "--scenario", spec]
                .iter()
                .map(std::string::ToString::to_string)
                .collect();
            let mut out = Vec::new();
            assert!(
                matches!(run(&args, &mut out), Err(CliError::BadFlag(_))),
                "spec {spec:?} must be rejected"
            );
        }
        let args: Vec<String> = [
            "whatif",
            "--domains",
            "100",
            "--scenario",
            "cdn-signs:NoSuchCdn",
        ]
        .iter()
        .map(std::string::ToString::to_string)
        .collect();
        let mut out = Vec::new();
        assert!(matches!(run(&args, &mut out), Err(CliError::BadFlag(_))));
    }
}
