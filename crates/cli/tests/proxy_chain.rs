//! The tentpole demo: a multi-process VRP distribution chain.
//!
//! Process 1 runs an engine-rooted fabric (local validator → RTR +
//! JSON targets). Process 2 runs a relay fabric that ingests process 1
//! over *both* transports (RTR client unit + conditional JSON poller),
//! fails over between them with `any`, and re-serves RTR. The test then
//! acts as the router at the end of the chain and proves the deployment
//! story end to end:
//!
//! * the VRP set two hops downstream is **byte-identical** to the
//!   engine's, and
//! * every hop's RTR serial is in **lockstep** with the engine's epoch.

use std::collections::BTreeSet;
use std::io::BufRead;
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Final epoch the engine publishes: 1 initial + CHURN_EPOCHS churn.
const CHURN_EPOCHS: u64 = 3;
const FINAL_EPOCH: u64 = 1 + CHURN_EPOCHS;
const DEADLINE: Duration = Duration::from_secs(60);

/// A spawned `ripki-cli` child whose stdout is collected line by line.
/// Killed on drop so a failing assert never leaks processes.
struct Proxy {
    child: Child,
    lines: Arc<Mutex<Vec<String>>>,
}

impl Proxy {
    fn spawn(config: &std::path::Path) -> Proxy {
        let mut child = Command::new(env!("CARGO_BIN_EXE_ripki-cli"))
            .args(["proxy", "--config", config.to_str().expect("utf8 path")])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn ripki-cli proxy");
        let stdout = child.stdout.take().expect("piped stdout");
        let lines = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&lines);
        std::thread::spawn(move || {
            for line in std::io::BufReader::new(stdout).lines() {
                let Ok(line) = line else { break };
                sink.lock().expect("line sink").push(line);
            }
        });
        Proxy { child, lines }
    }

    /// Wait until some collected stdout line satisfies `pred`.
    fn wait_for_line<F: Fn(&str) -> bool>(&self, what: &str, pred: F) -> String {
        let start = Instant::now();
        while start.elapsed() < DEADLINE {
            if let Some(line) = self
                .lines
                .lock()
                .expect("line sink")
                .iter()
                .find(|l| pred(l))
            {
                return line.clone();
            }
            std::thread::sleep(Duration::from_millis(25));
        }
        panic!(
            "timed out waiting for {what}; stdout so far:\n{}",
            self.lines.lock().expect("line sink").join("\n")
        );
    }

    /// The `host:port` a named target logged at startup.
    fn target_addr(&self, target: &str) -> String {
        let needle = format!("target {target} ");
        let line = self.wait_for_line(&format!("{target} listening"), |l| {
            l.contains(&needle) && l.contains("listening on ")
        });
        line.split("listening on ")
            .nth(1)
            .expect("address after 'listening on'")
            .trim()
            .to_string()
    }
}

impl Drop for Proxy {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Sync an RTR client against `addr` until it reports `epoch`.
fn sync_until_epoch(addr: &str, epoch: u64) -> ripki_payload::VrpPayload {
    let start = Instant::now();
    let mut last = None;
    while start.elapsed() < DEADLINE {
        let Ok(stream) = TcpStream::connect(addr) else {
            std::thread::sleep(Duration::from_millis(50));
            continue;
        };
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .expect("read timeout");
        let mut client = ripki_rtr::Client::new(stream);
        if client.sync().is_ok() {
            if let Some(payload) = client.payload() {
                if payload.epoch() == epoch {
                    return payload;
                }
                last = Some(payload.epoch());
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!("cache at {addr} never reached epoch {epoch} (last seen: {last:?})");
}

#[test]
fn two_hop_chain_stays_byte_identical_and_in_serial_lockstep() {
    let dir = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .join(format!("proxy-chain-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");

    // Hop 1: local engine fans out over RTR and JSON-over-HTTP.
    let hop1_config = dir.join("hop1.toml");
    std::fs::write(
        &hop1_config,
        format!(
            "[units.world]\n\
             type = \"engine\"\n\
             domains = 60\n\
             seed = 13\n\
             epochs = {CHURN_EPOCHS}\n\
             interval-ms = 300\n\
             \n\
             [targets.cache]\n\
             type = \"rtr\"\n\
             listen = \"127.0.0.1:0\"\n\
             unit = \"world\"\n\
             \n\
             [targets.export]\n\
             type = \"http\"\n\
             listen = \"127.0.0.1:0\"\n\
             unit = \"world\"\n"
        ),
    )
    .expect("write hop1 config");
    let hop1 = Proxy::spawn(&hop1_config);
    let hop1_rtr = hop1.target_addr("cache");
    let hop1_http = hop1.target_addr("export");

    // Hop 2: ingest hop 1 over both transports, fail over with `any`,
    // re-serve RTR. The epochs agree (same origin), so `any` forwards
    // whichever transport delivers first.
    let hop2_config = dir.join("hop2.toml");
    std::fs::write(
        &hop2_config,
        format!(
            "[units.rtr-up]\n\
             type = \"rtr\"\n\
             connect = \"{hop1_rtr}\"\n\
             poll-ms = 50\n\
             \n\
             [units.json-up]\n\
             type = \"json\"\n\
             url = \"http://{hop1_http}/vrps.json\"\n\
             poll-ms = 100\n\
             \n\
             [units.feed]\n\
             type = \"any\"\n\
             sources = [\"rtr-up\", \"json-up\"]\n\
             \n\
             [targets.relay]\n\
             type = \"rtr\"\n\
             listen = \"127.0.0.1:0\"\n\
             unit = \"feed\"\n"
        ),
    )
    .expect("write hop2 config");
    let hop2 = Proxy::spawn(&hop2_config);
    let hop2_rtr = hop2.target_addr("relay");

    // The router at the end of the chain reaches the engine's final
    // epoch...
    let end_of_chain = sync_until_epoch(&hop2_rtr, FINAL_EPOCH);
    // ...and the set it holds is byte-identical to what hop 1 serves.
    let origin = sync_until_epoch(&hop1_rtr, FINAL_EPOCH);
    assert_eq!(
        end_of_chain, origin,
        "two hops downstream must serve the origin's exact VRP set"
    );
    assert_eq!(end_of_chain.digest(), origin.digest());
    assert!(
        !end_of_chain.is_empty(),
        "a world with 60 domains must produce VRPs"
    );
    let vrps: BTreeSet<_> = end_of_chain.vrps().iter().copied().collect();
    assert_eq!(vrps.len(), end_of_chain.len());

    // Serial lockstep, as logged by each hop's RTR target: the cache
    // serial equals the engine epoch at both hops.
    let lockstep = format!("serial {FINAL_EPOCH} in lockstep with epoch {FINAL_EPOCH} ");
    hop1.wait_for_line("hop1 lockstep log", |l| {
        l.contains("target cache (rtr):") && l.contains(&lockstep)
    });
    hop2.wait_for_line("hop2 lockstep log", |l| {
        l.contains("target relay (rtr):") && l.contains(&lockstep)
    });

    // rtr-probe (the operator's view) agrees with the in-test client.
    let probe = Command::new(env!("CARGO_BIN_EXE_ripki-cli"))
        .args(["rtr-probe", "--connect", &hop2_rtr])
        .output()
        .expect("run rtr-probe");
    assert!(probe.status.success(), "rtr-probe failed: {probe:?}");
    let text = String::from_utf8(probe.stdout).expect("utf8 probe output");
    assert!(
        text.contains(&format!("serial {FINAL_EPOCH} in lockstep with {origin}")),
        "probe output out of lockstep: {text}"
    );

    drop(hop2);
    drop(hop1);
    let _ = std::fs::remove_dir_all(&dir);
}
