//! Property-based tests over the world generator: structural invariants
//! that must hold for every seed and scale.

use proptest::prelude::*;
use ripki_dns::{Resolver, Vantage};
use ripki_websim::operators::OperatorClass;
use ripki_websim::{Scenario, ScenarioConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// World invariants across seeds and scales.
    #[test]
    fn world_invariants(seed in 0u64..10_000, domains in 300usize..1_200) {
        let scenario = Scenario::build(ScenarioConfig {
            seed,
            ..ScenarioConfig::with_domains(domains)
        });

        // Structure.
        prop_assert_eq!(scenario.ranking.len(), domains);
        prop_assert_eq!(scenario.truth.len(), domains);
        prop_assert_eq!(scenario.repository.trust_anchors.len(), 5);
        prop_assert_eq!(scenario.cdn_infras.len(), 16);
        prop_assert_eq!(
            scenario.registry.asns_of_class(OperatorClass::Cdn).len(),
            199
        );

        // Every operator AS is registered and in the topology.
        for op in &scenario.operators {
            for asn in &op.asns {
                prop_assert!(scenario.registry.get(*asn).is_some());
                prop_assert!(scenario.topology.contains(*asn));
            }
        }

        // Every ranked name's bare form resolves from every vantage; the
        // www form may be absent only for the small CDN service-name
        // share (the paper's "n/a" rows).
        for vantage in [Vantage::GOOGLE_DNS_BERLIN, Vantage::OPEN_DNS] {
            let resolver = Resolver::new(&scenario.zones, vantage);
            let mut www_missing = 0usize;
            let mut probed = 0usize;
            for listed in scenario.ranking.iter().step_by(23) {
                let bare = listed.without_www();
                prop_assert!(resolver.resolve(&bare).is_ok(), "{bare} from {vantage}");
                probed += 1;
                if resolver.resolve(&bare.with_www()).is_err() {
                    www_missing += 1;
                }
            }
            let share = www_missing as f64 / probed.max(1) as f64;
            prop_assert!(share < 0.05, "www-missing share {share} from {vantage}");
        }

        // The RPKI validates without rejections and the adoption summary
        // matches what the repository holds.
        let report = ripki_rpki::validate(&scenario.repository, scenario.now);
        prop_assert_eq!(report.rejected_count(), 0);
        prop_assert_eq!(
            report.vrps.len(),
            scenario
                .repository
                .all_roas()
                .flat_map(|r| r.prefixes.iter())
                .count()
        );
        // Adopters all exist.
        for idx in &scenario.adoption_summary.adopters {
            prop_assert!(*idx < scenario.operators.len());
        }

        // Announced table origins are operator ASNs or their MOAS/offset
        // variants; every covering lookup returns consistent families.
        for entry in scenario.rib.iter().take(300) {
            if let Some(origin) = entry.path.origin().asn() {
                let known = scenario.registry.get(origin).is_some();
                prop_assert!(known, "unknown origin {origin}");
            }
        }
    }

    /// Ground-truth CDN share decreases from head to tail for every seed.
    #[test]
    fn cdn_share_monotone_in_expectation(seed in 0u64..1_000) {
        let domains = 4_000;
        let scenario = Scenario::build(ScenarioConfig {
            seed,
            ..ScenarioConfig::with_domains(domains)
        });
        let share = |range: std::ops::Range<usize>| {
            let n = range.len();
            scenario.truth[range].iter().filter(|t| t.cdn.is_some()).count() as f64
                / n as f64
        };
        let head = share(0..domains / 4);
        let tail = share(3 * domains / 4..domains);
        prop_assert!(
            head > tail,
            "seed {seed}: head {head} should exceed tail {tail}"
        );
    }
}
