//! The AS assignment registry.
//!
//! §4.2: "To derive the AS numbers of these CDNs, we apply keyword
//! spotting on common AS assignment lists." RIRs publish per-ASN
//! assignment records with organisation names; this registry reproduces
//! that list for the simulated world, including realistic name formats
//! (`"AKAMAI-SIM-3, Akamai International B.V."`), so the audit code can
//! do exactly what the paper did: case-insensitive substring search.

use crate::operators::{OperatorClass, OperatorId};
use ripki_net::Asn;
use std::collections::BTreeMap;

/// One registry record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsInfo {
    /// The assignment name as it would appear in the RIR list.
    pub name: String,
    /// The operator holding the assignment.
    pub operator: OperatorId,
    /// The operator's class (denormalised for convenience).
    pub class: OperatorClass,
    /// RIR region index (0–4).
    pub rir: usize,
}

/// The full ASN → assignment mapping.
#[derive(Debug, Clone, Default)]
pub struct AsRegistry {
    records: BTreeMap<Asn, AsInfo>,
}

impl AsRegistry {
    /// Empty registry.
    pub fn new() -> AsRegistry {
        AsRegistry::default()
    }

    /// Register an assignment.
    pub fn insert(&mut self, asn: Asn, info: AsInfo) {
        self.records.insert(asn, info);
    }

    /// The record for `asn`, if assigned.
    pub fn get(&self, asn: Asn) -> Option<&AsInfo> {
        self.records.get(&asn)
    }

    /// Number of assignments.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Keyword spotting: all ASNs whose assignment name contains
    /// `keyword`, case-insensitively — the paper's §4.2 method. "This
    /// leads to a lower bound for the current state of deployment."
    pub fn search(&self, keyword: &str) -> Vec<Asn> {
        let needle = keyword.to_ascii_lowercase();
        self.records
            .iter()
            .filter(|(_, info)| info.name.to_ascii_lowercase().contains(&needle))
            .map(|(asn, _)| *asn)
            .collect()
    }

    /// All ASNs of a given operator.
    pub fn asns_of(&self, operator: OperatorId) -> Vec<Asn> {
        self.records
            .iter()
            .filter(|(_, info)| info.operator == operator)
            .map(|(asn, _)| *asn)
            .collect()
    }

    /// All ASNs of a given class.
    pub fn asns_of_class(&self, class: OperatorClass) -> Vec<Asn> {
        self.records
            .iter()
            .filter(|(_, info)| info.class == class)
            .map(|(asn, _)| *asn)
            .collect()
    }

    /// Iterate all records, sorted by ASN.
    pub fn iter(&self) -> impl Iterator<Item = (Asn, &AsInfo)> {
        self.records.iter().map(|(a, i)| (*a, i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AsRegistry {
        let mut r = AsRegistry::new();
        r.insert(
            Asn::new(20940),
            AsInfo {
                name: "AKAMAI-SIM-1, Akamai International B.V.".into(),
                operator: OperatorId(0),
                class: OperatorClass::Cdn,
                rir: 4,
            },
        );
        r.insert(
            Asn::new(20941),
            AsInfo {
                name: "AKAMAI-SIM-2, Akamai Technologies Inc.".into(),
                operator: OperatorId(0),
                class: OperatorClass::Cdn,
                rir: 2,
            },
        );
        r.insert(
            Asn::new(3320),
            AsInfo {
                name: "DTAG-SIM, Deutsche Telekom AG".into(),
                operator: OperatorId(1),
                class: OperatorClass::Isp,
                rir: 4,
            },
        );
        r
    }

    #[test]
    fn search_is_case_insensitive_substring() {
        let r = sample();
        assert_eq!(r.search("akamai").len(), 2);
        assert_eq!(r.search("AKAMAI").len(), 2);
        assert_eq!(r.search("telekom"), vec![Asn::new(3320)]);
        assert!(r.search("cloudflare").is_empty());
    }

    #[test]
    fn lookups_by_operator_and_class() {
        let r = sample();
        assert_eq!(r.asns_of(OperatorId(0)).len(), 2);
        assert_eq!(r.asns_of(OperatorId(1)), vec![Asn::new(3320)]);
        assert_eq!(r.asns_of_class(OperatorClass::Cdn).len(), 2);
        assert_eq!(r.asns_of_class(OperatorClass::Webhoster).len(), 0);
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
        assert!(r.get(Asn::new(3320)).is_some());
        assert!(r.get(Asn::new(1)).is_none());
    }
}
