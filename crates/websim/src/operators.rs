//! Operator population: ISPs, webhosters, enterprises, and the sixteen
//! CDNs the paper audits.
//!
//! §4.2: "we inspect the infrastructures of Akamai, Amazon, Cdnetworks,
//! Chinacache, Chinanet, Cloudflare, Cotendo, Edgecast, Highwinds,
//! Instart, Internap, Limelight, Mirrorimage, Netdna, Simplecdn, and
//! Yottaa. […] We discover 199 ASes operated by these CDNs. […] Internap
//! operates at least 41 ASes." The AS-count split below preserves those
//! two totals.

use ripki_net::Asn;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The business class of an operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, PartialOrd, Ord)]
pub enum OperatorClass {
    /// Access/transit network also selling hosting/colocation.
    Isp,
    /// Dedicated web hosting company.
    Webhoster,
    /// Content delivery network.
    Cdn,
    /// Enterprise hosting its own site.
    Enterprise,
}

impl fmt::Display for OperatorClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OperatorClass::Isp => write!(f, "ISP"),
            OperatorClass::Webhoster => write!(f, "webhoster"),
            OperatorClass::Cdn => write!(f, "CDN"),
            OperatorClass::Enterprise => write!(f, "enterprise"),
        }
    }
}

/// Stable operator identifier (index into the scenario's operator list).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct OperatorId(pub u32);

/// One operator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Operator {
    /// Stable id.
    pub id: OperatorId,
    /// Display name, e.g. `"Akamai"` or `"ISP-204"`.
    pub name: String,
    /// Business class.
    pub class: OperatorClass,
    /// The ASes the operator runs.
    pub asns: Vec<Asn>,
    /// Which RIR region the operator registers with (0–4, indexing
    /// [`crate::allocation::RIR_NAMES`]).
    pub rir: usize,
}

/// The sixteen CDNs of §4.2: `(name, AS count, traffic weight)`.
///
/// AS counts sum to 199 with Internap fixed at 41, matching the paper's
/// keyword-spotting result. The *traffic weight* governs how many
/// customer domains each CDN serves and is deliberately decoupled from
/// the AS footprint: Akamai dominated web delivery in 2014/15, while
/// Internap — despite its many ASes — served few of the top-1M sites.
pub const CDN_SPECS: [(&str, usize, usize); 16] = [
    ("Akamai", 32, 38),
    ("Amazon", 20, 16),
    ("Cdnetworks", 8, 3),
    ("Chinacache", 7, 2),
    ("Chinanet", 18, 5),
    ("Cloudflare", 10, 14),
    ("Cotendo", 4, 1),
    ("Edgecast", 9, 8),
    ("Highwinds", 12, 3),
    ("Instart", 3, 1),
    ("Internap", 41, 1),
    ("Limelight", 14, 6),
    ("Mirrorimage", 5, 1),
    ("Netdna", 6, 2),
    ("Simplecdn", 4, 1),
    ("Yottaa", 6, 1),
];

/// Total CDN AS count claimed by [`CDN_SPECS`].
pub fn cdn_as_total() -> usize {
    CDN_SPECS.iter().map(|(_, n, _)| n).sum()
}

impl Operator {
    /// Whether this operator is one of the audited CDNs.
    pub fn is_cdn(&self) -> bool {
        self.class == OperatorClass::Cdn
    }

    /// The operator's first (primary) AS.
    pub fn primary_asn(&self) -> Asn {
        self.asns[0]
    }
}

impl fmt::Display for Operator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}, {} ASes)",
            self.name,
            self.class,
            self.asns.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdn_specs_match_paper_totals() {
        assert_eq!(CDN_SPECS.len(), 16);
        assert_eq!(cdn_as_total(), 199);
        let internap = CDN_SPECS.iter().find(|(n, _, _)| *n == "Internap").unwrap();
        assert_eq!(internap.1, 41);
        // Traffic weights: Akamai dominates, Internap is marginal.
        let akamai = CDN_SPECS.iter().find(|(n, _, _)| *n == "Akamai").unwrap();
        assert!(akamai.2 > internap.2 * 20);
    }

    #[test]
    fn operator_accessors() {
        let op = Operator {
            id: OperatorId(3),
            name: "ISP-3".into(),
            class: OperatorClass::Isp,
            asns: vec![Asn::new(100), Asn::new(101)],
            rir: 4,
        };
        assert!(!op.is_cdn());
        assert_eq!(op.primary_asn(), Asn::new(100));
        assert!(op.to_string().contains("ISP-3"));
        assert!(op.to_string().contains("2 ASes"));
    }

    #[test]
    fn class_display() {
        assert_eq!(OperatorClass::Cdn.to_string(), "CDN");
        assert_eq!(OperatorClass::Webhoster.to_string(), "webhoster");
    }
}
