//! CDN infrastructure modelling.
//!
//! Two facts from the paper drive this module:
//!
//! * "Generally, CDNs use CNAME chains to redirect DNS requests to their
//!   caches" — customer domains alias into the CDN's namespace, which
//!   aliases again to a concrete edge host (the paper's example:
//!   `www.huffingtonpost.com → www.huffingtonpost.com.edgesuite.net →
//!   a495.g.akamai.net → A`).
//! * "Another interesting trend has been for CDNs to place caches in
//!   third party networks (e.g. eyeball ISPs). This allows the CDN to
//!   'inherit' RPKI support from the third party network." — some edge
//!   addresses live in ISP address space, not the CDN's own ASes.

use crate::operators::{Operator, OperatorId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ripki_dns::DomainName;
use ripki_net::{Asn, Ipv4Prefix};

/// One CDN's deployed infrastructure.
#[derive(Debug, Clone)]
pub struct CdnInfra {
    /// The owning operator.
    pub operator: OperatorId,
    /// Lower-case CDN name, e.g. `"akamai"`.
    pub name: String,
    /// The CDN's DNS suite domain, e.g. `"edgesuite.akamai-sim.net"`.
    pub suite_domain: String,
    /// Edge prefixes in the CDN's own ASes.
    pub own_edges: Vec<(Asn, Ipv4Prefix)>,
    /// Edge prefixes placed inside third-party (eyeball ISP) networks:
    /// `(hosting ISP's AS, prefix carved from that ISP's space)`.
    pub third_party_edges: Vec<(Asn, Ipv4Prefix)>,
}

impl CdnInfra {
    /// Build the infra description for one CDN.
    pub fn new(op: &Operator, own_edges: Vec<(Asn, Ipv4Prefix)>) -> CdnInfra {
        let name = op.name.to_ascii_lowercase();
        CdnInfra {
            operator: op.id,
            suite_domain: format!("edgesuite.{name}-sim.net"),
            name,
            own_edges,
            third_party_edges: Vec::new(),
        }
    }

    /// The first CNAME in a customer chain:
    /// `<customer>.<suite_domain>`.
    pub fn customer_alias(&self, customer: &DomainName) -> DomainName {
        DomainName::parse(&format!("{customer}.{}", self.suite_domain))
            .expect("constructed alias is valid")
    }

    /// The second CNAME: a generic edge-group name like
    /// `a495.g.akamai-sim.net`.
    pub fn edge_group_name(&self, group: u32) -> DomainName {
        DomainName::parse(&format!("a{group}.g.{}-sim.net", self.name))
            .expect("constructed edge name is valid")
    }

    /// Deterministically pick an edge `(asn, prefix)` for a given
    /// customer + vantage, honouring the third-party placement rate.
    ///
    /// The placement *class* (own vs third-party) is stable per customer
    /// group; the concrete edge varies per vantage, like real geo-DNS.
    pub fn pick_edge(
        &self,
        group: u32,
        vantage_salt: u64,
        third_party_rate: f64,
    ) -> (Asn, Ipv4Prefix) {
        let mut class_rng =
            StdRng::seed_from_u64((group as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xcd_17);
        let use_third_party = !self.third_party_edges.is_empty()
            && class_rng.gen_bool(third_party_rate.clamp(0.0, 1.0));
        let pool: &[(Asn, Ipv4Prefix)] = if use_third_party {
            &self.third_party_edges
        } else {
            &self.own_edges
        };
        debug_assert!(!pool.is_empty(), "CDN without edges");
        let mut pick_rng = StdRng::seed_from_u64(
            (group as u64) ^ vantage_salt.wrapping_mul(0x2545_f491_4f6c_dd1d),
        );
        pool[pick_rng.gen_range(0..pool.len())]
    }
}

/// Weight for choosing which CDN serves a customer: proportional to the
/// CDN's AS footprint (big CDNs serve more of the web).
pub fn pick_cdn<'a>(infras: &'a [CdnInfra], weights: &[usize], rng: &mut StdRng) -> &'a CdnInfra {
    debug_assert_eq!(infras.len(), weights.len());
    let total: usize = weights.iter().sum();
    let mut x = rng.gen_range(0..total.max(1));
    for (infra, w) in infras.iter().zip(weights) {
        if x < *w {
            return infra;
        }
        x -= w;
    }
    infras.last().expect("non-empty CDN list")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::OperatorClass;

    fn op() -> Operator {
        Operator {
            id: OperatorId(0),
            name: "Akamai".into(),
            class: OperatorClass::Cdn,
            asns: vec![Asn::new(20940)],
            rir: 4,
        }
    }

    fn prefix(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn infra() -> CdnInfra {
        let mut i = CdnInfra::new(&op(), vec![(Asn::new(20940), prefix("77.0.0.0/16"))]);
        i.third_party_edges = vec![(Asn::new(3320), prefix("62.0.0.0/16"))];
        i
    }

    #[test]
    fn naming_matches_paper_shape() {
        let i = infra();
        let customer = DomainName::parse("www.huffpost-sim.com").unwrap();
        let alias = i.customer_alias(&customer);
        assert_eq!(
            alias.as_str(),
            "www.huffpost-sim.com.edgesuite.akamai-sim.net"
        );
        let edge = i.edge_group_name(495);
        assert_eq!(edge.as_str(), "a495.g.akamai-sim.net");
    }

    #[test]
    fn edge_pick_is_deterministic_and_varies_by_vantage() {
        let i = infra();
        let a1 = i.pick_edge(7, 0, 0.5);
        let a2 = i.pick_edge(7, 0, 0.5);
        assert_eq!(a1, a2);
        // Same group, same placement pool; different vantage may pick a
        // different edge from the pool (here pools have one entry each,
        // so assert only pool stability).
        let b = i.pick_edge(7, 1, 0.5);
        assert_eq!(a1.0, b.0, "placement class must be stable per group");
    }

    #[test]
    fn third_party_rate_zero_and_one() {
        let i = infra();
        for g in 0..50 {
            assert_eq!(i.pick_edge(g, 0, 0.0).0, Asn::new(20940));
            assert_eq!(i.pick_edge(g, 0, 1.0).0, Asn::new(3320));
        }
    }

    #[test]
    fn third_party_rate_without_placements_falls_back() {
        let i = CdnInfra::new(&op(), vec![(Asn::new(20940), prefix("77.0.0.0/16"))]);
        assert_eq!(i.pick_edge(3, 0, 1.0).0, Asn::new(20940));
    }

    #[test]
    fn weighted_pick_prefers_heavy_cdns() {
        use rand::SeedableRng;
        let i1 = infra();
        let mut i2 = infra();
        i2.name = "tiny".into();
        let infras = vec![i1, i2];
        let weights = vec![99, 1];
        let mut rng = StdRng::seed_from_u64(5);
        let heavy = (0..1000)
            .filter(|_| pick_cdn(&infras, &weights, &mut rng).name == "akamai")
            .count();
        assert!(heavy > 930, "heavy CDN picked {heavy}/1000");
    }
}
