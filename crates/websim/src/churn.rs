//! World-event churn streams: how the ecosystem evolves between epochs.
//!
//! The paper measures a single instant, but its argument (§2.3, §4) is
//! longitudinal: ROAs appear, expire, and get revoked; routes flap and
//! get hijacked; CDN CNAME graphs churn. [`ChurnStream`] turns a built
//! [`Scenario`] into a deterministic sequence of [`EpochChurn`] batches
//! of typed [`WorldEvent`]s, which the incremental study engine applies
//! as copy-on-write deltas.
//!
//! RPKI events are produced by *replaying* the scenario's issuing
//! program ([`Scenario::issuing_builder`]) and then evolving the still
//! open builder, so each epoch's repository snapshot is exactly what the
//! scenario's CAs would publish after that evolution — signatures,
//! CRLs, and manifest numbers included.
//!
//! The stream keeps the simulated clock fixed at the scenario's `now`:
//! "expiry" is modelled as the CA unpublishing the ROA (the relying
//! party's view is identical), which keeps every already-issued
//! certificate inside its validity window.

use crate::adoption::PrefixHolding;
use crate::operators::Operator;
use crate::scenario::{Scenario, COLLECTOR_PEERS, TRANSIT_POOL};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ripki_bgp::path::AsPath;
use ripki_bgp::rib::RibEntry;
use ripki_crypto::keystore::KeyId;
use ripki_dns::vantage::Vantage;
use ripki_dns::{DomainName, RecordData};
use ripki_net::{Asn, IpPrefix};
use ripki_rpki::repo::{Repository, RepositoryBuilder};
use ripki_rpki::resources::Resources;
use ripki_rpki::roa::RoaPrefix;
use ripki_rpki::time::SimTime;
use std::collections::BTreeSet;
use std::sync::Arc;

/// One typed change to the world between two epochs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorldEvent {
    /// A zone operator replaces the base record set of a name
    /// (re-hosting, renumbering).
    ZoneEdit {
        /// The owner name whose records change.
        name: DomainName,
        /// The replacement record set.
        records: Vec<RecordData>,
    },
    /// A CNAME owner points at a different canonical tail (CDN switch).
    CnameRetarget {
        /// The aliased owner name.
        name: DomainName,
        /// The new canonical target.
        target: DomainName,
    },
    /// A collector peer reports a new route (traffic engineering
    /// more-specific, new transit, or a hijack).
    RibAnnounce(RibEntry),
    /// One peer's route for a prefix disappears.
    RibWithdraw {
        /// The withdrawn prefix.
        prefix: IpPrefix,
        /// The peer that lost the route.
        peer: Asn,
    },
    /// A CA published a new ROA authorizing `asn` for `prefix`.
    RoaAdded {
        /// The authorized prefix.
        prefix: IpPrefix,
        /// The authorized origin.
        asn: Asn,
    },
    /// A ROA left publication (modelling expiry / cleanup).
    RoaExpired {
        /// The formerly authorized prefix.
        prefix: IpPrefix,
        /// The formerly authorized origin.
        asn: Asn,
    },
    /// A ROA's EE certificate landed on its CA's CRL.
    RoaRevoked {
        /// The prefix of the revoked authorization.
        prefix: IpPrefix,
        /// The origin of the revoked authorization.
        asn: Asn,
    },
    /// A leaf CA rolled its key (old cert revoked, ROAs re-signed).
    KeyRollover {
        /// Name of the CA that rolled its key.
        ca: String,
    },
}

/// Everything that happened in one epoch: the event list plus, when any
/// RPKI event fired, the repository snapshot the CAs published.
#[derive(Debug, Clone)]
pub struct EpochChurn {
    /// The epoch's events, in application order.
    pub events: Vec<WorldEvent>,
    /// `Some` iff the epoch contained RPKI events; the engine re-runs
    /// relying-party validation against it. Shared (`Arc`) because the
    /// consuming engine keeps the last repository alive for incremental
    /// expiry sweeps, and a 20k-object repository is expensive to clone.
    pub repository: Option<Arc<Repository>>,
    /// The measurement instant of the epoch.
    pub now: SimTime,
}

impl EpochChurn {
    /// Whether the epoch carries no events at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Per-epoch event counts (each is "how many of this kind per epoch").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnConfig {
    /// Stream seed; with the scenario seed, fully determines the stream.
    pub seed: u64,
    /// Base record-set replacements.
    pub zone_edits: usize,
    /// CNAME tail switches.
    pub cname_retargets: usize,
    /// New collector-peer routes.
    pub rib_announces: usize,
    /// Routes disappearing from one peer.
    pub rib_withdrawals: usize,
    /// Newly published ROAs.
    pub roa_additions: usize,
    /// ROAs leaving publication by expiry.
    pub roa_expirations: usize,
    /// ROAs revoked via their CA's CRL.
    pub roa_revocations: usize,
    /// Leaf-CA key rollovers.
    pub key_rollovers: usize,
}

impl Default for ChurnConfig {
    fn default() -> ChurnConfig {
        ChurnConfig {
            seed: 0xc0_ffee,
            zone_edits: 3,
            cname_retargets: 2,
            rib_announces: 2,
            rib_withdrawals: 1,
            roa_additions: 1,
            roa_expirations: 1,
            roa_revocations: 0,
            key_rollovers: 0,
        }
    }
}

/// A deterministic generator of [`EpochChurn`] batches over one scenario.
///
/// Owns copies of everything it samples from, so it outlives the
/// snapshots the engine swaps in.
pub struct ChurnStream {
    cfg: ChurnConfig,
    scenario_seed: u64,
    now: SimTime,
    /// The replayed issuing side of the scenario's RPKI (kept open).
    builder: RepositoryBuilder,
    ranking: Vec<DomainName>,
    operators: Vec<Operator>,
    holdings: Vec<PrefixHolding>,
    /// Ranked names currently CNAME-delegated, with their current target.
    cname_owners: Vec<(DomainName, DomainName)>,
    /// Distinct first-hop CNAME targets seen in the original zones.
    target_pool: Vec<DomainName>,
    /// `(prefix, peer)` routes believed live (kept in sync with emitted
    /// announce/withdraw events).
    live_routes: Vec<(IpPrefix, Asn)>,
    /// Holding indices not yet covered by a churn-added ROA.
    roa_addition_candidates: Vec<usize>,
    /// CAs created by churn (per operator index), so repeated additions
    /// from one operator share a CA.
    churn_cas: Vec<(usize, KeyId)>,
    /// EE serials already revoked (never revoke twice).
    revoked: BTreeSet<u64>,
    epoch_index: u64,
}

impl ChurnStream {
    /// A stream over `scenario` with the given per-epoch counts.
    pub fn new(scenario: &Scenario, cfg: ChurnConfig) -> ChurnStream {
        let (builder, summary) = scenario.issuing_builder();

        let mut cname_owners = Vec::new();
        let mut target_pool: Vec<DomainName> = Vec::new();
        let mut seen = BTreeSet::new();
        for listed in &scenario.ranking {
            let bare = listed.without_www();
            for name in [bare.clone(), bare.with_www()] {
                let Some(records) = scenario.zones.lookup(&name, Vantage::GOOGLE_DNS_BERLIN) else {
                    continue;
                };
                if let Some(target) = records.iter().find_map(RecordData::cname) {
                    cname_owners.push((name, target.clone()));
                    if seen.insert(target.clone()) {
                        target_pool.push(target.clone());
                    }
                }
            }
        }

        let mut live_routes: Vec<(IpPrefix, Asn)> = Vec::new();
        let mut seen_routes = BTreeSet::new();
        for entry in scenario.rib.iter() {
            if seen_routes.insert((entry.prefix, entry.peer)) {
                live_routes.push((entry.prefix, entry.peer));
            }
        }

        // Operators that stayed out of the RPKI can adopt during churn.
        let roa_addition_candidates: Vec<usize> = scenario
            .holdings
            .iter()
            .enumerate()
            .filter(|(_, h)| !summary.adopters.contains(&h.operator))
            .map(|(i, _)| i)
            .collect();

        ChurnStream {
            cfg,
            scenario_seed: scenario.config.seed,
            now: scenario.now,
            builder,
            ranking: scenario.ranking.clone(),
            operators: scenario.operators.clone(),
            holdings: scenario.holdings.clone(),
            cname_owners,
            target_pool,
            live_routes,
            roa_addition_candidates,
            churn_cas: Vec::new(),
            revoked: BTreeSet::new(),
            epoch_index: 0,
        }
    }

    /// Number of epochs generated so far.
    pub fn epochs_generated(&self) -> u64 {
        self.epoch_index
    }

    /// Generate the next epoch's churn batch. Deterministic: the same
    /// scenario and config yield the same sequence of batches.
    pub fn next_epoch(&mut self) -> EpochChurn {
        self.epoch_index += 1;
        let mut rng = StdRng::seed_from_u64(
            self.cfg.seed
                ^ self.scenario_seed.rotate_left(31)
                ^ self.epoch_index.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        );
        let mut events = Vec::new();
        let mut rpki_dirty = false;

        self.gen_zone_edits(&mut rng, &mut events);
        self.gen_cname_retargets(&mut rng, &mut events);
        self.gen_rib_announces(&mut rng, &mut events);
        self.gen_rib_withdrawals(&mut rng, &mut events);
        rpki_dirty |= self.gen_roa_additions(&mut rng, &mut events);
        rpki_dirty |= self.gen_roa_expirations(&mut rng, &mut events);
        rpki_dirty |= self.gen_roa_revocations(&mut rng, &mut events);
        rpki_dirty |= self.gen_key_rollovers(&mut rng, &mut events);

        let repository = rpki_dirty.then(|| Arc::new(self.builder.snapshot()));
        EpochChurn {
            events,
            repository,
            now: self.now,
        }
    }

    /// A deterministic host address inside one of the scenario's v4
    /// holdings (never the network address).
    fn random_holding_addr(&self, rng: &mut StdRng) -> Option<std::net::IpAddr> {
        let v4: Vec<&PrefixHolding> = self
            .holdings
            .iter()
            .filter(|h| h.prefix.as_v4().is_some())
            .collect();
        if v4.is_empty() {
            return None;
        }
        let h = v4[rng.gen_range(0..v4.len())];
        let p = h.prefix.as_v4().expect("filtered to v4");
        let size = 1u64 << (32 - p.len() as u64);
        let offset = 1 + (rng.gen::<u64>() % (size - 1)) as u32;
        Some(std::net::IpAddr::V4(std::net::Ipv4Addr::from(
            p.raw_bits() | offset,
        )))
    }

    fn gen_zone_edits(&mut self, rng: &mut StdRng, events: &mut Vec<WorldEvent>) {
        for _ in 0..self.cfg.zone_edits {
            if self.ranking.is_empty() {
                return;
            }
            let Some(addr) = self.random_holding_addr(rng) else {
                return;
            };
            let rank = rng.gen_range(0..self.ranking.len());
            let name = self.ranking[rank].without_www();
            events.push(WorldEvent::ZoneEdit {
                name,
                records: vec![RecordData::from_addr(addr)],
            });
        }
    }

    fn gen_cname_retargets(&mut self, rng: &mut StdRng, events: &mut Vec<WorldEvent>) {
        for _ in 0..self.cfg.cname_retargets {
            if self.cname_owners.is_empty() || self.target_pool.len() < 2 {
                return;
            }
            let i = rng.gen_range(0..self.cname_owners.len());
            let current = self.cname_owners[i].1.clone();
            // Bounded retry keeps determinism even if the draw repeats.
            let mut target = None;
            for _ in 0..8 {
                let cand = &self.target_pool[rng.gen_range(0..self.target_pool.len())];
                if *cand != current && *cand != self.cname_owners[i].0 {
                    target = Some(cand.clone());
                    break;
                }
            }
            let Some(target) = target else { continue };
            self.cname_owners[i].1 = target.clone();
            events.push(WorldEvent::CnameRetarget {
                name: self.cname_owners[i].0.clone(),
                target,
            });
        }
    }

    fn gen_rib_announces(&mut self, rng: &mut StdRng, events: &mut Vec<WorldEvent>) {
        for _ in 0..self.cfg.rib_announces {
            if self.holdings.is_empty() {
                return;
            }
            let h = self.holdings[rng.gen_range(0..self.holdings.len())];
            // Half traffic engineering (true origin via a new transit),
            // half origin hijack from an unassigned ASN.
            let hijack = rng.gen_bool(0.5);
            let origin = if hijack {
                Asn::new(h.asn.value().wrapping_add(1_000_000))
            } else {
                h.asn
            };
            let transit = TRANSIT_POOL
                [(origin.value() as usize ^ self.epoch_index as usize) % TRANSIT_POOL.len()];
            let peer = Asn::new(COLLECTOR_PEERS[rng.gen_range(0..COLLECTOR_PEERS.len())]);
            let entry = RibEntry {
                prefix: h.prefix,
                path: AsPath::sequence([transit, origin.value()]),
                peer,
            };
            self.live_routes.push((h.prefix, peer));
            events.push(WorldEvent::RibAnnounce(entry));
        }
    }

    fn gen_rib_withdrawals(&mut self, rng: &mut StdRng, events: &mut Vec<WorldEvent>) {
        for _ in 0..self.cfg.rib_withdrawals {
            if self.live_routes.is_empty() {
                return;
            }
            let i = rng.gen_range(0..self.live_routes.len());
            let (prefix, peer) = self.live_routes.swap_remove(i);
            events.push(WorldEvent::RibWithdraw { prefix, peer });
        }
    }

    fn gen_roa_additions(&mut self, rng: &mut StdRng, events: &mut Vec<WorldEvent>) -> bool {
        let mut dirty = false;
        for _ in 0..self.cfg.roa_additions {
            if self.roa_addition_candidates.is_empty() {
                break;
            }
            let slot = rng.gen_range(0..self.roa_addition_candidates.len());
            let holding_idx = self.roa_addition_candidates.swap_remove(slot);
            let h = self.holdings[holding_idx];
            let op = &self.operators[h.operator];
            let ca = match self.churn_cas.iter().find(|(o, _)| *o == h.operator) {
                Some((_, ca)) => *ca,
                None => {
                    let ta = self
                        .builder
                        .find_ca(crate::allocation::RIR_NAMES[op.rir])
                        .expect("scenario builder created all five TAs");
                    let resources = Resources::from_prefixes(
                        self.holdings
                            .iter()
                            .filter(|x| x.operator == h.operator)
                            .map(|x| x.prefix),
                    );
                    let ca = self
                        .builder
                        .add_ca(ta, &format!("{}-late-{}", op.name, h.operator), resources)
                        .expect("operator holdings are within the RIR's space");
                    self.churn_cas.push((h.operator, ca));
                    ca
                }
            };
            self.builder
                .add_roa(
                    ca,
                    h.asn,
                    vec![RoaPrefix::up_to(h.prefix, h.deepest_announced)],
                )
                .expect("holding within the CA's resources");
            events.push(WorldEvent::RoaAdded {
                prefix: h.prefix,
                asn: h.asn,
            });
            dirty = true;
        }
        dirty
    }

    fn gen_roa_expirations(&mut self, rng: &mut StdRng, events: &mut Vec<WorldEvent>) -> bool {
        let mut dirty = false;
        for _ in 0..self.cfg.roa_expirations {
            let roas = self.builder.list_roas();
            if roas.is_empty() {
                break;
            }
            let (ca, ee_serial, asn) = roas[rng.gen_range(0..roas.len())];
            let prefixes = self.builder.roa_prefixes(ca, ee_serial).unwrap_or_default();
            if self.builder.remove_roa(ca, ee_serial).unwrap_or(false) {
                for rp in prefixes {
                    events.push(WorldEvent::RoaExpired {
                        prefix: rp.prefix,
                        asn,
                    });
                }
                dirty = true;
            }
        }
        dirty
    }

    fn gen_roa_revocations(&mut self, rng: &mut StdRng, events: &mut Vec<WorldEvent>) -> bool {
        let mut dirty = false;
        for _ in 0..self.cfg.roa_revocations {
            let candidates: Vec<(KeyId, u64, Asn)> = self
                .builder
                .list_roas()
                .into_iter()
                .filter(|(_, ee, _)| !self.revoked.contains(ee))
                .collect();
            if candidates.is_empty() {
                break;
            }
            let (ca, ee_serial, asn) = candidates[rng.gen_range(0..candidates.len())];
            let prefixes = self.builder.roa_prefixes(ca, ee_serial).unwrap_or_default();
            if self.builder.revoke(ca, ee_serial).is_ok() {
                self.revoked.insert(ee_serial);
                for rp in prefixes {
                    events.push(WorldEvent::RoaRevoked {
                        prefix: rp.prefix,
                        asn,
                    });
                }
                dirty = true;
            }
        }
        dirty
    }

    fn gen_key_rollovers(&mut self, rng: &mut StdRng, events: &mut Vec<WorldEvent>) -> bool {
        let mut dirty = false;
        for _ in 0..self.cfg.key_rollovers {
            let candidates = self.builder.rollover_candidates();
            if candidates.is_empty() {
                break;
            }
            let ca = candidates[rng.gen_range(0..candidates.len())];
            let name = self.builder.ca_name(ca).unwrap_or_default().to_string();
            if self.builder.rollover_key(ca).is_ok() {
                events.push(WorldEvent::KeyRollover { ca: name });
                dirty = true;
            }
        }
        dirty
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Scenario, ScenarioConfig};

    fn small_scenario() -> Scenario {
        Scenario::build(ScenarioConfig {
            domains: 60,
            seed: 11,
            ..Default::default()
        })
    }

    #[test]
    fn streams_are_deterministic() {
        let scenario = small_scenario();
        let cfg = ChurnConfig {
            roa_revocations: 1,
            key_rollovers: 1,
            ..Default::default()
        };
        let mut a = ChurnStream::new(&scenario, cfg);
        let mut b = ChurnStream::new(&scenario, cfg);
        for _ in 0..5 {
            let ea = a.next_epoch();
            let eb = b.next_epoch();
            assert_eq!(ea.events, eb.events);
            assert_eq!(ea.repository.is_some(), eb.repository.is_some());
            if let (Some(ra), Some(rb)) = (&ea.repository, &eb.repository) {
                assert_eq!(ra.points.len(), rb.points.len());
            }
        }
    }

    #[test]
    fn epochs_produce_requested_event_mix() {
        let scenario = small_scenario();
        let cfg = ChurnConfig::default();
        let mut stream = ChurnStream::new(&scenario, cfg);
        let epoch = stream.next_epoch();
        let zone_edits = epoch
            .events
            .iter()
            .filter(|e| matches!(e, WorldEvent::ZoneEdit { .. }))
            .count();
        let announces = epoch
            .events
            .iter()
            .filter(|e| matches!(e, WorldEvent::RibAnnounce(_)))
            .count();
        assert_eq!(zone_edits, cfg.zone_edits);
        assert_eq!(announces, cfg.rib_announces);
        // Default config has RPKI churn, so a repository must ship.
        assert!(epoch.repository.is_some());
    }

    #[test]
    fn roa_lifecycle_events_reach_publication() {
        let scenario = small_scenario();
        let cfg = ChurnConfig {
            zone_edits: 0,
            cname_retargets: 0,
            rib_announces: 0,
            rib_withdrawals: 0,
            roa_additions: 1,
            roa_expirations: 0,
            roa_revocations: 0,
            key_rollovers: 0,
            ..Default::default()
        };
        let mut stream = ChurnStream::new(&scenario, cfg);
        let epoch = stream.next_epoch();
        let added: Vec<_> = epoch
            .events
            .iter()
            .filter_map(|e| match e {
                WorldEvent::RoaAdded { prefix, asn } => Some((*prefix, *asn)),
                _ => None,
            })
            .collect();
        assert_eq!(added.len(), 1);
        let repo = epoch.repository.expect("RPKI event must snapshot");
        let report = ripki_rpki::validate::validate(&repo, epoch.now);
        let (prefix, asn) = added[0];
        assert!(
            report
                .vrps
                .iter()
                .any(|v| v.prefix == prefix && v.asn == asn),
            "late-adopter ROA must become a VRP"
        );
    }
}
