//! Hosting assignment models.
//!
//! The rank-dependent knobs that give the paper its figures:
//!
//! * [`cdn_probability`] — popular sites are more likely CDN-served
//!   (Fig 3's decaying curve);
//! * [`www_equal_probability`] — popular sites more often serve `www` and
//!   bare forms from *different* infrastructure (Fig 1: ≈76% equality in
//!   the top 100k, >94% later);
//! * the hoster-class mix for non-CDN sites (webhosters carry most of the
//!   long tail).

use crate::operators::OperatorClass;
use crate::operators::OperatorId;
use serde::{Deserialize, Serialize};

/// Probability that the domain at `rank` (0-based, of `total`) is served
/// by a CDN: `floor + (top - floor) · (1 - rank/total)³`.
pub fn cdn_probability(rank: usize, total: usize, top: f64, floor: f64) -> f64 {
    let x = 1.0 - (rank as f64) / (total.max(1) as f64);
    floor + (top - floor) * x.powi(3)
}

/// Probability that `www.name` and `name` resolve into equal prefix sets:
/// `floor_eq - (floor_eq - top_eq) · (1 - rank/total)²`.
pub fn www_equal_probability(rank: usize, total: usize, top_eq: f64, floor_eq: f64) -> f64 {
    let x = 1.0 - (rank as f64) / (total.max(1) as f64);
    floor_eq - (floor_eq - top_eq) * x.powi(2)
}

/// How a non-CDN domain is hosted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HosterMix {
    /// Share hosted by dedicated webhosters.
    pub webhoster: f64,
    /// Share hosted directly in ISP space.
    pub isp: f64,
    /// Share self-hosted by enterprises.
    pub enterprise: f64,
}

impl Default for HosterMix {
    fn default() -> HosterMix {
        HosterMix {
            webhoster: 0.55,
            isp: 0.35,
            enterprise: 0.10,
        }
    }
}

impl HosterMix {
    /// Pick a class from a uniform draw in `[0, 1)`.
    pub fn pick(&self, draw: f64) -> OperatorClass {
        if draw < self.webhoster {
            OperatorClass::Webhoster
        } else if draw < self.webhoster + self.isp {
            OperatorClass::Isp
        } else {
            OperatorClass::Enterprise
        }
    }
}

/// Ground truth for one domain, recorded by the generator and *never*
/// read by the measurement pipeline — only by classifier-accuracy
/// ablations and tests.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DomainTruth {
    /// CDN operator if CDN-served.
    pub cdn: Option<OperatorId>,
    /// If CDN-served, whether the deployment uses a CNAME chain (the
    /// detectable kind); direct-A CDN deployments escape the heuristic.
    pub via_cname: bool,
    /// Primary hosting operator (the CDN for CDN-served domains).
    pub hoster: OperatorId,
    /// Whether `www`/bare forms were given equal prefix sets.
    pub www_equal: bool,
    /// Whether the domain's zone is DNSSEC-signed (extension: the
    /// paper's future-work comparison of RPKI vs DNSSEC adoption).
    pub dnssec_signed: bool,
    /// Whether the domain shards content onto a `static.` subdomain
    /// (paper §5.3: "the tendency to shard content across multiple
    /// subdomains"; sharded assets typically ride a CDN).
    pub sharded: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdn_probability_decays_with_rank() {
        let total = 1_000_000;
        let top = cdn_probability(0, total, 0.30, 0.05);
        let mid = cdn_probability(total / 2, total, 0.30, 0.05);
        let tail = cdn_probability(total - 1, total, 0.30, 0.05);
        assert!((top - 0.30).abs() < 1e-9);
        assert!(top > mid && mid > tail);
        assert!((tail - 0.05).abs() < 1e-3);
    }

    #[test]
    fn www_equality_rises_with_rank() {
        let total = 1_000_000;
        let top = www_equal_probability(0, total, 0.76, 0.95);
        let tail = www_equal_probability(total - 1, total, 0.76, 0.95);
        assert!((top - 0.76).abs() < 1e-9);
        assert!(tail > 0.94);
        // Monotone non-decreasing along rank.
        let mut prev = top;
        for r in (0..total).step_by(100_000) {
            let q = www_equal_probability(r, total, 0.76, 0.95);
            assert!(q + 1e-12 >= prev);
            prev = q;
        }
    }

    #[test]
    fn probabilities_stay_in_unit_interval() {
        for r in [0usize, 1, 500, 99_999] {
            let p = cdn_probability(r, 100_000, 0.30, 0.05);
            assert!((0.0..=1.0).contains(&p));
            let q = www_equal_probability(r, 100_000, 0.76, 0.95);
            assert!((0.0..=1.0).contains(&q));
        }
    }

    #[test]
    fn single_domain_total_does_not_divide_by_zero() {
        let p = cdn_probability(0, 1, 0.3, 0.05);
        assert!((p - 0.3).abs() < 1e-9);
        // total = 0 guarded too.
        let p = cdn_probability(0, 0, 0.3, 0.05);
        assert!(p.is_finite());
    }

    #[test]
    fn hoster_mix_partitions() {
        let mix = HosterMix::default();
        assert_eq!(mix.pick(0.0), OperatorClass::Webhoster);
        assert_eq!(mix.pick(0.54), OperatorClass::Webhoster);
        assert_eq!(mix.pick(0.56), OperatorClass::Isp);
        assert_eq!(mix.pick(0.89), OperatorClass::Isp);
        assert_eq!(mix.pick(0.91), OperatorClass::Enterprise);
        assert_eq!(mix.pick(0.999), OperatorClass::Enterprise);
        let sum = mix.webhoster + mix.isp + mix.enterprise;
        assert!((sum - 1.0).abs() < 1e-9);
    }
}
