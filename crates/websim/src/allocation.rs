//! RIR-style address allocation.
//!
//! Each of the five RIRs owns a set of IPv4 `/8`s and one IPv6 `/12`;
//! the [`Allocator`] hands out aligned sub-blocks to ASes, bump-pointer
//! style, never overlapping. Trust anchors in the RPKI repository are
//! given exactly their RIR's blocks as certificate resources, so every
//! allocation is certifiable under the correct anchor.
//!
//! The `/8` lists are loosely modelled on real RIR holdings but need only
//! two properties: disjointness and absence from the IANA special-purpose
//! registry.

use ripki_net::{IpPrefix, Ipv4Prefix, Ipv6Prefix};
use std::net::Ipv4Addr;

/// RIR names, aligned with `ripki_rpki::ta::RIR_NAMES`.
pub const RIR_NAMES: [&str; 5] = ["AFRINIC", "APNIC", "ARIN", "LACNIC", "RIPE"];

/// IPv4 `/8` first-octet holdings per RIR.
pub const RIR_V4_OCTETS: [&[u8]; 5] = [
    &[41, 102, 105],                                               // AFRINIC
    &[1, 14, 27, 36, 43, 49, 58, 59, 60, 61],                      // APNIC
    &[3, 4, 6, 8, 9, 12, 13, 15, 16],                              // ARIN
    &[177, 179, 181, 186, 187, 189, 190],                          // LACNIC
    &[31, 37, 46, 62, 77, 78, 79, 80, 81, 82, 83, 84, 85, 86, 87], // RIPE
];

/// IPv6 `/12` base per RIR (textual, parsed on demand).
pub const RIR_V6_BLOCKS: [&str; 5] = [
    "2c00::/12", // AFRINIC
    "2400::/12", // APNIC
    "2600::/12", // ARIN
    "2800::/12", // LACNIC
    "2a00::/12", // RIPE
];

/// All blocks (v4 + v6) a RIR holds, as prefixes — the trust anchor's
/// certificate resources.
pub fn rir_prefixes(rir: usize) -> Vec<IpPrefix> {
    let mut out: Vec<IpPrefix> = RIR_V4_OCTETS[rir]
        .iter()
        .map(|o| IpPrefix::V4(Ipv4Prefix::new(Ipv4Addr::new(*o, 0, 0, 0), 8).expect("/8 valid")))
        .collect();
    out.push(RIR_V6_BLOCKS[rir].parse().expect("v6 block literal"));
    out
}

/// Bump-pointer allocator over the RIR holdings.
#[derive(Debug, Clone)]
pub struct Allocator {
    /// Next free IPv4 address per RIR (index into its /8 list implied by
    /// the address itself).
    v4_cursor: [Option<u32>; 5],
    /// Index of the /8 currently being consumed per RIR.
    v4_block: [usize; 5],
    /// Next free /32 index within the RIR's /12 (IPv6).
    v6_next: [u32; 5],
}

impl Default for Allocator {
    fn default() -> Allocator {
        Allocator::new()
    }
}

impl Allocator {
    /// Fresh allocator with all space free.
    pub fn new() -> Allocator {
        let mut v4_cursor = [None; 5];
        for (rir, slot) in v4_cursor.iter_mut().enumerate() {
            let first = RIR_V4_OCTETS[rir][0];
            *slot = Some(u32::from(Ipv4Addr::new(first, 0, 0, 0)));
        }
        Allocator {
            v4_cursor,
            v4_block: [0; 5],
            v6_next: [0; 5],
        }
    }

    /// Allocate an aligned IPv4 block of length `len` (8–24) from `rir`.
    /// Returns `None` when the RIR's space is exhausted.
    pub fn allocate_v4(&mut self, rir: usize, len: u8) -> Option<Ipv4Prefix> {
        assert!(
            (8..=24).contains(&len),
            "allocation lengths 8..=24 supported"
        );
        let size = 1u32 << (32 - len);
        loop {
            let cursor = self.v4_cursor[rir]?;
            // Align up.
            let aligned = cursor.checked_add(size - 1)? & !(size - 1);
            let block_octet = RIR_V4_OCTETS[rir][self.v4_block[rir]];
            let block_base = u32::from(Ipv4Addr::new(block_octet, 0, 0, 0));
            let block_end = block_base + (1u32 << 24); // exclusive
            if aligned + size <= block_end && aligned >= block_base {
                self.v4_cursor[rir] = Some(aligned + size);
                return Some(Ipv4Prefix::new(Ipv4Addr::from(aligned), len).expect("aligned block"));
            }
            // Move to the next /8 of this RIR.
            self.v4_block[rir] += 1;
            match RIR_V4_OCTETS[rir].get(self.v4_block[rir]) {
                Some(octet) => {
                    self.v4_cursor[rir] = Some(u32::from(Ipv4Addr::new(*octet, 0, 0, 0)));
                }
                None => {
                    self.v4_cursor[rir] = None;
                    return None;
                }
            }
        }
    }

    /// Allocate the next `/32` IPv6 block from `rir`'s `/12`.
    pub fn allocate_v6(&mut self, rir: usize) -> Option<Ipv6Prefix> {
        let base: Ipv6Prefix = RIR_V6_BLOCKS[rir].parse().expect("v6 block literal");
        let idx = self.v6_next[rir];
        // A /12 holds 2^20 /32s.
        if idx >= 1 << 20 {
            return None;
        }
        self.v6_next[rir] = idx + 1;
        let bits = base.raw_bits() | ((idx as u128) << 96);
        Some(Ipv6Prefix::new(bits.into(), 32).expect("within the /12"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripki_net::special::SpecialRegistry;

    #[test]
    fn rir_blocks_are_disjoint_and_global() {
        let mut seen = std::collections::HashSet::new();
        for octets in RIR_V4_OCTETS {
            for o in octets {
                assert!(seen.insert(*o), "octet {o} assigned twice");
                let probe: std::net::IpAddr = Ipv4Addr::new(*o, 1, 2, 3).into();
                assert!(
                    !SpecialRegistry::global().is_invalid_answer(probe),
                    "{probe} is special-purpose"
                );
            }
        }
        let mut v6 = std::collections::HashSet::new();
        for b in RIR_V6_BLOCKS {
            assert!(v6.insert(b));
            let p: IpPrefix = b.parse().unwrap();
            assert_eq!(p.len(), 12);
        }
    }

    #[test]
    fn rir_prefixes_cover_allocations() {
        for rir in 0..5 {
            let holdings = rir_prefixes(rir);
            let mut alloc = Allocator::new();
            for _ in 0..50 {
                let p = alloc.allocate_v4(rir, 16).unwrap();
                assert!(
                    holdings.iter().any(|h| h.covers(&IpPrefix::V4(p))),
                    "{p} outside RIR {rir}"
                );
            }
            let v6 = alloc.allocate_v6(rir).unwrap();
            assert!(holdings.iter().any(|h| h.covers(&IpPrefix::V6(v6))));
        }
    }

    #[test]
    fn allocations_never_overlap() {
        let mut alloc = Allocator::new();
        let mut got: Vec<Ipv4Prefix> = Vec::new();
        for i in 0..600 {
            let len = 16 + (i % 5) as u8; // 16..20 mixed sizes
            let p = alloc.allocate_v4(4, len).unwrap();
            for q in &got {
                assert!(!p.covers(q) && !q.covers(&p), "{p} overlaps {q}");
            }
            got.push(p);
        }
    }

    #[test]
    fn v4_exhaustion_moves_across_slash8s_then_ends() {
        let mut alloc = Allocator::new();
        // AFRINIC has 3 /8s → 3 * 256 /16s.
        let mut count = 0;
        while alloc.allocate_v4(0, 16).is_some() {
            count += 1;
            assert!(count <= 3 * 256, "over-allocated");
        }
        assert_eq!(count, 3 * 256);
        assert!(alloc.allocate_v4(0, 16).is_none());
        // Other RIRs unaffected.
        assert!(alloc.allocate_v4(1, 16).is_some());
    }

    #[test]
    fn v6_allocations_distinct_within_block() {
        let mut alloc = Allocator::new();
        let a = alloc.allocate_v6(2).unwrap();
        let b = alloc.allocate_v6(2).unwrap();
        assert_ne!(a, b);
        assert!(!a.covers(&b) && !b.covers(&a));
        let base: Ipv6Prefix = RIR_V6_BLOCKS[2].parse().unwrap();
        assert!(base.covers(&a));
    }

    #[test]
    fn alignment_is_respected() {
        let mut alloc = Allocator::new();
        // Allocate /18 then /16: the /16 must be /16-aligned.
        let _small = alloc.allocate_v4(4, 18).unwrap();
        let big = alloc.allocate_v4(4, 16).unwrap();
        assert_eq!(big.raw_bits() & 0xffff, 0, "{big} misaligned");
    }
}
