//! # ripki-websim
//!
//! A synthetic-but-calibrated web ecosystem: the stand-in for the live
//! Internet that the original RiPKI study measured. Given a seed and a
//! scale, [`scenario::Scenario::build`] produces:
//!
//! * an Alexa-like **domain ranking** ([`ranking`]);
//! * a population of **operators** — ISPs, webhosters, enterprises, and
//!   the paper's sixteen named CDNs with their 199 ASes ([`operators`]);
//! * an **AS registry** with RIR-style assignment names, supporting the
//!   keyword spotting of §4.2 ([`registry`]);
//! * RIR **address allocations** per AS ([`allocation`]);
//! * a **hosting assignment** for every domain — which operator serves
//!   it, on which addresses, with rank-dependent CDN usage and
//!   `www`-vs-bare divergence ([`hosting`], [`cdn`]);
//! * a global **BGP table** announcing the used prefixes (with aggregates
//!   and more-specifics, occasional MOAS and `AS_SET` entries, and a tiny
//!   unannounced remainder reproducing the paper's "0.01% unreachable");
//! * an **RPKI repository** built by the five RIR trust anchors, with a
//!   per-class adoption model and a misconfiguration rate calibrated to
//!   the paper's ≈0.09% invalid announcements ([`adoption`]);
//! * an AS-level **topology** for hijack experiments;
//! * and the **ground truth** (who is really CDN-served), which the
//!   measurement pipeline never reads — it is used only to score the
//!   paper's classification heuristics.
//!
//! ## Calibration
//!
//! Model parameters default to values chosen so the measured outputs
//! reproduce the paper's findings in shape (see `EXPERIMENTS.md` at the
//! workspace root): rank-dependent CDN share ≈30%→≈5% (Fig 3), RPKI
//! valid share rising ≈4%→≈5.5% with rank (Fig 2), CDN-hosted RPKI share
//! flat ≈1% (Fig 4), `www` prefix-equality ≈76%→≈95% (Fig 1).
//! Every knob lives in [`scenario::ScenarioConfig`].

pub mod adoption;
pub mod allocation;
pub mod cdn;
pub mod churn;
pub mod hosting;
pub mod operators;
pub mod ranking;
pub mod registry;
pub mod scenario;

pub use churn::{ChurnConfig, ChurnStream, EpochChurn, WorldEvent};
pub use operators::{Operator, OperatorClass, OperatorId};
pub use registry::{AsInfo, AsRegistry};
pub use scenario::{Scenario, ScenarioConfig};
