//! Scenario assembly: one seed in, a whole measurable world out.
//!
//! [`Scenario::build`] wires every model of this crate together and
//! returns the artifacts the measurement pipeline consumes — exactly the
//! four inputs the original study had: a ranked domain list, resolvable
//! DNS, a global BGP table, and the RPKI repositories — plus the AS
//! registry for the CDN audit, an AS topology for hijack experiments, and
//! the generator's ground truth for scoring classifiers.

use crate::adoption::{self, build_repository, AdoptionConfig, AdoptionSummary, PrefixHolding};
use crate::allocation::Allocator;
use crate::cdn::{pick_cdn, CdnInfra};
use crate::hosting::{cdn_probability, www_equal_probability, DomainTruth, HosterMix};
use crate::operators::{cdn_as_total, Operator, OperatorClass, OperatorId, CDN_SPECS};
use crate::ranking;
use crate::registry::{AsInfo, AsRegistry};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use ripki_bgp::path::AsPath;
use ripki_bgp::rib::{Rib, RibEntry};
use ripki_bgp::topology::Topology;
use ripki_dns::vantage::Vantage;
use ripki_dns::zone::ZoneStore;
use ripki_dns::DomainName;
use ripki_net::{Asn, IpPrefix, Ipv4Prefix};
use ripki_rpki::repo::Repository;
use ripki_rpki::time::{Duration, SimTime};
use std::net::Ipv4Addr;

/// The two RIS collector peers contributing table entries.
pub const COLLECTOR_PEERS: [u32; 2] = [64_496, 64_497];

/// Synthetic transit backbone ASNs used in AS paths and as the topology's
/// tier-1 tier.
pub const TRANSIT_POOL: [u32; 5] = [64_601, 64_602, 64_603, 64_604, 64_605];

/// All tunables of the synthetic world. Defaults are calibrated to the
/// paper (see `EXPERIMENTS.md`).
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Master seed; everything is a pure function of it.
    pub seed: u64,
    /// Number of ranked domains (the paper: 1,000,000).
    pub domains: usize,
    /// ISP operator count (0 = scale with `domains`).
    pub isps: usize,
    /// Webhoster operator count (0 = scale with `domains`).
    pub webhosters: usize,
    /// Enterprise operator count (0 = scale with `domains`).
    pub enterprises: usize,
    /// CDN share of rank 0 (Fig 3 left edge).
    pub cdn_share_top: f64,
    /// CDN share of the last rank (Fig 3 right edge).
    pub cdn_share_floor: f64,
    /// Among CDN deployments: fraction using a 2-CNAME chain (detected
    /// by the paper's heuristic AND HTTPArchive).
    pub cdn_chain2_rate: f64,
    /// Fraction using a single CNAME (detected by HTTPArchive's pattern
    /// matching, missed by the ≥2-indirections heuristic).
    pub cdn_chain1_rate: f64,
    /// Fraction of CDN edge answers that land in third-party (eyeball
    /// ISP) address space — the paper's "inherited RPKI" channel.
    pub third_party_cache_rate: f64,
    /// RPKI adoption rates.
    pub adoption: AdoptionConfig,
    /// `www`/bare prefix-equality probability at rank 0 (Fig 1 left).
    pub www_equal_top: f64,
    /// … and at the last rank (Fig 1 right).
    pub www_equal_floor: f64,
    /// Probability an announced aggregate also announces a more-specific.
    pub more_specific_rate: f64,
    /// Probability a prefix gains an extra RIB entry with an AS_SET
    /// origin (excluded by the methodology).
    pub as_set_rate: f64,
    /// Probability an allocated prefix is NOT announced (paper: 0.01% of
    /// addresses unreachable).
    pub unreachable_rate: f64,
    /// Probability of a second origin announcing the same prefix (MOAS).
    pub moas_rate: f64,
    /// DNS answer corruption in parts per million (paper: 0.07% ⇒ 700).
    pub bogus_dns_ppm: u32,
    /// Probability an operator also holds + announces an IPv6 block.
    pub v6_rate: f64,
    /// Probability that a v6-capable hosting gives a domain an AAAA.
    pub aaaa_rate: f64,
    /// Scale factor on the per-TLD DNSSEC signing rates (extension for
    /// the paper's future-work RPKI-vs-DNSSEC comparison; 0 disables).
    pub dnssec_scale: f64,
    /// Fraction of CDN-served entries that are bare service names (like
    /// the paper's rank-70 `cdncache1-a.akamaihd.net`): the `www.` form
    /// does not exist, so Table 1 shows "n/a" for it.
    pub service_name_rate: f64,
    /// Subdomain sharding share at rank 0 (paper §5.3): popular sites
    /// offload assets to `static.<domain>`, almost always CDN-served.
    pub shard_top: f64,
    /// … and at the last rank.
    pub shard_floor: f64,
    /// Rank-dependent stakeholder effect (paper §4.1: the rising valid
    /// share "may reflect the deployment strategy of different
    /// stakeholders"): at the last rank, this is the extra probability
    /// that a non-CDN domain is hosted by an RPKI-adopting operator —
    /// tail-of-the-ranking sites sit more often on the small regional
    /// ISPs that adopted early. Scales linearly with rank from 0.
    pub tail_adopter_tilt: f64,
}

impl Default for ScenarioConfig {
    fn default() -> ScenarioConfig {
        ScenarioConfig {
            seed: 42,
            domains: 100_000,
            isps: 0,
            webhosters: 0,
            enterprises: 0,
            cdn_share_top: 0.30,
            cdn_share_floor: 0.05,
            cdn_chain2_rate: 0.80,
            cdn_chain1_rate: 0.12,
            third_party_cache_rate: 0.15,
            adoption: AdoptionConfig::default(),
            www_equal_top: 0.76,
            www_equal_floor: 0.95,
            more_specific_rate: 0.25,
            as_set_rate: 0.002,
            unreachable_rate: 0.0001,
            moas_rate: 0.005,
            bogus_dns_ppm: 700,
            v6_rate: 0.25,
            aaaa_rate: 0.5,
            tail_adopter_tilt: 0.012,
            dnssec_scale: 1.0,
            service_name_rate: 0.02,
            shard_top: 0.30,
            shard_floor: 0.02,
        }
    }
}

impl ScenarioConfig {
    /// Default config at a given scale.
    pub fn with_domains(domains: usize) -> ScenarioConfig {
        ScenarioConfig {
            domains,
            ..Default::default()
        }
    }

    fn isp_count(&self) -> usize {
        if self.isps > 0 {
            self.isps
        } else {
            (self.domains / 500).max(40)
        }
    }

    fn webhoster_count(&self) -> usize {
        if self.webhosters > 0 {
            self.webhosters
        } else {
            (self.domains / 400).max(40)
        }
    }

    fn enterprise_count(&self) -> usize {
        if self.enterprises > 0 {
            self.enterprises
        } else {
            (self.domains / 1000).max(20)
        }
    }
}

/// The generated world.
pub struct Scenario {
    /// The configuration it was built from.
    pub config: ScenarioConfig,
    /// Ranked domain list (step-1 input).
    pub ranking: Vec<DomainName>,
    /// Authoritative DNS (step-2 input).
    pub zones: ZoneStore,
    /// The global BGP table (step-3 input).
    pub rib: Rib,
    /// The RPKI repositories of the five RIRs (step-4 input).
    pub repository: Repository,
    /// AS assignment registry (§4.2 audit input).
    pub registry: AsRegistry,
    /// All operators.
    pub operators: Vec<Operator>,
    /// CDN infrastructure descriptions.
    pub cdn_infras: Vec<CdnInfra>,
    /// AS-level topology over the scenario's real ASNs (hijack input).
    pub topology: Topology,
    /// Per-domain ground truth, parallel to `ranking`.
    pub truth: Vec<DomainTruth>,
    /// Every announced prefix holding (operator, ASN, prefix). Churn
    /// generators draw announcements and ROA targets from here.
    pub holdings: Vec<PrefixHolding>,
    /// What the adoption pass did.
    pub adoption_summary: AdoptionSummary,
    /// The instant the study "runs" at (validity windows are open).
    pub now: SimTime,
}

/// Deterministic address inside a block (never the network address).
fn ip_in(prefix: Ipv4Prefix, salt: u64) -> Ipv4Addr {
    let size = 1u64 << (32 - prefix.len() as u64);
    let mix = salt
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .rotate_left(17)
        .wrapping_add(0x243f_6a88);
    let offset = 1 + (mix % (size - 1)) as u32;
    Ipv4Addr::from(prefix.raw_bits() | offset)
}

/// Deterministic IPv6 address inside a /32 block.
fn ip6_in(prefix: ripki_net::Ipv6Prefix, salt: u64) -> std::net::Ipv6Addr {
    let mix = (salt as u128).wrapping_mul(0x9e37_79b9_7f4a_7c15_85eb_ca6b) | 1;
    std::net::Ipv6Addr::from(prefix.raw_bits() | (mix & ((1u128 << 96) - 1)))
}

impl Scenario {
    /// Build the whole world from `config`.
    pub fn build(config: ScenarioConfig) -> Scenario {
        let mut rng = StdRng::seed_from_u64(config.seed ^ SCENARIO_SALT);
        let now = SimTime::start_of_study();

        // ---- 1. Operators ------------------------------------------------
        let mut operators: Vec<Operator> = Vec::new();
        let mut registry = AsRegistry::new();
        let mut asn_counter: u32 = 100;
        let next_asns = |n: usize, counter: &mut u32| -> Vec<Asn> {
            let v: Vec<Asn> = (0..n).map(|i| Asn::new(*counter + i as u32)).collect();
            *counter += n as u32;
            v
        };

        let corp_suffix = ["Inc.", "International B.V.", "LLC", "Technologies Ltd."];
        for (name, as_count, _) in CDN_SPECS {
            let id = OperatorId(operators.len() as u32);
            let rir = rng.gen_range(0..5);
            let asns = next_asns(as_count, &mut asn_counter);
            for (i, asn) in asns.iter().enumerate() {
                registry.insert(
                    *asn,
                    AsInfo {
                        name: format!(
                            "{}-SIM-{}, {} {}",
                            name.to_ascii_uppercase(),
                            i + 1,
                            name,
                            corp_suffix[i % corp_suffix.len()],
                        ),
                        operator: id,
                        class: OperatorClass::Cdn,
                        rir,
                    },
                );
            }
            operators.push(Operator {
                id,
                name: name.to_string(),
                class: OperatorClass::Cdn,
                asns,
                rir,
            });
        }
        debug_assert_eq!(
            operators.iter().map(|o| o.asns.len()).sum::<usize>(),
            cdn_as_total()
        );

        let spawn_class = |count: usize,
                           class: OperatorClass,
                           label: &str,
                           operators: &mut Vec<Operator>,
                           registry: &mut AsRegistry,
                           rng: &mut StdRng,
                           asn_counter: &mut u32| {
            for i in 0..count {
                let id = OperatorId(operators.len() as u32);
                let rir = rng.gen_range(0..5);
                let n_asns = if class == OperatorClass::Isp && rng.gen_bool(0.15) {
                    2
                } else {
                    1
                };
                let asns = next_asns(n_asns, asn_counter);
                let name = format!("{label}-{i}");
                for (k, asn) in asns.iter().enumerate() {
                    registry.insert(
                        *asn,
                        AsInfo {
                            name: format!(
                                "{}-NET-{}, {} {}",
                                name.to_ascii_uppercase(),
                                k + 1,
                                name,
                                match class {
                                    OperatorClass::Isp => "Telecom",
                                    OperatorClass::Webhoster => "Hosting GmbH",
                                    _ => "Corp.",
                                },
                            ),
                            operator: id,
                            class,
                            rir,
                        },
                    );
                }
                operators.push(Operator {
                    id,
                    name,
                    class,
                    asns,
                    rir,
                });
            }
        };
        spawn_class(
            config.isp_count(),
            OperatorClass::Isp,
            "ISP",
            &mut operators,
            &mut registry,
            &mut rng,
            &mut asn_counter,
        );
        spawn_class(
            config.webhoster_count(),
            OperatorClass::Webhoster,
            "HOSTER",
            &mut operators,
            &mut registry,
            &mut rng,
            &mut asn_counter,
        );
        spawn_class(
            config.enterprise_count(),
            OperatorClass::Enterprise,
            "CORP",
            &mut operators,
            &mut registry,
            &mut rng,
            &mut asn_counter,
        );

        // ---- 2. Address allocation ---------------------------------------
        let mut allocator = Allocator::new();
        // (operator idx, asn, v4 prefix) usable for hosting.
        let mut host_blocks: Vec<Vec<(Asn, Ipv4Prefix)>> = vec![Vec::new(); operators.len()];
        let mut v6_blocks: Vec<Option<(Asn, ripki_net::Ipv6Prefix)>> = vec![None; operators.len()];
        // ISP-held blocks earmarked for CDN cache placement.
        let mut cache_blocks: Vec<(usize, Asn, Ipv4Prefix)> = Vec::new();
        // Everything that exists, for BGP + RPKI.
        let mut holdings: Vec<PrefixHolding> = Vec::new();

        for (idx, op) in operators.iter().enumerate() {
            for asn in &op.asns {
                let (len, blocks) = match op.class {
                    // A CDN's primary AS carries the larger anycast
                    // pool (two blocks); this also lets the Internap
                    // special case put four ROA'd prefixes on three
                    // origin ASes.
                    OperatorClass::Cdn if *asn == op.primary_asn() => (17u8, 2usize),
                    OperatorClass::Cdn => (17u8, 1usize),
                    OperatorClass::Isp => (16, if rng.gen_bool(0.3) { 2 } else { 1 }),
                    OperatorClass::Webhoster => (17, 1),
                    OperatorClass::Enterprise => (21, 1),
                };
                for _ in 0..blocks {
                    let Some(p) = allocator.allocate_v4(op.rir, len) else {
                        continue;
                    };
                    host_blocks[idx].push((*asn, p));
                    holdings.push(PrefixHolding {
                        operator: idx,
                        asn: *asn,
                        prefix: IpPrefix::V4(p),
                        deepest_announced: p.len(),
                    });
                }
                // Eyeball ISPs sometimes host CDN caches in a dedicated
                // block.
                if op.class == OperatorClass::Isp && rng.gen_bool(0.25) {
                    if let Some(p) = allocator.allocate_v4(op.rir, 19) {
                        cache_blocks.push((idx, *asn, p));
                        holdings.push(PrefixHolding {
                            operator: idx,
                            asn: *asn,
                            prefix: IpPrefix::V4(p),
                            deepest_announced: p.len(),
                        });
                    }
                }
            }
            if op.class != OperatorClass::Cdn && rng.gen_bool(config.v6_rate) {
                if let Some(p6) = allocator.allocate_v6(op.rir) {
                    v6_blocks[idx] = Some((op.primary_asn(), p6));
                    holdings.push(PrefixHolding {
                        operator: idx,
                        asn: op.primary_asn(),
                        prefix: IpPrefix::V6(p6),
                        deepest_announced: p6.len(),
                    });
                }
            }
        }

        // ---- 3. BGP table -------------------------------------------------
        let mut rib = Rib::new();
        let mut announced = vec![true; holdings.len()];
        for (i, h) in holdings.iter_mut().enumerate() {
            if rng.gen_bool(config.unreachable_rate) {
                announced[i] = false;
                continue;
            }
            let transit = TRANSIT_POOL[(h.asn.value() as usize) % TRANSIT_POOL.len()];
            let path = AsPath::sequence([transit, h.asn.value()]);
            for peer in COLLECTOR_PEERS {
                rib.insert(RibEntry {
                    prefix: h.prefix,
                    path: path.clone(),
                    peer: Asn::new(peer),
                });
            }
            // More-specific of the lower half, same origin.
            if rng.gen_bool(config.more_specific_rate) {
                if let IpPrefix::V4(p4) = h.prefix {
                    if let Some((lower, _)) = p4.children() {
                        h.deepest_announced = lower.len();
                        rib.insert(RibEntry {
                            prefix: IpPrefix::V4(lower),
                            path: path.clone(),
                            peer: Asn::new(COLLECTOR_PEERS[0]),
                        });
                    }
                }
            }
            // Occasional proxy-aggregated entry from the second peer
            // (AS_SET origin — excluded by the methodology, must be
            // harmless). Built with real RFC 4271 aggregation semantics
            // over the block's two halves.
            if rng.gen_bool(config.as_set_rate) {
                if let IpPrefix::V4(p4) = h.prefix {
                    if let Some((lo, hi)) = p4.children() {
                        let left = RibEntry {
                            prefix: IpPrefix::V4(lo),
                            path: AsPath::sequence([transit, h.asn.value()]),
                            peer: Asn::new(COLLECTOR_PEERS[1]),
                        };
                        let right = RibEntry {
                            prefix: IpPrefix::V4(hi),
                            path: AsPath::sequence([transit, h.asn.value() + 7]),
                            peer: Asn::new(COLLECTOR_PEERS[1]),
                        };
                        if let Some(agg) = ripki_bgp::aggregate::aggregate_siblings(&left, &right) {
                            rib.insert(agg);
                        }
                    }
                }
            }
            // Occasional MOAS: the operator's second AS also originates.
            if rng.gen_bool(config.moas_rate) {
                let op = &operators[h.operator];
                if op.asns.len() > 1 && op.asns[1] != h.asn {
                    rib.insert(RibEntry {
                        prefix: h.prefix,
                        path: AsPath::sequence([transit, op.asns[1].value()]),
                        peer: Asn::new(COLLECTOR_PEERS[1]),
                    });
                }
            }
        }

        // ---- 4. CDN infrastructure ----------------------------------------
        let mut cdn_infras: Vec<CdnInfra> = Vec::new();
        let mut cdn_weights: Vec<usize> = Vec::new();
        for (idx, op) in operators.iter().enumerate() {
            if op.class != OperatorClass::Cdn {
                continue;
            }
            let infra = CdnInfra::new(op, host_blocks[idx].clone());
            let weight = CDN_SPECS
                .iter()
                .find(|(n, _, _)| *n == op.name)
                .map_or(1, |(_, _, w)| *w);
            cdn_infras.push(infra);
            cdn_weights.push(weight);
        }
        // Distribute ISP cache blocks round-robin over CDNs.
        for (i, (_, asn, prefix)) in cache_blocks.iter().enumerate() {
            let slot = i % cdn_infras.len();
            cdn_infras[slot].third_party_edges.push((*asn, *prefix));
        }

        // ---- 5. RPKI ------------------------------------------------------
        let (repository, adoption_summary) = build_repository(
            &operators,
            &holdings,
            &config.adoption,
            config.seed,
            now - Duration::days(30),
        );

        // ---- 6. Ranking + hosting ------------------------------------------
        let ranking_list = ranking::generate(config.seed, config.domains);
        let mut zones = ZoneStore::new();
        let mut truth: Vec<DomainTruth> = Vec::with_capacity(config.domains);
        let mix = HosterMix::default();

        let class_pool = |class: OperatorClass| -> Vec<usize> {
            operators
                .iter()
                .enumerate()
                .filter(|(i, o)| o.class == class && !host_blocks[*i].is_empty())
                .map(|(i, _)| i)
                .collect()
        };
        let isp_pool = class_pool(OperatorClass::Isp);
        let hoster_pool = class_pool(OperatorClass::Webhoster);
        let corp_pool = class_pool(OperatorClass::Enterprise);
        let adopter_subset = |pool: &[usize]| -> Vec<usize> {
            pool.iter()
                .copied()
                .filter(|i| adoption_summary.adopters.contains(i))
                .collect()
        };
        let isp_adopters = adopter_subset(&isp_pool);
        let hoster_adopters = adopter_subset(&hoster_pool);
        let corp_adopters = adopter_subset(&corp_pool);

        for (rank, listed) in ranking_list.iter().enumerate() {
            let mut drng =
                StdRng::seed_from_u64(config.seed ^ (rank as u64).wrapping_mul(DOMAIN_SALT) ^ 0x05);
            let bare = listed.without_www();
            let www = bare.with_www();
            let p_cdn = cdn_probability(
                rank,
                config.domains,
                config.cdn_share_top,
                config.cdn_share_floor,
            );
            let www_equal = drng.gen_bool(www_equal_probability(
                rank,
                config.domains,
                config.www_equal_top,
                config.www_equal_floor,
            ));
            let tld = bare.labels().last().unwrap_or("com").to_string();
            let dnssec_rate = (dnssec_tld_rate(&tld) * config.dnssec_scale).clamp(0.0, 1.0);
            let dnssec_signed = drng.gen_bool(dnssec_rate);
            if dnssec_signed {
                zones.set_signed(bare.clone());
            }

            if drng.gen_bool(p_cdn) {
                // ---- CDN-served ----
                let infra = pick_cdn(&cdn_infras, &cdn_weights, &mut drng).clone();
                // Service names (CDN-internal hosts in the ranking, like
                // the paper's cdncache1-a.akamaihd.net) have no www form.
                let service_name = drng.gen_bool(config.service_name_rate);
                let chain_draw: f64 = drng.gen();
                let chain_len = if chain_draw < config.cdn_chain2_rate {
                    2
                } else if chain_draw < config.cdn_chain2_rate + config.cdn_chain1_rate {
                    1
                } else {
                    0
                };
                let group = rank as u32;
                let edge_name = infra.edge_group_name(group);
                // Per-vantage edge answers.
                for v in Vantage::ALL {
                    let (asn, prefix) =
                        infra.pick_edge(group, v.0 as u64, config.third_party_cache_rate);
                    let _ = asn;
                    let ip = ip_in(prefix, (rank as u64) << 8 | v.0 as u64);
                    if v == Vantage::GOOGLE_DNS_BERLIN {
                        zones.add_addr(edge_name.clone(), ip.into());
                    } else {
                        zones.add_override(edge_name.clone(), v, ripki_dns::RecordData::A(ip));
                    }
                }
                // Service names carry their records on the bare form
                // only; ordinary sites on the www form.
                let chain_owner = if service_name {
                    bare.clone()
                } else {
                    www.clone()
                };
                match chain_len {
                    2 => {
                        let alias = infra.customer_alias(&bare);
                        zones.add_cname(chain_owner.clone(), alias.clone());
                        zones.add_cname(alias, edge_name.clone());
                    }
                    1 => {
                        zones.add_cname(chain_owner.clone(), edge_name.clone());
                    }
                    _ => {
                        // Direct A deployment: mirror the edge answers
                        // without any CNAME.
                        for v in Vantage::ALL {
                            let (_, prefix) =
                                infra.pick_edge(group, v.0 as u64, config.third_party_cache_rate);
                            let ip = ip_in(prefix, (rank as u64) << 8 | v.0 as u64);
                            if v == Vantage::GOOGLE_DNS_BERLIN {
                                zones.add_addr(chain_owner.clone(), ip.into());
                            } else {
                                zones.add_override(
                                    chain_owner.clone(),
                                    v,
                                    ripki_dns::RecordData::A(ip),
                                );
                            }
                        }
                    }
                }
                if service_name {
                    // No www form at all: the pipeline reports it n/a.
                } else if www_equal {
                    // Bare name follows the same infrastructure.
                    match chain_len {
                        2 | 1 => zones.add_cname(bare.clone(), edge_name.clone()),
                        _ => {
                            let (_, prefix) =
                                infra.pick_edge(group, 0, config.third_party_cache_rate);
                            let ip = ip_in(prefix, (rank as u64) << 8);
                            zones.add_addr(bare.clone(), ip.into());
                        }
                    }
                } else {
                    // Bare name stays on an origin host outside the CDN.
                    let pool = if drng.gen_bool(0.7) {
                        &hoster_pool
                    } else {
                        &isp_pool
                    };
                    let op_idx = pool[drng.gen_range(0..pool.len())];
                    let (_, prefix) =
                        host_blocks[op_idx][drng.gen_range(0..host_blocks[op_idx].len())];
                    zones.add_addr(bare.clone(), ip_in(prefix, rank as u64 ^ 0xba5e).into());
                }
                let sharded = host_shard(
                    &config,
                    rank,
                    &bare,
                    &cdn_infras,
                    &cdn_weights,
                    &mut zones,
                    &mut drng,
                );
                truth.push(DomainTruth {
                    cdn: Some(infra.operator),
                    via_cname: chain_len >= 1,
                    hoster: infra.operator,
                    www_equal,
                    dnssec_signed,
                    sharded,
                });
            } else {
                // ---- Classically hosted ----
                let class_draw: f64 = drng.gen();
                let (pool, adopters) = match mix.pick(class_draw) {
                    OperatorClass::Webhoster => (&hoster_pool, &hoster_adopters),
                    OperatorClass::Isp => (&isp_pool, &isp_adopters),
                    _ => (&corp_pool, &corp_adopters),
                };
                // Stakeholder effect: tail sites gravitate to early
                // adopters (see `tail_adopter_tilt`).
                let tilt =
                    config.tail_adopter_tilt * (rank as f64) / (config.domains.max(1) as f64);
                let op_idx = if !adopters.is_empty() && drng.gen_bool(tilt.clamp(0.0, 1.0)) {
                    adopters[drng.gen_range(0..adopters.len())]
                } else {
                    pool[drng.gen_range(0..pool.len())]
                };
                let blocks = &host_blocks[op_idx];
                let (_, prefix) = blocks[drng.gen_range(0..blocks.len())];
                let primary_ip = ip_in(prefix, rank as u64);
                // Popular domains spread across extra addresses/operators.
                let extra_ips: usize = if rank < config.domains / 100 {
                    drng.gen_range(1..=3)
                } else if drng.gen_bool(0.15) {
                    1
                } else {
                    0
                };
                zones.add_addr(bare.clone(), primary_ip.into());
                for k in 0..extra_ips {
                    // Half the extras come from a second operator.
                    let (src_idx, src_blocks) = if drng.gen_bool(0.5) && pool.len() > 1 {
                        let other = pool[drng.gen_range(0..pool.len())];
                        (other, &host_blocks[other])
                    } else {
                        (op_idx, blocks)
                    };
                    let (_, p2) = src_blocks[drng.gen_range(0..src_blocks.len())];
                    zones.add_addr(
                        bare.clone(),
                        ip_in(p2, (rank as u64) ^ (k as u64 + 1)).into(),
                    );
                    let _ = src_idx;
                }
                if let Some((_, p6)) = v6_blocks[op_idx] {
                    if drng.gen_bool(config.aaaa_rate) {
                        zones.add_addr(bare.clone(), ip6_in(p6, rank as u64).into());
                    }
                }
                if www_equal {
                    zones.add_cname(www.clone(), bare.clone());
                } else {
                    // www served from a different prefix (often a second
                    // block or another operator).
                    let other_idx = pool[drng.gen_range(0..pool.len())];
                    let ob = &host_blocks[other_idx];
                    let (_, p2) = ob[drng.gen_range(0..ob.len())];
                    zones.add_addr(www.clone(), ip_in(p2, (rank as u64) ^ 0x3333).into());
                }
                let sharded = host_shard(
                    &config,
                    rank,
                    &bare,
                    &cdn_infras,
                    &cdn_weights,
                    &mut zones,
                    &mut drng,
                );
                truth.push(DomainTruth {
                    cdn: None,
                    via_cname: false,
                    hoster: operators[op_idx].id,
                    www_equal,
                    dnssec_signed,
                    sharded,
                });
            }
        }

        // ---- 7. Topology over the real ASNs --------------------------------
        let mut topology = Topology::new();
        let tier1: Vec<Asn> = TRANSIT_POOL.iter().map(|a| Asn::new(*a)).collect();
        for (i, a) in tier1.iter().enumerate() {
            for b in &tier1[i + 1..] {
                topology.add_peering(*a, *b);
            }
        }
        // The RIS collector peers are real topology nodes: multihomed
        // customers of the first two tier-1s, like actual route-server
        // peers at large exchanges.
        for peer in COLLECTOR_PEERS {
            topology.add_customer_provider(Asn::new(peer), tier1[0]);
            topology.add_customer_provider(Asn::new(peer), tier1[1]);
        }
        let isp_primaries: Vec<Asn> = isp_pool
            .iter()
            .map(|i| operators[*i].primary_asn())
            .collect();
        for asn in &isp_primaries {
            let ups = rng.gen_range(1..=2.min(tier1.len()));
            for t in tier1.choose_multiple(&mut rng, ups) {
                topology.add_customer_provider(*asn, *t);
            }
        }
        // Lateral ISP peering.
        for (i, a) in isp_primaries.iter().enumerate() {
            for b in isp_primaries.iter().skip(i + 1) {
                if rng.gen_bool(0.02) {
                    topology.add_peering(*a, *b);
                }
            }
        }
        for op in &operators {
            if op.class == OperatorClass::Isp {
                // Secondary ASes hang off the primary.
                for extra in op.asns.iter().skip(1) {
                    topology.add_customer_provider(*extra, op.primary_asn());
                }
                continue;
            }
            for asn in &op.asns {
                let ups = rng.gen_range(1..=2.min(isp_primaries.len().max(1)));
                for u in isp_primaries.choose_multiple(&mut rng, ups) {
                    topology.add_customer_provider(*asn, *u);
                }
            }
        }

        Scenario {
            config,
            ranking: ranking_list,
            zones,
            rib,
            repository,
            registry,
            operators,
            cdn_infras,
            topology,
            truth,
            holdings,
            adoption_summary,
            now,
        }
    }

    /// Replay the adoption pass and return the still-open issuing
    /// builder: the exact deterministic program that produced
    /// [`Scenario::repository`], minus the final snapshot. Evolving this
    /// builder and snapshotting yields the repository the scenario's CAs
    /// would publish after that evolution.
    pub fn issuing_builder(&self) -> (ripki_rpki::repo::RepositoryBuilder, AdoptionSummary) {
        adoption::issue_repository(
            &self.operators,
            &self.holdings,
            &self.config.adoption,
            self.config.seed,
            self.now - Duration::days(30),
        )
    }
}

impl Scenario {
    /// Rebuild the BGP table with AS paths derived from actual policy
    /// routing: each origin's announcement is propagated through
    /// [`Scenario::topology`] (Gao–Rexford), and the table records the
    /// route each collector peer selected — full topology/table
    /// coherence, at the cost of one propagation per distinct origin.
    ///
    /// Prefix-origin content is unchanged (origins are path tails either
    /// way), so measurements over the rebuilt table are identical; only
    /// the AS paths become realistic. Unreachable prefixes stay absent.
    pub fn rebuild_rib_with_propagated_paths(&self) -> Rib {
        use ripki_bgp::propagate::{accept_all, propagate};
        use std::collections::HashMap;

        // Collect (origin → its announced prefixes incl. more-specifics)
        // from the existing table, so announcement decisions are reused.
        let mut by_origin: HashMap<Asn, Vec<IpPrefix>> = HashMap::new();
        let mut aggregates: Vec<ripki_bgp::rib::RibEntry> = Vec::new();
        for entry in self.rib.iter() {
            match entry.path.origin().asn() {
                Some(origin) => by_origin.entry(origin).or_default().push(entry.prefix),
                None => aggregates.push(entry.clone()),
            }
        }
        let mut origins: Vec<Asn> = by_origin.keys().copied().collect();
        origins.sort();

        let mut rib = Rib::new();
        for origin in origins {
            let outcome = propagate(&self.topology, &[origin], &accept_all);
            let mut prefixes = by_origin.remove(&origin).expect("origin collected");
            prefixes.sort();
            prefixes.dedup();
            for peer in COLLECTOR_PEERS {
                let peer_asn = Asn::new(peer);
                let Some(route) = outcome.route(peer_asn) else {
                    continue;
                };
                let path = AsPath::sequence(route.path.iter().map(|a| a.value()));
                for prefix in &prefixes {
                    rib.insert(ripki_bgp::rib::RibEntry {
                        prefix: *prefix,
                        path: path.clone(),
                        peer: peer_asn,
                    });
                }
            }
        }
        // Keep aggregate (AS_SET) entries verbatim: their origins are
        // ambiguous by construction and the methodology skips them.
        for entry in aggregates {
            rib.insert(entry);
        }
        rib
    }
}

/// Host a `static.<domain>` asset subdomain on a CDN with probability
/// scaled by rank (paper §5.3). Returns whether the domain sharded.
#[allow(clippy::too_many_arguments)]
fn host_shard(
    config: &ScenarioConfig,
    rank: usize,
    bare: &DomainName,
    cdn_infras: &[CdnInfra],
    cdn_weights: &[usize],
    zones: &mut ZoneStore,
    drng: &mut StdRng,
) -> bool {
    let x = 1.0 - (rank as f64) / (config.domains.max(1) as f64);
    let p = config.shard_floor + (config.shard_top - config.shard_floor) * x.powi(3);
    if !drng.gen_bool(p.clamp(0.0, 1.0)) {
        return false;
    }
    let static_name = DomainName::parse(&format!("static.{bare}")).expect("static. label is valid");
    let infra = pick_cdn(cdn_infras, cdn_weights, drng).clone();
    // Asset groups live in a separate edge-group namespace.
    let group = rank as u32 | (1 << 31);
    let alias = infra.customer_alias(&static_name);
    let edge_name = infra.edge_group_name(group);
    zones.add_cname(static_name, alias.clone());
    zones.add_cname(alias, edge_name.clone());
    for v in Vantage::ALL {
        let (_, prefix) = infra.pick_edge(group, v.0 as u64, config.third_party_cache_rate);
        let ip = ip_in(prefix, ((rank as u64) << 8) | 0x51 | v.0 as u64);
        if v == Vantage::GOOGLE_DNS_BERLIN {
            zones.add_addr(edge_name.clone(), ip.into());
        } else {
            zones.add_override(edge_name.clone(), v, ripki_dns::RecordData::A(ip));
        }
    }
    true
}

/// Second-level-domain DNSSEC signing rates circa 2015, by TLD: high in
/// mandate/incentive registries (.br), moderate in .org/.de/.info, low
/// in .com/.net, negligible elsewhere.
fn dnssec_tld_rate(tld: &str) -> f64 {
    match tld {
        "com" => 0.010,
        "net" => 0.012,
        "org" => 0.030,
        "de" => 0.030,
        "ru" => 0.005,
        "jp" => 0.004,
        "br" => 0.045,
        "in" => 0.006,
        "info" => 0.020,
        "uk" => 0.003,
        _ => 0.010,
    }
}

/// Salt for the scenario's top-level RNG.
const SCENARIO_SALT: u64 = 0x5ce0_0a10;
/// Salt for per-domain RNGs.
const DOMAIN_SALT: u64 = 0xd00a_1137;

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Scenario {
        Scenario::build(ScenarioConfig {
            domains: 3000,
            ..Default::default()
        })
    }

    #[test]
    fn build_produces_consistent_world() {
        let s = small();
        assert_eq!(s.ranking.len(), 3000);
        assert_eq!(s.truth.len(), 3000);
        assert_eq!(s.repository.trust_anchors.len(), 5);
        assert!(!s.rib.is_empty());
        assert!(s.registry.len() >= 199);
        assert!(s.topology.len() > 100);
        assert_eq!(s.cdn_infras.len(), 16);
    }

    #[test]
    fn cdn_as_count_matches_paper() {
        let s = small();
        let cdn_asns = s.registry.asns_of_class(OperatorClass::Cdn);
        assert_eq!(cdn_asns.len(), 199);
        let internap: Vec<_> = s.registry.search("internap");
        assert_eq!(internap.len(), 41);
    }

    #[test]
    fn every_domain_resolves_from_primary_vantage() {
        let s = small();
        let mut bare_unresolved = 0;
        let mut www_unresolved = 0;
        for listed in &s.ranking {
            let r = ripki_dns::Resolver::new(&s.zones, Vantage::GOOGLE_DNS_BERLIN);
            let bare = listed.without_www();
            let www = bare.with_www();
            if r.resolve(&bare).is_err() {
                bare_unresolved += 1;
            }
            if r.resolve(&www).is_err() {
                www_unresolved += 1;
            }
        }
        // The bare form always exists; a small number of CDN service
        // names have no www form (the paper's "n/a" rows).
        assert_eq!(bare_unresolved, 0);
        let www_share = www_unresolved as f64 / s.ranking.len() as f64;
        assert!(www_share < 0.02, "www n/a share {www_share}");
    }

    #[test]
    fn resolved_addresses_mostly_reachable_in_rib() {
        let s = small();
        let r = ripki_dns::Resolver::new(&s.zones, Vantage::GOOGLE_DNS_BERLIN);
        let mut total = 0usize;
        let mut unreachable = 0usize;
        for listed in s.ranking.iter().take(800) {
            let res = r.resolve(&listed.without_www()).unwrap();
            for addr in res.addresses {
                total += 1;
                if !s.rib.origins_for_addr(addr).is_reachable() {
                    unreachable += 1;
                }
            }
        }
        let rate = unreachable as f64 / total as f64;
        assert!(rate < 0.01, "unreachable rate {rate}");
    }

    #[test]
    fn rpki_validates_cleanly() {
        let s = small();
        let report = ripki_rpki::validate(&s.repository, s.now);
        assert_eq!(report.rejected_count(), 0);
        assert!(
            !report.vrps.is_empty(),
            "adoption model should produce some ROAs at this scale"
        );
    }

    #[test]
    fn internap_special_case_present() {
        let s = small();
        assert_eq!(s.adoption_summary.internap_prefixes.len(), 4);
        // All four VRPs validate and are tied to 3 origin ASes.
        let report = ripki_rpki::validate(&s.repository, s.now);
        let internap_asns: std::collections::BTreeSet<Asn> = report
            .vrps
            .iter()
            .filter(|v| s.adoption_summary.internap_prefixes.contains(&v.prefix))
            .map(|v| v.asn)
            .collect();
        assert_eq!(internap_asns.len(), 3);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = small();
        let b = small();
        assert_eq!(a.ranking, b.ranking);
        assert_eq!(a.rib.len(), b.rib.len());
        assert_eq!(a.adoption_summary.roa_count, b.adoption_summary.roa_count);
        assert_eq!(a.truth, b.truth);
    }

    #[test]
    fn truth_cdn_share_decays() {
        let s = Scenario::build(ScenarioConfig {
            domains: 20_000,
            ..Default::default()
        });
        let top_cdn = s.truth[..2000].iter().filter(|t| t.cdn.is_some()).count() as f64 / 2000.0;
        let tail_cdn = s.truth[18_000..].iter().filter(|t| t.cdn.is_some()).count() as f64 / 2000.0;
        assert!(
            top_cdn > tail_cdn + 0.05,
            "top {top_cdn} vs tail {tail_cdn}"
        );
    }

    #[test]
    fn topology_contains_hosting_asns() {
        let s = small();
        for op in &s.operators {
            for asn in &op.asns {
                assert!(s.topology.contains(*asn), "missing {asn}");
            }
        }
    }
}
