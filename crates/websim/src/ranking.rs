//! Alexa-like domain ranking generation.
//!
//! The paper's step 1 "extracts the top 1 million websites from the
//! Alexa list". The generator produces a deterministic ranked list of
//! plausible domain names: pronounceable syllable compounds over a mix of
//! TLDs, with a small share of `www.`-listed entries (the real list mixes
//! both forms, which is why the paper measures the pair explicitly).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ripki_dns::DomainName;

const SYLLABLES: [&str; 24] = [
    "ba", "cu", "da", "fo", "gi", "ha", "ki", "lo", "ma", "ne", "pa", "qo", "ra", "su", "ta", "vu",
    "wi", "xa", "yo", "zu", "blog", "shop", "news", "web",
];

const TLDS: [&str; 10] = [
    "com", "net", "org", "de", "co_uk", "ru", "jp", "br", "in", "info",
];

/// Generate the ranked domain list (rank 0 = most popular).
///
/// Names are unique by construction (a rank-derived disambiguator is
/// appended on collision).
pub fn generate(seed: u64, count: usize) -> Vec<DomainName> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xa1e2_a000);
    let mut out = Vec::with_capacity(count);
    let mut seen = std::collections::HashSet::with_capacity(count);
    while out.len() < count {
        let rank = out.len();
        let n_syll = rng.gen_range(2..=4);
        let mut stem = String::new();
        for _ in 0..n_syll {
            stem.push_str(SYLLABLES[rng.gen_range(0..SYLLABLES.len())]);
        }
        let tld = TLDS[rng.gen_range(0..TLDS.len())].replace('_', ".");
        let mut name = format!("{stem}.{tld}");
        if !seen.insert(name.clone()) {
            name = format!("{stem}{rank}.{tld}");
            if !seen.insert(name.clone()) {
                continue;
            }
        }
        // ~3% of Alexa entries are listed with their www label.
        let listed = if rng.gen_bool(0.03) {
            format!("www.{name}")
        } else {
            name
        };
        out.push(DomainName::parse(&listed).expect("generated names are valid"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count_unique() {
        let list = generate(1, 5000);
        assert_eq!(list.len(), 5000);
        let set: std::collections::HashSet<_> = list.iter().collect();
        assert_eq!(set.len(), 5000);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(generate(7, 1000), generate(7, 1000));
        assert_ne!(generate(7, 1000), generate(8, 1000));
    }

    #[test]
    fn prefix_property_of_ranking() {
        // Growing the list does not change earlier ranks.
        let small = generate(3, 500);
        let large = generate(3, 1000);
        assert_eq!(&large[..500], &small[..]);
    }

    #[test]
    fn small_share_of_www_entries() {
        let list = generate(2, 10_000);
        let www = list.iter().filter(|d| d.is_www()).count();
        let share = www as f64 / 10_000.0;
        assert!(share > 0.01 && share < 0.06, "www share {share}");
    }

    #[test]
    fn names_are_parseable_and_have_tlds() {
        for d in generate(5, 200) {
            assert!(d.label_count() >= 2, "{d}");
        }
    }
}
