//! The RPKI adoption model: who creates ROAs, and how well.
//!
//! Calibrated to the paper's findings:
//!
//! * ISPs and webhosters "have started RPKI deployment" (>5%
//!   penetration) — each operator adopts with a per-class probability,
//!   and an adopter covers *all* of its announced prefixes;
//! * "No other CDN has made any deployment" except Internap, which has
//!   exactly **four** prefixes in the RPKI "tied to three origin ASes"
//!   while operating 41 ASes — reproduced literally;
//! * ≈0.09% of announcements validate Invalid due to misconfigured ROAs
//!   (wrong origin AS), "spread evenly across all Alexa ranks" — each
//!   adopter botches a ROA with a small per-prefix probability.

use crate::allocation::{rir_prefixes, RIR_NAMES};
use crate::operators::{Operator, OperatorClass};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ripki_net::{Asn, IpPrefix, PrefixSet};
use ripki_rpki::repo::{Repository, RepositoryBuilder};
use ripki_rpki::resources::Resources;
use ripki_rpki::roa::RoaPrefix;
use ripki_rpki::time::SimTime;
use std::collections::BTreeSet;

/// One announced prefix holding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefixHolding {
    /// Index of the owning operator in the scenario's operator list.
    pub operator: usize,
    /// The announcing AS.
    pub asn: Asn,
    /// The allocated/announced prefix.
    pub prefix: IpPrefix,
    /// Length of the deepest announced more-specific (equals
    /// `prefix.len()` when only the aggregate is announced). Adopters set
    /// their ROA `maxLength` here, so their own more-specifics stay
    /// valid.
    pub deepest_announced: u8,
}

/// Per-class adoption rates and the misconfiguration rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdoptionConfig {
    /// Probability that an ISP operator creates ROAs.
    pub isp: f64,
    /// Probability that a webhoster creates ROAs.
    pub webhoster: f64,
    /// Probability that an enterprise creates ROAs.
    pub enterprise: f64,
    /// Per-prefix probability that an adopter's ROA carries a wrong
    /// origin ASN (making the real announcement Invalid).
    pub misconfig: f64,
    /// Lower bound on misconfigured ROAs when there is at least one
    /// adopter. Every real-world RPKI snapshot contains *some* invalids
    /// (the paper measures ≈0.09%); at small simulation scales the
    /// probabilistic draw alone would often produce none.
    pub min_misconfigs: usize,
}

impl Default for AdoptionConfig {
    fn default() -> AdoptionConfig {
        AdoptionConfig {
            isp: 0.068,
            webhoster: 0.055,
            enterprise: 0.022,
            misconfig: 0.016,
            min_misconfigs: 1,
        }
    }
}

/// What the adoption pass produced (for reports and tests).
#[derive(Debug, Clone, Default)]
pub struct AdoptionSummary {
    /// Operators that created ROAs (by index).
    pub adopters: BTreeSet<usize>,
    /// Total ROAs published.
    pub roa_count: usize,
    /// Prefixes whose ROA deliberately carries a wrong origin.
    pub misconfigured: Vec<IpPrefix>,
    /// The Internap special-case prefixes (empty if Internap absent).
    pub internap_prefixes: Vec<IpPrefix>,
}

/// Build the five-TA repository with the adoption model applied.
pub fn build_repository(
    operators: &[Operator],
    holdings: &[PrefixHolding],
    cfg: &AdoptionConfig,
    seed: u64,
    now: SimTime,
) -> (Repository, AdoptionSummary) {
    let (mut builder, summary) = issue_repository(operators, holdings, cfg, seed, now);
    (builder.snapshot(), summary)
}

/// Run the adoption model but return the still-open [`RepositoryBuilder`]
/// instead of a finalized [`Repository`], so churn generators can keep
/// evolving the RPKI (add/remove ROAs, roll keys) and re-publish
/// snapshots per epoch.
pub fn issue_repository(
    operators: &[Operator],
    holdings: &[PrefixHolding],
    cfg: &AdoptionConfig,
    seed: u64,
    now: SimTime,
) -> (RepositoryBuilder, AdoptionSummary) {
    // Scenarios issue their repository some days before the measurement
    // instant; keep CRLs/manifests current across that gap (real CAs
    // re-sign on a schedule — we model the current snapshot).
    let mut builder =
        RepositoryBuilder::new(seed, now).crl_validity(ripki_rpki::time::Duration::days(90));
    let mut summary = AdoptionSummary::default();

    let ta_ids: Vec<_> = (0..5)
        .map(|rir| {
            builder.add_trust_anchor(RIR_NAMES[rir], Resources::from_prefixes(rir_prefixes(rir)))
        })
        .collect();

    // Group holdings by operator.
    let mut by_op: Vec<Vec<&PrefixHolding>> = vec![Vec::new(); operators.len()];
    for h in holdings {
        by_op[h.operator].push(h);
    }

    // Phase 1: decide adopters and misconfiguration flags.
    // (operator idx, is-internap, [(holding idx, misconfigured)]).
    type AdoptionPlan = Vec<(usize, bool, Vec<(usize, bool)>)>;
    let mut plan: AdoptionPlan = Vec::new();
    let mut misconfig_total = 0usize;
    for (idx, op) in operators.iter().enumerate() {
        let op_holdings = &by_op[idx];
        if op_holdings.is_empty() {
            continue;
        }
        let mut rng = StdRng::seed_from_u64(
            seed ^ 0xad09_7103 ^ (idx as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        );
        let adopts = match op.class {
            OperatorClass::Isp => rng.gen_bool(cfg.isp),
            OperatorClass::Webhoster => rng.gen_bool(cfg.webhoster),
            OperatorClass::Enterprise => rng.gen_bool(cfg.enterprise),
            // "these CDNs do not actively participate in the creation of
            // RPKI attestation objects" — except Internap, handled below.
            OperatorClass::Cdn => false,
        };
        let internap = op.class == OperatorClass::Cdn && op.name == "Internap";
        if !adopts && !internap {
            continue;
        }
        let flags: Vec<(usize, bool)> = op_holdings
            .iter()
            .enumerate()
            .map(|(k, _)| {
                let bad = !internap && rng.gen_bool(cfg.misconfig);
                if bad {
                    misconfig_total += 1;
                }
                (k, bad)
            })
            .collect();
        plan.push((idx, internap, flags));
    }

    // Phase 2: enforce the misconfiguration floor over regular adopters.
    if misconfig_total < cfg.min_misconfigs {
        let mut needed = cfg.min_misconfigs - misconfig_total;
        'outer: for (_, internap, flags) in &mut plan {
            if *internap {
                continue;
            }
            for (_, bad) in flags.iter_mut() {
                if needed == 0 {
                    break 'outer;
                }
                if !*bad {
                    *bad = true;
                    needed -= 1;
                }
            }
        }
    }

    // Phase 3: issue certificates and ROAs.
    for (idx, internap, flags) in plan {
        let op = &operators[idx];
        let op_holdings = &by_op[idx];
        let resources = Resources {
            prefixes: PrefixSet::from_prefixes(op_holdings.iter().map(|h| h.prefix)),
            ..Default::default()
        };
        let ca = builder
            .add_ca(ta_ids[op.rir], &format!("{}-{}", op.name, idx), resources)
            .expect("operator resources are within the RIR's holdings");
        summary.adopters.insert(idx);

        if internap {
            // Exactly four prefixes, tied to three origin ASes.
            let chosen = pick_internap_prefixes(op_holdings);
            for h in &chosen {
                builder
                    .add_roa(
                        ca,
                        h.asn,
                        vec![RoaPrefix::up_to(h.prefix, h.deepest_announced)],
                    )
                    .expect("Internap ROA within CA resources");
                summary.roa_count += 1;
                summary.internap_prefixes.push(h.prefix);
            }
            continue;
        }

        for (k, bad) in flags {
            let h = op_holdings[k];
            let origin = if bad {
                // Classic misconfiguration: the ROA names the provider's
                // management ASN (here: a never-announced ASN) instead of
                // the announcing AS.
                summary.misconfigured.push(h.prefix);
                Asn::new(h.asn.value().wrapping_add(3_000_000))
            } else {
                h.asn
            };
            builder
                .add_roa(
                    ca,
                    origin,
                    vec![RoaPrefix::up_to(h.prefix, h.deepest_announced)],
                )
                .expect("holding within CA resources");
            summary.roa_count += 1;
        }
    }

    (builder, summary)
}

/// Pick four of Internap's holdings spanning exactly three ASes (or as
/// close as its allocation allows).
fn pick_internap_prefixes<'h>(holdings: &[&'h PrefixHolding]) -> Vec<&'h PrefixHolding> {
    let mut by_asn: Vec<(Asn, Vec<&PrefixHolding>)> = Vec::new();
    for h in holdings {
        match by_asn.iter_mut().find(|(a, _)| *a == h.asn) {
            Some((_, v)) => v.push(h),
            None => by_asn.push((h.asn, vec![h])),
        }
    }
    let mut chosen: Vec<&PrefixHolding> = Vec::new();
    // Two from the first AS, one each from the next two.
    for (i, (_, hs)) in by_asn.iter().enumerate().take(3) {
        let want = if i == 0 { 2 } else { 1 };
        chosen.extend(hs.iter().take(want));
    }
    // Top up to four if the AS spread was too thin.
    for h in holdings {
        if chosen.len() >= 4 {
            break;
        }
        if !chosen.iter().any(|c| std::ptr::eq(*c, *h)) {
            chosen.push(h);
        }
    }
    chosen.truncate(4);
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::OperatorId;
    use ripki_rpki::time::Duration;
    use ripki_rpki::validate::validate;

    fn p(s: &str) -> IpPrefix {
        s.parse().unwrap()
    }

    fn mk_op(idx: u32, name: &str, class: OperatorClass, asns: &[u32], rir: usize) -> Operator {
        Operator {
            id: OperatorId(idx),
            name: name.into(),
            class,
            asns: asns.iter().map(|a| Asn::new(*a)).collect(),
            rir,
        }
    }

    fn holding(op: usize, asn: u32, prefix: &str) -> PrefixHolding {
        let prefix = p(prefix);
        PrefixHolding {
            operator: op,
            asn: Asn::new(asn),
            prefix,
            deepest_announced: prefix.len(),
        }
    }

    #[test]
    fn full_adoption_produces_valid_repository() {
        let ops = vec![
            mk_op(0, "ISP-0", OperatorClass::Isp, &[100], 4),
            mk_op(1, "HOST-1", OperatorClass::Webhoster, &[200], 2),
        ];
        let holdings = vec![
            holding(0, 100, "77.0.0.0/16"),
            holding(0, 100, "77.1.0.0/16"),
            holding(1, 200, "8.0.0.0/16"),
        ];
        let cfg = AdoptionConfig {
            isp: 1.0,
            webhoster: 1.0,
            enterprise: 1.0,
            misconfig: 0.0,
            min_misconfigs: 0,
        };
        let (repo, summary) = build_repository(&ops, &holdings, &cfg, 1, SimTime::EPOCH);
        assert_eq!(summary.adopters.len(), 2);
        assert_eq!(summary.roa_count, 3);
        assert!(summary.misconfigured.is_empty());
        let report = validate(&repo, SimTime::EPOCH + Duration::days(1));
        assert_eq!(report.rejected_count(), 0, "{:?}", report.log);
        assert_eq!(report.vrps.len(), 3);
        assert!(report
            .vrps
            .iter()
            .any(|v| v.prefix == p("8.0.0.0/16") && v.asn == Asn::new(200)));
    }

    #[test]
    fn zero_adoption_produces_empty_rpki() {
        let ops = vec![mk_op(0, "ISP-0", OperatorClass::Isp, &[100], 4)];
        let holdings = vec![holding(0, 100, "77.0.0.0/16")];
        let cfg = AdoptionConfig {
            isp: 0.0,
            webhoster: 0.0,
            enterprise: 0.0,
            misconfig: 0.0,
            min_misconfigs: 0,
        };
        let (repo, summary) = build_repository(&ops, &holdings, &cfg, 1, SimTime::EPOCH);
        assert!(summary.adopters.is_empty());
        assert_eq!(repo.roa_count(), 0);
        // TAs still exist.
        assert_eq!(repo.trust_anchors.len(), 5);
    }

    #[test]
    fn cdns_never_adopt_but_internap_places_four() {
        let ops = vec![
            mk_op(0, "Cloudflare", OperatorClass::Cdn, &[500], 2),
            mk_op(1, "Internap", OperatorClass::Cdn, &[600, 601, 602, 603], 2),
        ];
        let mut holdings = vec![holding(0, 500, "8.0.0.0/16")];
        // Internap: six holdings across four ASes.
        holdings.push(holding(1, 600, "9.0.0.0/16"));
        holdings.push(holding(1, 600, "9.1.0.0/16"));
        holdings.push(holding(1, 601, "9.2.0.0/16"));
        holdings.push(holding(1, 602, "9.3.0.0/16"));
        holdings.push(holding(1, 603, "9.4.0.0/16"));
        let cfg = AdoptionConfig {
            isp: 1.0,
            webhoster: 1.0,
            enterprise: 1.0,
            misconfig: 0.0,
            min_misconfigs: 0,
        };
        let (repo, summary) = build_repository(&ops, &holdings, &cfg, 1, SimTime::EPOCH);
        assert_eq!(summary.internap_prefixes.len(), 4);
        assert_eq!(repo.roa_count(), 4);
        // Tied to exactly three origin ASes.
        let origins: BTreeSet<Asn> = repo.all_roas().map(|r| r.asn).collect();
        assert_eq!(origins.len(), 3);
        // Cloudflare contributed nothing.
        assert!(!summary.adopters.contains(&0));
    }

    #[test]
    fn misconfigured_roas_use_wrong_origin() {
        let ops = vec![mk_op(0, "ISP-0", OperatorClass::Isp, &[100], 4)];
        let holdings: Vec<PrefixHolding> = (0..40)
            .map(|i| holding(0, 100, &format!("77.{i}.0.0/16")))
            .collect();
        let cfg = AdoptionConfig {
            isp: 1.0,
            webhoster: 0.0,
            enterprise: 0.0,
            misconfig: 0.5,
            min_misconfigs: 0,
        };
        let (repo, summary) = build_repository(&ops, &holdings, &cfg, 3, SimTime::EPOCH);
        assert!(!summary.misconfigured.is_empty());
        assert!(summary.misconfigured.len() < 40);
        let report = validate(&repo, SimTime::EPOCH + Duration::days(1));
        // Misconfigured ROAs are still *cryptographically valid* — the
        // paper's invalids come from wrong content, not broken crypto.
        assert_eq!(report.rejected_count(), 0);
        for pfx in &summary.misconfigured {
            let vrp = report.vrps.iter().find(|v| v.prefix == *pfx).unwrap();
            assert_ne!(vrp.asn, Asn::new(100));
        }
    }

    #[test]
    fn maxlength_covers_deepest_announcement() {
        let ops = vec![mk_op(0, "ISP-0", OperatorClass::Isp, &[100], 4)];
        let mut h = holding(0, 100, "77.0.0.0/16");
        h.deepest_announced = 20;
        let cfg = AdoptionConfig {
            isp: 1.0,
            webhoster: 0.0,
            enterprise: 0.0,
            misconfig: 0.0,
            min_misconfigs: 0,
        };
        let (repo, _) = build_repository(&ops, &[h], &cfg, 1, SimTime::EPOCH);
        let report = validate(&repo, SimTime::EPOCH + Duration::days(1));
        assert_eq!(report.vrps[0].max_length, 20);
    }

    #[test]
    fn adoption_rates_roughly_respected() {
        let ops: Vec<Operator> = (0..400)
            .map(|i| mk_op(i, &format!("ISP-{i}"), OperatorClass::Isp, &[1000 + i], 4))
            .collect();
        let holdings: Vec<PrefixHolding> = (0..400)
            .map(|i| holding(i as usize, 1000 + i, &format!("77.{}.0.0/16", i % 256)))
            .collect();
        let cfg = AdoptionConfig {
            isp: 0.10,
            webhoster: 0.0,
            enterprise: 0.0,
            misconfig: 0.0,
            min_misconfigs: 0,
        };
        let (_, summary) = build_repository(&ops, &holdings, &cfg, 9, SimTime::EPOCH);
        let rate = summary.adopters.len() as f64 / 400.0;
        assert!((rate - 0.10).abs() < 0.05, "rate {rate}");
    }
}
