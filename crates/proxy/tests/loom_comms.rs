//! Loom model of the fabric's gossip channel (`ripki_proxy::comms`).
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"` (CI's static-analysis
//! lane), alongside the queue, SharedView, and ThreadPool models:
//!
//! ```sh
//! RUSTFLAGS="--cfg loom" cargo test -p ripki-proxy --test loom_comms
//! ```
//!
//! The invariant under model: **epoch monotonicity survives every hop
//! composition**. A subscriber — whether it sits directly on a unit's
//! gossip, behind a relay (combinator-shaped hop), or joins late —
//! never observes the epoch move backwards, and the final epoch always
//! gets through. `Subscription` itself asserts per-delivery
//! monotonicity (the R5 bargain), so any interleaving that could
//! deliver a regression panics the model.
#![cfg(loom)]
// Test code: unwrap on join handles is fine here.
#![allow(clippy::unwrap_used)]

use loom::thread;
use ripki_net::Asn;
use ripki_payload::{PayloadUpdate, VrpPayload, VrpTriple};
use ripki_proxy::comms::{Gossip, Wait};
use ripki_proxy::Subscription;
use std::time::Duration;

const EPOCHS: u64 = 6;

fn update(epoch: u64) -> PayloadUpdate {
    PayloadUpdate::snapshot(VrpPayload::new(
        epoch,
        [VrpTriple {
            prefix: "10.0.0.0/24".parse().expect("prefix"),
            max_length: 24,
            asn: Asn::new(u32::try_from(epoch).expect("small epoch")),
        }],
    ))
}

fn drain(mut sub: Subscription) -> Vec<u64> {
    let mut seen = Vec::new();
    while let Some(update) = sub.recv() {
        seen.push(update.epoch());
    }
    seen
}

fn assert_monotonic_to_final(seen: &[u64]) {
    // `Subscription` already asserts strict per-delivery monotonicity;
    // re-check here so the model fails even if that assert is removed.
    assert!(
        seen.windows(2).all(|w| w[0] < w[1]),
        "epochs regressed: {seen:?}"
    );
    assert_eq!(
        seen.last().copied(),
        Some(EPOCHS),
        "final epoch must always be delivered: {seen:?}"
    );
}

#[test]
fn direct_subscriber_never_sees_a_serial_regression() {
    loom::model(|| {
        let gossip = Gossip::new();
        let subscriber = {
            let sub = gossip.subscribe();
            thread::spawn(move || drain(sub))
        };
        for epoch in 1..=EPOCHS {
            assert!(gossip.publish(update(epoch)));
        }
        gossip.close();
        assert_monotonic_to_final(&subscriber.join().unwrap());
    });
}

#[test]
fn epochs_stay_monotonic_across_unit_combinator_target_hops() {
    loom::model(|| {
        // unit → (relay hop: combinator-shaped forwarder) → target.
        let unit_out = Gossip::new();
        let relay_out = Gossip::new();

        // The relay re-publishes whatever it receives, racing the unit.
        let relay = {
            let mut sub = unit_out.subscribe();
            let out = relay_out.clone();
            thread::spawn(move || {
                while let Some(update) = sub.recv() {
                    out.publish(update);
                }
                out.close();
            })
        };

        // The target drains the relay, never the unit directly.
        let target = {
            let sub = relay_out.subscribe();
            thread::spawn(move || drain(sub))
        };

        for epoch in 1..=EPOCHS {
            assert!(unit_out.publish(update(epoch)));
        }
        unit_out.close();

        relay.join().unwrap();
        assert_monotonic_to_final(&target.join().unwrap());
    });
}

#[test]
fn racing_publishers_cannot_regress_a_subscriber() {
    loom::model(|| {
        // Two producers race into one gossip (e.g. a unit restarting
        // while its replacement already publishes). The publish-side
        // refusal must serialize them into a strictly increasing view.
        let gossip = Gossip::new();
        let subscriber = {
            let sub = gossip.subscribe();
            thread::spawn(move || drain(sub))
        };
        let racer = {
            let gossip = gossip.clone();
            thread::spawn(move || {
                for epoch in [2u64, 3, 5] {
                    gossip.publish(update(epoch));
                }
            })
        };
        for epoch in [1u64, 4, EPOCHS] {
            gossip.publish(update(epoch));
        }
        racer.join().unwrap();
        gossip.close();
        let seen = subscriber.join().unwrap();
        assert!(
            seen.windows(2).all(|w| w[0] < w[1]),
            "epochs regressed: {seen:?}"
        );
        assert_eq!(seen.last().copied(), Some(EPOCHS));
    });
}

#[test]
fn late_subscriber_starts_from_the_current_epoch() {
    loom::model(|| {
        let gossip = Gossip::new();
        for epoch in 1..=3 {
            assert!(gossip.publish(update(epoch)));
        }
        // A subscription taken mid-stream sees the newest state first,
        // then only forward motion.
        let late = {
            let sub = gossip.subscribe();
            thread::spawn(move || drain(sub))
        };
        for epoch in 4..=EPOCHS {
            assert!(gossip.publish(update(epoch)));
        }
        gossip.close();
        let seen = late.join().unwrap();
        assert!(seen.first().copied() >= Some(3), "stale start: {seen:?}");
        assert_monotonic_to_final(&seen);
    });
}

#[test]
fn timed_out_waits_do_not_lose_updates() {
    loom::model(|| {
        let gossip = Gossip::new();
        let subscriber = {
            let mut sub = gossip.subscribe();
            thread::spawn(move || {
                let mut seen = Vec::new();
                loop {
                    match sub.recv_timeout(Duration::from_millis(1)) {
                        Wait::Update(update) => seen.push(update.epoch()),
                        Wait::TimedOut => {}
                        Wait::Closed => break,
                    }
                }
                seen
            })
        };
        for epoch in 1..=EPOCHS {
            assert!(gossip.publish(update(epoch)));
        }
        gossip.close();
        assert_monotonic_to_final(&subscriber.join().unwrap());
    });
}
