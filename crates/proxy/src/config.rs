//! The pipeline declaration: a TOML-subset `proxy.toml` parser.
//!
//! The fabric is declared RTRTR-style as named *units* (ingest +
//! transform) and *targets* (fan-out), wired by name:
//!
//! ```toml
//! [units.engine]
//! type = "engine"          # local study engine
//! domains = 200
//! epochs = 5
//!
//! [units.feed]
//! type = "any"             # failover combinator
//! sources = ["engine"]
//!
//! [targets.rtr]
//! type = "rtr"
//! listen = "127.0.0.1:0"
//! unit = "feed"
//! ```
//!
//! The container has no TOML crate, so this parses the subset the
//! fabric needs: `[units.NAME]` / `[targets.NAME]` section headers,
//! `key = value` entries with string / integer / boolean / string-array
//! values, `#` comments, and nothing else. Unknown syntax is an error —
//! a typo in an operator's pipeline must never silently drop a hop.

use std::collections::BTreeMap;
use std::fmt;

/// A scalar or string-list value in a pipeline declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// A quoted string.
    Str(String),
    /// An integer literal.
    Int(u64),
    /// `true` / `false`.
    Bool(bool),
    /// An array of quoted strings.
    List(Vec<String>),
}

/// One declared section: its `key = value` entries.
pub type Table = BTreeMap<String, Value>;

/// A parsed pipeline declaration, section order preserved.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProxyConfig {
    /// Ingest and transform stages, in declaration order.
    pub units: Vec<(String, Table)>,
    /// Fan-out stages, in declaration order.
    pub targets: Vec<(String, Table)>,
}

/// A declaration that cannot be a pipeline, with its line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line the problem was found on (0 for whole-file errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "proxy config line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

fn err(line: usize, message: impl Into<String>) -> ConfigError {
    ConfigError {
        line,
        message: message.into(),
    }
}

impl ProxyConfig {
    /// Parse a `proxy.toml` document.
    pub fn parse(text: &str) -> Result<ProxyConfig, ConfigError> {
        let mut config = ProxyConfig::default();
        // (is_unit, index into units/targets) of the open section.
        let mut open: Option<(bool, usize)> = None;
        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix('[') {
                let header = header
                    .strip_suffix(']')
                    .ok_or_else(|| err(lineno, format!("unterminated section header {line:?}")))?
                    .trim();
                let (kind, name) = header.split_once('.').ok_or_else(|| {
                    err(
                        lineno,
                        format!("expected [units.NAME] or [targets.NAME], got [{header}]"),
                    )
                })?;
                let name = name.trim();
                if name.is_empty()
                    || !name
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
                {
                    return Err(err(lineno, format!("invalid section name {name:?}")));
                }
                let bucket = match kind.trim() {
                    "units" => &mut config.units,
                    "targets" => &mut config.targets,
                    other => {
                        return Err(err(
                            lineno,
                            format!("unknown section kind {other:?} (expected units or targets)"),
                        ))
                    }
                };
                if bucket.iter().any(|(n, _)| n == name) {
                    return Err(err(lineno, format!("duplicate section [{header}]")));
                }
                bucket.push((name.to_string(), Table::new()));
                open = Some((kind.trim() == "units", bucket.len() - 1));
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| err(lineno, format!("expected key = value, got {line:?}")))?;
            let key = key.trim();
            if key.is_empty() {
                return Err(err(lineno, "empty key"));
            }
            let value = parse_value(value.trim(), lineno)?;
            let Some((is_unit, index)) = open else {
                return Err(err(
                    lineno,
                    "entry before any [units.*]/[targets.*] section",
                ));
            };
            let table = if is_unit {
                &mut config.units[index].1
            } else {
                &mut config.targets[index].1
            };
            if table.insert(key.to_string(), value).is_some() {
                return Err(err(lineno, format!("duplicate key {key:?}")));
            }
        }
        Ok(config)
    }
}

/// Drop a trailing `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(raw: &str, lineno: usize) -> Result<Value, ConfigError> {
    if raw == "true" {
        return Ok(Value::Bool(true));
    }
    if raw == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(inner) = raw.strip_prefix('"') {
        let inner = inner
            .strip_suffix('"')
            .ok_or_else(|| err(lineno, format!("unterminated string {raw:?}")))?;
        if inner.contains('"') {
            return Err(err(lineno, format!("embedded quote in string {raw:?}")));
        }
        return Ok(Value::Str(inner.to_string()));
    }
    if let Some(inner) = raw.strip_prefix('[') {
        let inner = inner
            .strip_suffix(']')
            .ok_or_else(|| err(lineno, format!("unterminated array {raw:?}")))?
            .trim();
        let mut items = Vec::new();
        if !inner.is_empty() {
            for item in inner.split(',') {
                match parse_value(item.trim(), lineno)? {
                    Value::Str(s) => items.push(s),
                    other => {
                        return Err(err(
                            lineno,
                            format!("arrays may only hold strings, got {other:?}"),
                        ))
                    }
                }
            }
        }
        return Ok(Value::List(items));
    }
    raw.parse::<u64>()
        .map(Value::Int)
        .map_err(|_| err(lineno, format!("unparseable value {raw:?}")))
}

/// Typed accessors over a section's table, with consistent errors.
pub struct Section<'a> {
    /// The section's display name (`units.engine`, `targets.rtr`).
    pub name: String,
    table: &'a Table,
}

impl<'a> Section<'a> {
    /// Wrap a table under its display name.
    pub fn new(kind: &str, name: &str, table: &'a Table) -> Section<'a> {
        Section {
            name: format!("{kind}.{name}"),
            table,
        }
    }

    fn missing(&self, key: &str, want: &str) -> ConfigError {
        err(0, format!("[{}] needs {want} `{key}`", self.name))
    }

    /// A required string entry.
    pub fn str(&self, key: &str) -> Result<&'a str, ConfigError> {
        match self.table.get(key) {
            Some(Value::Str(s)) => Ok(s),
            _ => Err(self.missing(key, "a string")),
        }
    }

    /// An optional string entry.
    pub fn str_opt(&self, key: &str) -> Option<&'a str> {
        match self.table.get(key) {
            Some(Value::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// An integer entry with a default.
    pub fn int_or(&self, key: &str, default: u64) -> Result<u64, ConfigError> {
        match self.table.get(key) {
            Some(Value::Int(n)) => Ok(*n),
            None => Ok(default),
            Some(_) => Err(self.missing(key, "an integer")),
        }
    }

    /// A required string-array entry.
    pub fn list(&self, key: &str) -> Result<&'a [String], ConfigError> {
        match self.table.get(key) {
            Some(Value::List(items)) => Ok(items),
            _ => Err(self.missing(key, "a string array")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_pipeline() {
        let text = r#"
# two-hop demo
[units.engine]
type = "engine"   # local validator
domains = 150
epochs = 3
exit-after-epochs = true

[units.feed]
type = "any"
sources = ["engine"]

[targets.rtr]
type = "rtr"
listen = "127.0.0.1:0"
unit = "feed"
"#;
        let config = ProxyConfig::parse(text).expect("parse");
        assert_eq!(config.units.len(), 2);
        assert_eq!(config.targets.len(), 1);
        let (name, engine) = &config.units[0];
        assert_eq!(name, "engine");
        assert_eq!(engine.get("type"), Some(&Value::Str("engine".into())));
        assert_eq!(engine.get("domains"), Some(&Value::Int(150)));
        assert_eq!(engine.get("exit-after-epochs"), Some(&Value::Bool(true)));
        let (_, feed) = &config.units[1];
        assert_eq!(
            feed.get("sources"),
            Some(&Value::List(vec!["engine".into()]))
        );
        let (name, rtr) = &config.targets[0];
        assert_eq!(name, "rtr");
        assert_eq!(rtr.get("unit"), Some(&Value::Str("feed".into())));
    }

    #[test]
    fn rejects_malformed_declarations() {
        for bad in [
            "key = \"before any section\"",
            "[units.engine",
            "[pipelines.x]\n",
            "[units.engine]\ntype",
            "[units.engine]\ntype = \"a\nb\"",
            "[units.engine]\nn = [1, 2]",
            "[units.a]\n[units.a]",
            "[units.a]\nk = \"x\"\nk = \"y\"",
            "[units.bad name]",
        ] {
            assert!(ProxyConfig::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn section_accessors_type_check() {
        let config =
            ProxyConfig::parse("[units.u]\ns = \"x\"\nn = 5\nl = [\"a\", \"b\"]").expect("parse");
        let section = Section::new("units", "u", &config.units[0].1);
        assert_eq!(section.str("s").expect("str"), "x");
        assert_eq!(section.int_or("n", 0).expect("int"), 5);
        assert_eq!(section.int_or("absent", 7).expect("default"), 7);
        assert_eq!(section.list("l").expect("list"), ["a", "b"]);
        assert!(section.str("n").is_err());
        assert!(section.list("s").is_err());
        assert_eq!(section.str_opt("absent"), None);
    }
}
