//! A minimal blocking HTTP/1.1 GET client for the JSON ingest unit.
//!
//! The serving side already has its hardened parser in
//! [`ripki_serve::http`]; this is the *other* direction — just enough
//! client to poll `/vrps.json` with conditional requests. Supports
//! `http://host:port/path` URLs, `Content-Length` bodies, and
//! close-delimited bodies (what [`ripki_serve`] streams its exports
//! as). No redirects, no TLS, no chunked encoding — a peer answering
//! with any of those is an error, not a silent truncation.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A decoded HTTP response: status, headers (lower-cased names), body.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code from the response line.
    pub status: u16,
    /// Header fields with lower-cased names, in order of appearance.
    pub headers: Vec<(String, String)>,
    /// The complete response body.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// First value of a header (name compared case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Split an `http://host:port/path` URL into authority and path.
pub fn split_url(url: &str) -> io::Result<(&str, &str)> {
    let rest = url
        .strip_prefix("http://")
        .ok_or_else(|| bad(format!("only http:// URLs are supported: {url}")))?;
    let (authority, path) = match rest.find('/') {
        Some(i) => (&rest[..i], &rest[i..]),
        None => (rest, "/"),
    };
    if authority.is_empty() {
        return Err(bad(format!("URL has no host: {url}")));
    }
    Ok((authority, path))
}

/// Issue one GET and read the whole response. `extra_headers` are sent
/// verbatim (e.g. `("if-none-match", etag)`); `timeout` bounds connect
/// and each read.
pub fn get(
    url: &str,
    extra_headers: &[(&str, &str)],
    timeout: Duration,
) -> io::Result<HttpResponse> {
    let (authority, path) = split_url(url)?;
    let addr = authority
        .parse()
        .map_err(|_| bad(format!("unparseable host:port in URL: {authority}")))?;
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let _ = stream.set_nodelay(true);
    let mut request = format!("GET {path} HTTP/1.1\r\nhost: {authority}\r\n");
    for (name, value) in extra_headers {
        request.push_str(name);
        request.push_str(": ");
        request.push_str(value);
        request.push_str("\r\n");
    }
    request.push_str("connection: close\r\n\r\n");
    stream.write_all(request.as_bytes())?;
    stream.flush()?;
    read_response(&mut stream)
}

/// Parse a full response off `stream` (status line, headers, body).
pub fn read_response<R: Read>(stream: &mut R) -> io::Result<HttpResponse> {
    let mut raw = Vec::with_capacity(4096);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(i) = find_head_end(&raw) {
            break i;
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(bad("connection closed before response head"));
        }
        raw.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&raw[..head_end]).map_err(|_| bad("non-UTF-8 head"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| bad("empty response"))?;
    let mut parts = status_line.splitn(3, ' ');
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(bad(format!("unsupported version {version:?}")));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("unparseable status code"))?;
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| bad(format!("malformed header line {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let response = HttpResponse {
        status,
        headers,
        body: Vec::new(),
    };
    if response
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return Err(bad("chunked transfer encoding is not supported"));
    }
    let mut body = raw[head_end + 4..].to_vec();
    match response.header("content-length") {
        Some(len) => {
            let len: usize = len
                .parse()
                .map_err(|_| bad(format!("unparseable content-length {len:?}")))?;
            while body.len() < len {
                let n = stream.read(&mut chunk)?;
                if n == 0 {
                    return Err(bad("connection closed mid-body"));
                }
                body.extend_from_slice(&chunk[..n]);
            }
            body.truncate(len);
        }
        None => {
            // Close-delimited body: read to EOF.
            loop {
                let n = stream.read(&mut chunk)?;
                if n == 0 {
                    break;
                }
                body.extend_from_slice(&chunk[..n]);
            }
        }
    }
    Ok(HttpResponse { body, ..response })
}

/// Index of the `\r\n\r\n` terminating the head, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_content_length_response() {
        let wire = b"HTTP/1.1 200 OK\r\ncontent-type: text/plain\r\nContent-Length: 5\r\n\r\nhello";
        let response = read_response(&mut &wire[..]).expect("parse");
        assert_eq!(response.status, 200);
        assert_eq!(response.header("content-type"), Some("text/plain"));
        assert_eq!(response.body, b"hello");
    }

    #[test]
    fn parses_close_delimited_response() {
        let wire = b"HTTP/1.1 200 OK\r\netag: \"e-7\"\r\n\r\n{\"roas\":[]}";
        let response = read_response(&mut &wire[..]).expect("parse");
        assert_eq!(response.header("etag"), Some("\"e-7\""));
        assert_eq!(response.body, b"{\"roas\":[]}");
    }

    #[test]
    fn rejects_chunked_and_garbage() {
        let chunked = b"HTTP/1.1 200 OK\r\ntransfer-encoding: chunked\r\n\r\n0\r\n\r\n";
        assert!(read_response(&mut &chunked[..]).is_err());
        let garbage = b"SPDY/3 200\r\n\r\n";
        assert!(read_response(&mut &garbage[..]).is_err());
    }

    #[test]
    fn splits_urls() {
        assert_eq!(
            split_url("http://127.0.0.1:8080/vrps.json").expect("url"),
            ("127.0.0.1:8080", "/vrps.json")
        );
        assert_eq!(
            split_url("http://127.0.0.1:8080").expect("url"),
            ("127.0.0.1:8080", "/")
        );
        assert!(split_url("https://x/").is_err());
        assert!(split_url("ftp://x/").is_err());
    }
}
