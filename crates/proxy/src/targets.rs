//! Fan-out targets: everything that *serves* payloads out of the
//! fabric.
//!
//! Each target subscribes to one unit's gossip and keeps its serving
//! state in lockstep with the fabric's epoch. The RTR target reuses the
//! battle-tested [`CacheServer`]; the HTTP target reuses the hardened
//! request parser from [`ripki_serve::http`] and serves the JSON/CSV
//! exports plus `/status` and Prometheus `/metrics`.

use crate::comms::{Subscription, Wait};
use crate::log::Log;
use ripki_payload::VrpPayload;
use ripki_rtr::CacheServer;
use ripki_serve::http::{
    body_disposition, drain_body, read_request, Body, BodyDisposition, Request, Response,
};
use serde_json::{Map, Value};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How often serving loops re-check the shutdown flag while idle.
const IDLE_POLL: Duration = Duration::from_millis(100);

/// A running target: its bound address plus the threads the manager
/// joins on drain (`consume`) and shutdown (`accept`).
pub struct TargetHandle {
    /// The target's configured name.
    pub name: String,
    /// The socket the target actually bound (port 0 resolved).
    pub addr: SocketAddr,
    /// The subscription-draining thread; finishes when the feeding
    /// unit closes its gossip.
    pub consume: Option<JoinHandle<()>>,
    /// The accept loop; runs until shutdown so late clients can still
    /// fetch the final state.
    pub accept: Option<JoinHandle<()>>,
}

/// A deterministic per-target RTR session id, so chained caches present
/// distinct sessions (a router failing over between hops must resync,
/// not silently mix serial spaces).
fn session_id(name: &str) -> u16 {
    let mut h: u16 = 0x1715;
    for b in name.bytes() {
        h = h.rotate_left(5) ^ u16::from(b);
    }
    h
}

/// Start an RTR cache target: bind `listen`, feed a [`CacheServer`]
/// from `sub`, serve each router connection with unsolicited Serial
/// Notify. Returns once the socket is bound (so the caller knows the
/// real port before any log line races).
pub fn start_rtr_target(
    name: &str,
    listen: &str,
    mut sub: Subscription,
    log: &Log,
    shutdown: &Arc<AtomicBool>,
) -> io::Result<TargetHandle> {
    let listener = TcpListener::bind(listen)?;
    let addr = listener.local_addr()?;
    log.line(&format_args!("target {name} (rtr): listening on {addr}"));
    let cache = Arc::new(CacheServer::new(session_id(name)));

    let consume = {
        let cache = Arc::clone(&cache);
        let log = log.clone();
        let shutdown = Arc::clone(shutdown);
        let name = name.to_string();
        std::thread::spawn(move || {
            let mut resyncs: u64 = 0;
            loop {
                match sub.recv_timeout(IDLE_POLL) {
                    Wait::Update(update) => {
                        // A delta that fails to chain onto the cache's
                        // serial (stale base after a missed epoch) must
                        // become an explicit, counted snapshot re-sync —
                        // never a silent skip.
                        let mode = match &update.delta {
                            Some(delta) if cache.apply_vrp_delta(delta) => String::from("delta"),
                            Some(_) => {
                                cache.install_payload(&update.payload);
                                resyncs += 1;
                                format!("snapshot resync #{resyncs}")
                            }
                            None => {
                                cache.install_payload(&update.payload);
                                String::from("snapshot")
                            }
                        };
                        log.line(&format_args!(
                            "target {name} (rtr): serial {} in lockstep with {} [{mode}]",
                            cache.serial(),
                            update.payload,
                        ));
                    }
                    Wait::TimedOut => {
                        if shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                    }
                    Wait::Closed => break,
                }
            }
            log.line(&format_args!("target {name} (rtr): feed drained"));
        })
    };

    let accept = {
        let cache = Arc::clone(&cache);
        let shutdown = Arc::clone(shutdown);
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let cache = Arc::clone(&cache);
                // Router connections are detached: they end when the
                // peer hangs up (the read side is timeout-polled, so a
                // closed socket is noticed within one IDLE_POLL).
                std::thread::spawn(move || {
                    let _ = cache.serve_tcp_with_notify(stream, IDLE_POLL);
                });
            }
        })
    };

    Ok(TargetHandle {
        name: name.to_string(),
        addr,
        consume: Some(consume),
        accept: Some(accept),
    })
}

/// Serving state shared between the HTTP accept loop and the
/// subscription drainer.
struct HttpState {
    payload: Mutex<Option<VrpPayload>>,
    updates_total: AtomicU64,
    requests_total: AtomicU64,
    /// Updates whose delta did not chain onto the held epoch — each one
    /// is a full re-sync the operator should be able to see.
    resyncs_total: AtomicU64,
}

impl HttpState {
    fn current(&self) -> Option<VrpPayload> {
        self.payload
            .lock()
            .expect("http target state poisoned")
            .clone()
    }
}

/// The entity tag for an epoch's JSON export — stable across proxies
/// serving the same epoch, which is what makes conditional polling
/// across a chain cheap.
fn etag(epoch: u64) -> String {
    format!("\"ripki-epoch-{epoch}\"")
}

/// Route one request against the current payload.
fn route(state: &HttpState, request: &Request) -> Response {
    // Relaxed: a standalone monotonic counter — no other memory hangs
    // off its value, readers only ever report it.
    state.requests_total.fetch_add(1, Ordering::Relaxed);
    if request.method != "GET" {
        return Response::error(405, "only GET is supported");
    }
    let Some(payload) = state.current() else {
        return Response::error(503, "no payload received yet");
    };
    match request.path.as_str() {
        "/vrps.json" => {
            let tag = etag(payload.epoch());
            if request.header("if-none-match") == Some(tag.as_str()) {
                return Response::not_modified(tag);
            }
            let mut body = Vec::new();
            // Writing into a Vec cannot fail; degrade instead of panic.
            if ripki_payload::json::write_vrps_json(&payload, None, &mut body).is_err() {
                return Response::error(500, "export serialization failed");
            }
            Response {
                status: 200,
                content_type: "application/json",
                headers: vec![("etag", tag)],
                body: Body::Full(body),
            }
        }
        "/vrps.csv" => {
            let mut body = Vec::new();
            if ripki_payload::json::write_vrps_csv(&payload, &mut body).is_err() {
                return Response::error(500, "export serialization failed");
            }
            Response {
                status: 200,
                content_type: "text/csv; charset=utf-8",
                headers: vec![("etag", etag(payload.epoch()))],
                body: Body::Full(body),
            }
        }
        "/status" => {
            let mut root = Map::new();
            root.insert("epoch".into(), payload.epoch().into());
            root.insert("vrps".into(), payload.len().into());
            root.insert("digest".into(), format!("{:016x}", payload.digest()).into());
            root.insert(
                "updates_total".into(),
                // Relaxed: point-in-time counter reads for reporting.
                state.updates_total.load(Ordering::Relaxed).into(),
            );
            root.insert(
                "requests_total".into(),
                // Relaxed: point-in-time counter reads for reporting.
                state.requests_total.load(Ordering::Relaxed).into(),
            );
            root.insert(
                "resyncs_total".into(),
                // Relaxed: point-in-time counter reads for reporting.
                state.resyncs_total.load(Ordering::Relaxed).into(),
            );
            Response::json(200, &Value::Object(root))
        }
        "/metrics" => {
            let text = format!(
                "# TYPE ripki_proxy_epoch gauge\nripki_proxy_epoch {}\n\
                 # TYPE ripki_proxy_vrps gauge\nripki_proxy_vrps {}\n\
                 # TYPE ripki_proxy_updates_total counter\nripki_proxy_updates_total {}\n\
                 # TYPE ripki_proxy_requests_total counter\nripki_proxy_requests_total {}\n\
                 # TYPE ripki_proxy_resyncs_total counter\nripki_proxy_resyncs_total {}\n",
                payload.epoch(),
                payload.len(),
                // Relaxed: point-in-time counter reads for reporting.
                state.updates_total.load(Ordering::Relaxed),
                state.requests_total.load(Ordering::Relaxed), // Relaxed: as above
                state.resyncs_total.load(Ordering::Relaxed),  // Relaxed: as above
            );
            Response::text(200, text)
        }
        _ => Response::error(404, "unknown path"),
    }
}

/// One HTTP connection: parse, route, respond, keep alive when safe.
fn serve_http_connection(state: &HttpState, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let _ = stream.set_nodelay(true);
    let mut buf = Vec::new();
    loop {
        let request = match read_request(&mut stream, &mut buf) {
            Ok(Ok(Some(request))) => request,
            Ok(Ok(None)) => return,
            Ok(Err(e)) => {
                let _ = Response::from_http_error(&e).write_to(&mut stream, false);
                return;
            }
            Err(_) => return, // timeout or reset: drop the connection
        };
        let mut keep_alive = request.keep_alive();
        match body_disposition(&request) {
            BodyDisposition::None => {}
            BodyDisposition::Drain(len) => {
                if drain_body(&mut stream, &mut buf, len).is_err() {
                    return;
                }
            }
            BodyDisposition::Close => keep_alive = false,
        }
        let response = route(state, &request);
        match response.write_to(&mut stream, keep_alive) {
            Ok(true) => {}
            _ => return,
        }
    }
}

/// Start an HTTP export target serving `/vrps.json`, `/vrps.csv`,
/// `/status`, and `/metrics` from the newest payload on `sub`.
pub fn start_http_target(
    name: &str,
    listen: &str,
    mut sub: Subscription,
    log: &Log,
    shutdown: &Arc<AtomicBool>,
) -> io::Result<TargetHandle> {
    let listener = TcpListener::bind(listen)?;
    let addr = listener.local_addr()?;
    log.line(&format_args!("target {name} (http): listening on {addr}"));
    let state = Arc::new(HttpState {
        payload: Mutex::new(None),
        updates_total: AtomicU64::new(0),
        requests_total: AtomicU64::new(0),
        resyncs_total: AtomicU64::new(0),
    });

    let consume = {
        let state = Arc::clone(&state);
        let log = log.clone();
        let shutdown = Arc::clone(shutdown);
        let name = name.to_string();
        std::thread::spawn(move || {
            loop {
                match sub.recv_timeout(IDLE_POLL) {
                    Wait::Update(update) => {
                        // A delta that does not chain onto the held
                        // epoch (stale base after a missed epoch) is an
                        // explicit, counted re-sync — never silent.
                        let mut held = state.payload.lock().expect("http target state poisoned");
                        let mode = match (&update.delta, held.as_ref()) {
                            (Some(delta), Some(prev)) if delta.from_epoch == prev.epoch() => {
                                String::from("delta")
                            }
                            (Some(_), Some(_)) => {
                                // Relaxed: standalone monotonic counter
                                // for reporting.
                                let n = state.resyncs_total.fetch_add(1, Ordering::Relaxed) + 1;
                                format!("snapshot resync #{n}")
                            }
                            _ => String::from("snapshot"),
                        };
                        log.line(&format_args!(
                            "target {name} (http): in lockstep with {} [{mode}]",
                            update.payload,
                        ));
                        *held = Some(update.payload);
                        drop(held);
                        // Relaxed: standalone monotonic counter; the
                        // payload itself is published under the mutex.
                        state.updates_total.fetch_add(1, Ordering::Relaxed);
                    }
                    Wait::TimedOut => {
                        if shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                    }
                    Wait::Closed => break,
                }
            }
            log.line(&format_args!("target {name} (http): feed drained"));
        })
    };

    let accept = {
        let state = Arc::clone(&state);
        let shutdown = Arc::clone(shutdown);
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let state = Arc::clone(&state);
                std::thread::spawn(move || serve_http_connection(&state, stream));
            }
        })
    };

    Ok(TargetHandle {
        name: name.to_string(),
        addr,
        consume: Some(consume),
        accept: Some(accept),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comms::Gossip;
    use ripki_net::Asn;
    use ripki_payload::{PayloadUpdate, VrpTriple};

    fn vrp(prefix: &str, asn: u32) -> VrpTriple {
        VrpTriple {
            prefix: prefix.parse().expect("prefix"),
            max_length: 24,
            asn: Asn::new(asn),
        }
    }

    fn wait_for_epoch(url: &str, epoch: u64) -> ripki_payload::VrpPayload {
        for _ in 0..100 {
            if let Ok(response) = crate::http::get(url, &[], Duration::from_secs(1)) {
                if response.status == 200 {
                    let text = std::str::from_utf8(&response.body).expect("utf8 body");
                    let payload =
                        ripki_payload::json::parse_vrps_json(text).expect("parseable export");
                    if payload.epoch() == epoch {
                        return payload;
                    }
                }
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        panic!("target never served epoch {epoch}");
    }

    #[test]
    fn http_target_serves_payloads_with_etags() {
        let gossip = Gossip::new();
        let shutdown = Arc::new(AtomicBool::new(false));
        let handle = start_http_target(
            "t",
            "127.0.0.1:0",
            gossip.subscribe(),
            &Log::sink(),
            &shutdown,
        )
        .expect("bind");
        let base = format!("http://{}", handle.addr);

        // Before any payload: 503.
        let early = crate::http::get(&format!("{base}/vrps.json"), &[], Duration::from_secs(1))
            .expect("fetch");
        assert_eq!(early.status, 503);

        let payload = ripki_payload::VrpPayload::new(
            4,
            [vrp("10.0.0.0/24", 64496), vrp("10.1.0.0/24", 64497)],
        );
        gossip.publish(PayloadUpdate::snapshot(payload.clone()));
        let served = wait_for_epoch(&format!("{base}/vrps.json"), 4);
        assert_eq!(served, payload, "served set is byte-identical");

        // Conditional refetch: 304 against the served ETag.
        let conditional = crate::http::get(
            &format!("{base}/vrps.json"),
            &[("if-none-match", "\"ripki-epoch-4\"")],
            Duration::from_secs(1),
        )
        .expect("conditional fetch");
        assert_eq!(conditional.status, 304);
        assert!(conditional.body.is_empty());

        // Status + metrics reflect the lockstep state.
        let status = crate::http::get(&format!("{base}/status"), &[], Duration::from_secs(1))
            .expect("status");
        let text = std::str::from_utf8(&status.body).expect("utf8");
        assert!(text.contains("\"epoch\":4"), "status: {text}");
        let metrics = crate::http::get(&format!("{base}/metrics"), &[], Duration::from_secs(1))
            .expect("metrics");
        let text = std::str::from_utf8(&metrics.body).expect("utf8");
        assert!(text.contains("ripki_proxy_epoch 4"), "metrics: {text}");

        gossip.close();
        shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(handle.addr); // wake the accept loop
        handle
            .consume
            .expect("consume handle")
            .join()
            .expect("consume");
        handle
            .accept
            .expect("accept handle")
            .join()
            .expect("accept");
    }

    #[test]
    fn rtr_target_installs_updates_into_its_cache() {
        let gossip = Gossip::new();
        let shutdown = Arc::new(AtomicBool::new(false));
        let handle = start_rtr_target(
            "r",
            "127.0.0.1:0",
            gossip.subscribe(),
            &Log::sink(),
            &shutdown,
        )
        .expect("bind");

        let payload = ripki_payload::VrpPayload::new(2, [vrp("10.0.0.0/24", 64496)]);
        gossip.publish(PayloadUpdate::snapshot(payload.clone()));
        gossip.close();
        handle
            .consume
            .expect("consume handle")
            .join()
            .expect("consume");

        // A real RTR client syncing against the target sees the set.
        let stream = TcpStream::connect(handle.addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .expect("timeout");
        let mut client = ripki_rtr::Client::new(stream);
        client.sync().expect("sync");
        assert_eq!(client.payload().expect("payload"), payload);
        let (_, serial) = client.state().expect("synced state");
        assert_eq!(serial, 2, "RTR serial tracks the fabric epoch");

        shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(handle.addr);
        handle
            .accept
            .expect("accept handle")
            .join()
            .expect("accept");
    }

    #[test]
    fn session_ids_differ_per_target_name() {
        assert_ne!(session_id("rtr-a"), session_id("rtr-b"));
    }

    /// A log sink tests can read back.
    #[derive(Clone, Default)]
    struct Capture(Arc<Mutex<Vec<u8>>>);

    impl Capture {
        fn text(&self) -> String {
            String::from_utf8(self.0.lock().expect("capture").clone()).expect("utf8 log")
        }
    }

    impl std::io::Write for Capture {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().expect("capture").extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn http_target_counts_a_resync_when_a_unit_resumes_mid_stream() {
        // Simulates a feeding unit killed during epoch 2 and resumed at
        // epoch 3: the target holds epoch 1 and receives a 2→3 delta it
        // cannot chain. That must be an explicit, counted re-sync.
        let gossip = Gossip::new();
        let shutdown = Arc::new(AtomicBool::new(false));
        let handle = start_http_target(
            "t",
            "127.0.0.1:0",
            gossip.subscribe(),
            &Log::sink(),
            &shutdown,
        )
        .expect("bind");
        let base = format!("http://{}", handle.addr);

        let p1 = ripki_payload::VrpPayload::new(1, [vrp("10.0.0.0/24", 64496)]);
        gossip.publish(PayloadUpdate::snapshot(p1));
        wait_for_epoch(&format!("{base}/vrps.json"), 1);

        // The unit died at epoch 2; its resumed self diffs 2→3.
        let p2 = ripki_payload::VrpPayload::new(
            2,
            [vrp("10.0.0.0/24", 64496), vrp("10.1.0.0/24", 64497)],
        );
        let p3 = ripki_payload::VrpPayload::new(
            3,
            [vrp("10.0.0.0/24", 64496), vrp("10.2.0.0/24", 64498)],
        );
        gossip.publish(PayloadUpdate::from_previous(&p2, p3.clone()));
        let served = wait_for_epoch(&format!("{base}/vrps.json"), 3);
        assert_eq!(served, p3, "resync serves the snapshot, never a skip");

        let status = crate::http::get(&format!("{base}/status"), &[], Duration::from_secs(1))
            .expect("status");
        let text = std::str::from_utf8(&status.body).expect("utf8");
        assert!(text.contains("\"resyncs_total\":1"), "status: {text}");
        let metrics = crate::http::get(&format!("{base}/metrics"), &[], Duration::from_secs(1))
            .expect("metrics");
        let text = std::str::from_utf8(&metrics.body).expect("utf8");
        assert!(
            text.contains("ripki_proxy_resyncs_total 1"),
            "metrics: {text}"
        );

        // A chaining 3→4 delta is incremental again: the counter stays.
        let p4 = ripki_payload::VrpPayload::new(4, [vrp("10.0.0.0/24", 64496)]);
        gossip.publish(PayloadUpdate::from_previous(&p3, p4));
        wait_for_epoch(&format!("{base}/vrps.json"), 4);
        let status = crate::http::get(&format!("{base}/status"), &[], Duration::from_secs(1))
            .expect("status");
        let text = std::str::from_utf8(&status.body).expect("utf8");
        assert!(text.contains("\"resyncs_total\":1"), "status: {text}");

        gossip.close();
        shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(handle.addr);
        handle
            .consume
            .expect("consume handle")
            .join()
            .expect("consume");
        handle
            .accept
            .expect("accept handle")
            .join()
            .expect("accept");
    }

    #[test]
    fn rtr_target_resyncs_explicitly_on_an_unchained_delta() {
        let capture = Capture::default();
        let log = Log::to(Box::new(capture.clone()));
        let gossip = Gossip::new();
        let shutdown = Arc::new(AtomicBool::new(false));
        let handle = start_rtr_target("r", "127.0.0.1:0", gossip.subscribe(), &log, &shutdown)
            .expect("bind");

        let p1 = ripki_payload::VrpPayload::new(1, [vrp("10.0.0.0/24", 64496)]);
        gossip.publish(PayloadUpdate::snapshot(p1));
        for _ in 0..100 {
            if capture.text().contains("serial 1 in lockstep") {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }

        // Killed during epoch 2, resumed at 3: the 2→3 delta cannot
        // chain onto serial 1 and must fall back to a counted snapshot.
        let p2 = ripki_payload::VrpPayload::new(2, [vrp("10.1.0.0/24", 64497)]);
        let p3 = ripki_payload::VrpPayload::new(3, [vrp("10.2.0.0/24", 64498)]);
        gossip.publish(PayloadUpdate::from_previous(&p2, p3.clone()));
        gossip.close();
        handle
            .consume
            .expect("consume handle")
            .join()
            .expect("consume");
        let text = capture.text();
        assert!(text.contains("[snapshot resync #1]"), "log: {text}");

        // The cache still converged on the full epoch-3 set.
        let stream = TcpStream::connect(handle.addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .expect("timeout");
        let mut client = ripki_rtr::Client::new(stream);
        client.sync().expect("sync");
        assert_eq!(client.payload().expect("payload"), p3);

        shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(handle.addr);
        handle
            .accept
            .expect("accept handle")
            .join()
            .expect("accept");
    }
}
