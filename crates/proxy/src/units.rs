//! Ingest units and combinators: everything that *produces* payload
//! updates into the fabric.
//!
//! Units run as plain threads (workspace policy: `std::net` + threads,
//! no async) publishing into a [`Gossip`]; combinators subscribe to
//! other units' gossip and publish their own. All of them poll a shared
//! shutdown flag between blocking steps, so the manager can stop a
//! pipeline without killing the process.

use crate::comms::{Gossip, Subscription, Wait};
use crate::log::Log;
use ripki::engine::StudyEngine;
use ripki::pipeline::PipelineConfig;
use ripki_payload::{PayloadUpdate, VrpDelta, VrpPayload};
use ripki_rtr::{Backoff, PersistentClient};
use ripki_slurm::{SlurmApplier, SlurmFile};
use ripki_websim::churn::{ChurnConfig, ChurnStream};
use ripki_websim::{Scenario, ScenarioConfig};
use std::collections::BTreeSet;
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, SystemTime};

/// How combinators pace their source polling.
const COMBINATOR_TICK: Duration = Duration::from_millis(2);

/// The local-validator unit: a study engine plus its churn stream,
/// publishing one payload per epoch.
#[derive(Debug, Clone)]
pub struct EngineUnitConfig {
    /// Ranked domains in the simulated world.
    pub domains: usize,
    /// World seed.
    pub seed: u64,
    /// Churn seed.
    pub churn_seed: u64,
    /// Churn epochs to publish after the initial one (the unit closes
    /// its gossip when done).
    pub epochs: u64,
    /// Pause between epochs.
    pub interval: Duration,
}

/// Run a local study engine as an ingest unit. Publishes the initial
/// validation epoch, then `epochs` churn epochs (each with its exact
/// engine delta attached), then closes the gossip.
pub fn run_engine_unit(
    name: &str,
    config: &EngineUnitConfig,
    gossip: &Gossip,
    log: &Log,
    shutdown: &AtomicBool,
) {
    let scenario = Scenario::build(ScenarioConfig {
        seed: config.seed,
        ..ScenarioConfig::with_domains(config.domains)
    });
    let engine = StudyEngine::new(
        scenario.zones.clone(),
        scenario.rib.clone(),
        &scenario.repository,
        PipelineConfig {
            bogus_dns_ppm: 0,
            now: scenario.now,
            ..Default::default()
        },
    );
    let mut results = engine.run(&scenario.ranking);
    let snapshot = engine.snapshot();
    let payload = VrpPayload::new(snapshot.epoch(), snapshot.vrps().iter().copied());
    log.line(&format_args!(
        "unit {name} (engine): epoch {} validated ({})",
        payload.epoch(),
        payload,
    ));
    gossip.publish(PayloadUpdate::snapshot(payload));

    let mut stream = ChurnStream::new(
        &scenario,
        ChurnConfig {
            seed: config.churn_seed,
            ..ChurnConfig::default()
        },
    );
    for _ in 0..config.epochs {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        std::thread::sleep(config.interval);
        let batch = stream.next_epoch();
        let delta = engine.apply_events(&batch, &mut results);
        let snapshot = engine.snapshot();
        let payload = VrpPayload::new(snapshot.epoch(), snapshot.vrps().iter().copied());
        log.line(&format_args!(
            "unit {name} (engine): epoch {} validated ({})",
            payload.epoch(),
            payload,
        ));
        let delta = VrpDelta::new(
            delta.to_epoch - 1,
            delta.to_epoch,
            delta.announced,
            delta.withdrawn,
        );
        gossip.publish(PayloadUpdate {
            payload,
            delta: Some(delta),
        });
    }
    log.line(&format_args!("unit {name} (engine): finished"));
    gossip.close();
}

/// The RTR ingest unit: a reconnecting router-side client feeding an
/// upstream cache's serials into the fabric as epochs.
#[derive(Debug, Clone)]
pub struct RtrUnitConfig {
    /// Upstream cache address (`host:port`).
    pub connect: String,
    /// Serial-notify poll interval (also the socket read timeout).
    pub poll: Duration,
}

/// Run an RTR client unit until shutdown. Connection drops are ridden
/// out by [`PersistentClient`] (incremental resume, capped backoff);
/// every new serial is published with the delta from the previously
/// published payload attached.
pub fn run_rtr_unit(
    name: &str,
    config: &RtrUnitConfig,
    gossip: &Gossip,
    log: &Log,
    shutdown: &AtomicBool,
) {
    let addr = config.connect.clone();
    let poll = config.poll;
    let mut client = PersistentClient::new(move || {
        let stream = TcpStream::connect(&addr)?;
        // The read timeout doubles as the notify poll interval: an idle
        // poll_notify call returns after at most one `poll`.
        stream.set_read_timeout(Some(poll))?;
        Ok(stream)
    })
    .with_backoff(Backoff::new(
        Duration::from_millis(50),
        Duration::from_secs(2),
    ));
    let mut previous: Option<VrpPayload> = None;

    while !shutdown.load(Ordering::SeqCst) {
        match client.sync() {
            Ok(_) => {}
            Err(e) => {
                log.line(&format_args!("unit {name} (rtr): sync failed: {e}"));
                std::thread::sleep(config.poll);
                continue;
            }
        }
        if let Some(payload) = client.payload() {
            let newer = previous
                .as_ref()
                .is_none_or(|prev| payload.epoch() > prev.epoch());
            if newer {
                log.line(&format_args!(
                    "unit {name} (rtr): synced {payload} from {}",
                    config.connect,
                ));
                let update = match &previous {
                    Some(prev) if payload.epoch() > prev.epoch() => {
                        PayloadUpdate::from_previous(prev, payload.clone())
                    }
                    _ => PayloadUpdate::snapshot(payload.clone()),
                };
                previous = Some(payload);
                gossip.publish(update);
            }
        }
        // Idle until the cache pushes a Serial Notify (or the poll
        // timeout passes — then loop to re-check shutdown; a dead
        // connection surfaces here and the next sync reconnects).
        while !shutdown.load(Ordering::SeqCst) {
            match client.poll_notify() {
                Ok(Some(_)) => break,
                Ok(None) => {
                    if !client.is_connected() {
                        break;
                    }
                }
                Err(e) => {
                    log.line(&format_args!("unit {name} (rtr): notify poll failed: {e}"));
                    break;
                }
            }
        }
    }
    gossip.close();
}

/// The JSON-over-HTTP ingest unit: polls a `/vrps.json` endpoint with
/// conditional requests.
#[derive(Debug, Clone)]
pub struct JsonUnitConfig {
    /// Export URL (`http://host:port/vrps.json`).
    pub url: String,
    /// Poll interval.
    pub poll: Duration,
}

/// Run a JSON polling unit until shutdown. Sends `If-None-Match` with
/// the last seen `ETag`, so an unchanged epoch costs a 304 and no body.
pub fn run_json_unit(
    name: &str,
    config: &JsonUnitConfig,
    gossip: &Gossip,
    log: &Log,
    shutdown: &AtomicBool,
) {
    let mut etag: Option<String> = None;
    let mut previous: Option<VrpPayload> = None;
    while !shutdown.load(Ordering::SeqCst) {
        let mut conditional = Vec::new();
        if let Some(tag) = &etag {
            conditional.push(("if-none-match", tag.as_str()));
        }
        match crate::http::get(
            &config.url,
            &conditional,
            config.poll.max(Duration::from_millis(250)),
        ) {
            Ok(response) if response.status == 304 => {}
            Ok(response) if response.status == 200 => {
                let parsed = std::str::from_utf8(&response.body)
                    .map_err(|_| "non-UTF-8 body".to_string())
                    .and_then(|text| {
                        ripki_payload::json::parse_vrps_json(text).map_err(|e| e.to_string())
                    });
                match parsed {
                    Ok(payload) => {
                        let newer = previous
                            .as_ref()
                            .is_none_or(|prev| payload.epoch() > prev.epoch());
                        if newer {
                            etag = response.header("etag").map(str::to_string);
                            log.line(&format_args!(
                                "unit {name} (json): fetched {payload} from {}",
                                config.url,
                            ));
                            let update = match &previous {
                                Some(prev) if payload.epoch() > prev.epoch() => {
                                    PayloadUpdate::from_previous(prev, payload.clone())
                                }
                                _ => PayloadUpdate::snapshot(payload.clone()),
                            };
                            previous = Some(payload);
                            gossip.publish(update);
                        }
                    }
                    Err(e) => {
                        log.line(&format_args!("unit {name} (json): bad payload: {e}"));
                    }
                }
            }
            Ok(response) => {
                log.line(&format_args!(
                    "unit {name} (json): unexpected status {} from {}",
                    response.status, config.url,
                ));
            }
            Err(e) => {
                log.line(&format_args!("unit {name} (json): fetch failed: {e}"));
            }
        }
        std::thread::sleep(config.poll);
    }
    gossip.close();
}

/// The SLURM exception unit: RFC 8416 local filters/assertions applied
/// over a single source, with mtime-based hot reload of the file.
#[derive(Debug, Clone)]
pub struct SlurmUnitConfig {
    /// Path to the RFC 8416 SLURM JSON file.
    pub file: PathBuf,
    /// Pace of the source wait (doubles as the mtime poll interval).
    pub poll: Duration,
}

fn slurm_mtime(path: &Path) -> Option<SystemTime> {
    std::fs::metadata(path).and_then(|m| m.modified()).ok()
}

fn load_slurm(name: &str, path: &Path, log: &Log) -> Result<ripki_slurm::ExceptionSet, String> {
    let file = SlurmFile::load(path).map_err(|e| e.to_string())?;
    for warning in &file.warnings {
        log.line(&format_args!("unit {name} (slurm): warning: {warning}"));
    }
    Ok(file.compile())
}

/// Run a SLURM exception unit until its source closes (or shutdown).
/// Every source update is re-published with the exceptions applied —
/// delta-aware when the source delta chains (`[delta]`), via a counted
/// snapshot re-sync when it does not (`[snapshot resync #N]`, never a
/// silent skip). Editing the file hot-reloads it and publishes the
/// re-excepted set at a **new** epoch.
pub fn run_slurm_unit(
    name: &str,
    config: &SlurmUnitConfig,
    mut source: Subscription,
    gossip: &Gossip,
    log: &Log,
    shutdown: &AtomicBool,
) {
    let exceptions = match load_slurm(name, &config.file, log) {
        Ok(exceptions) => exceptions,
        Err(e) => {
            // The manager validated the file at plan time; losing it
            // between plan and spawn degrades to a pass-through, loudly.
            log.line(&format_args!(
                "unit {name} (slurm): {e}; passing payloads through unfiltered",
            ));
            ripki_slurm::ExceptionSet::empty()
        }
    };
    log.line(&format_args!(
        "unit {name} (slurm): loaded {} ({exceptions})",
        config.file.display(),
    ));
    let mut applier = SlurmApplier::new(exceptions);
    let mut mtime = slurm_mtime(&config.file);
    while !shutdown.load(Ordering::SeqCst) {
        // Hot reload: a changed mtime swaps the exception set and
        // republishes the held base at a fresh epoch.
        let current = slurm_mtime(&config.file);
        if current != mtime {
            mtime = current;
            match load_slurm(name, &config.file, log) {
                Ok(exceptions) => {
                    log.line(&format_args!(
                        "unit {name} (slurm): reloaded {} ({exceptions})",
                        config.file.display(),
                    ));
                    if let Some(out) = applier.reload(exceptions) {
                        publish_slurm(name, &applier, out, gossip, log);
                    }
                }
                Err(e) => {
                    log.line(&format_args!(
                        "unit {name} (slurm): reload failed ({e}); keeping previous exceptions",
                    ));
                }
            }
        }
        match source.recv_timeout(config.poll) {
            Wait::Update(update) => {
                if let Some(out) = applier.ingest(&update) {
                    publish_slurm(name, &applier, out, gossip, log);
                }
            }
            Wait::TimedOut => {}
            Wait::Closed => break,
        }
    }
    log.line(&format_args!("unit {name} (slurm): source drained"));
    gossip.close();
}

fn publish_slurm(
    name: &str,
    applier: &SlurmApplier,
    out: ripki_slurm::AppliedUpdate,
    gossip: &Gossip,
    log: &Log,
) {
    let stats = applier.stats();
    let mode = if out.incremental {
        "delta".to_string()
    } else if out.resync {
        format!("snapshot resync #{}", applier.resyncs())
    } else {
        "snapshot".to_string()
    };
    log.line(&format_args!(
        "unit {name} (slurm): epoch {} out ({}) [{mode}] ({} filtered, {} asserted)",
        out.update.epoch(),
        out.update.payload,
        stats.filtered,
        stats.asserted,
    ));
    gossip.publish(out.update);
}

/// The set-level operation a combinator applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Combinator {
    /// Forward the newest epoch any source offers (failover: when the
    /// preferred source stalls, a newer epoch from any other flows).
    /// Sources must share an epoch space — e.g. the same origin over
    /// different transports.
    Any,
    /// The union of every source's newest set. The output epoch is the
    /// sum of the source epochs: it advances whenever any source does,
    /// and never regresses because each source is monotonic.
    Merge,
    /// The VRPs the first source serves that the second does not
    /// (shadow-deployment comparison). Output epoch as for `Merge`.
    Diff,
}

impl Combinator {
    /// Parse a config `type` string.
    pub fn from_kind(kind: &str) -> Option<Combinator> {
        match kind {
            "any" => Some(Combinator::Any),
            "merge" => Some(Combinator::Merge),
            "diff" => Some(Combinator::Diff),
            _ => None,
        }
    }
}

/// Run a combinator over its source subscriptions until every source
/// closes (or shutdown). Output updates carry a delta from the previous
/// output payload, so in-lockstep receivers stay incremental.
pub fn run_combinator(
    name: &str,
    kind: Combinator,
    mut sources: Vec<Subscription>,
    gossip: &Gossip,
    log: &Log,
    shutdown: &AtomicBool,
) {
    let mut latest: Vec<Option<VrpPayload>> = sources.iter().map(|_| None).collect();
    let mut open: Vec<bool> = sources.iter().map(|_| true).collect();
    let mut newest_arrival: Option<PayloadUpdate> = None;
    let mut previous_out: Option<VrpPayload> = None;
    while !shutdown.load(Ordering::SeqCst) && open.iter().any(|&o| o) {
        let mut changed = false;
        for (i, source) in sources.iter_mut().enumerate() {
            if !open[i] {
                continue;
            }
            // Bounded wait on the first open source paces the loop;
            // the rest are drained without blocking.
            let update = if changed {
                source.try_recv().map_or(Wait::TimedOut, Wait::Update)
            } else {
                source.recv_timeout(COMBINATOR_TICK)
            };
            match update {
                Wait::Update(update) => {
                    let is_newest = newest_arrival
                        .as_ref()
                        .is_none_or(|held| update.epoch() > held.epoch());
                    if is_newest {
                        newest_arrival = Some(update.clone());
                    }
                    latest[i] = Some(update.payload);
                    changed = true;
                }
                Wait::TimedOut => {}
                Wait::Closed => {
                    open[i] = false;
                }
            }
        }
        if !changed {
            continue;
        }
        let out = match kind {
            Combinator::Any => newest_arrival.clone().map(|update| update.payload),
            Combinator::Merge => combined(&latest, |a, b| a.union(b).copied().collect()),
            Combinator::Diff => combined(&latest, |a, b| a.difference(b).copied().collect()),
        };
        let Some(payload) = out else { continue };
        let advanced = previous_out
            .as_ref()
            .is_none_or(|prev| payload.epoch() > prev.epoch());
        if !advanced {
            continue;
        }
        let update = match (&kind, &previous_out, &newest_arrival) {
            // `any` forwards the arrival's own delta when it chains
            // from what we previously emitted (lockstep fast path).
            (Combinator::Any, Some(prev), Some(arrival))
                if arrival
                    .delta
                    .as_ref()
                    .is_some_and(|d| d.from_epoch == prev.epoch()) =>
            {
                PayloadUpdate {
                    payload: payload.clone(),
                    delta: arrival.delta.clone(),
                }
            }
            (_, Some(prev), _) => PayloadUpdate::from_previous(prev, payload.clone()),
            _ => PayloadUpdate::snapshot(payload.clone()),
        };
        log.line(&format_args!(
            "unit {name} ({kind:?}): epoch {} out ({payload})",
            payload.epoch(),
        ));
        previous_out = Some(payload);
        gossip.publish(update);
    }
    log.line(&format_args!("unit {name} ({kind:?}): sources drained"));
    gossip.close();
}

/// Apply a binary set operation left-to-right across every source's
/// newest payload; the output epoch is the sum of source epochs.
/// `None` until every source has reported at least once (emitting a
/// union with a missing source would publish a *shrunken* set later,
/// which downstream RTR clients would see as mass withdrawals).
fn combined(
    latest: &[Option<VrpPayload>],
    op: fn(
        &BTreeSet<ripki_payload::VrpTriple>,
        &BTreeSet<ripki_payload::VrpTriple>,
    ) -> BTreeSet<ripki_payload::VrpTriple>,
) -> Option<VrpPayload> {
    let mut payloads = latest.iter();
    let first = payloads.next()?.as_ref()?;
    let mut set = first.vrps().clone();
    let mut epoch = first.epoch();
    for payload in payloads {
        let payload = payload.as_ref()?;
        set = op(&set, payload.vrps());
        epoch += payload.epoch();
    }
    Some(VrpPayload::new(epoch, set))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripki_net::Asn;
    use ripki_payload::VrpTriple;
    use std::sync::Arc;

    fn vrp(prefix: &str, asn: u32) -> VrpTriple {
        VrpTriple {
            prefix: prefix.parse().expect("prefix"),
            max_length: 24,
            asn: Asn::new(asn),
        }
    }

    fn run_combinator_once(kind: Combinator, feeds: Vec<Vec<VrpPayload>>) -> Vec<PayloadUpdate> {
        let inputs: Vec<Gossip> = feeds.iter().map(|_| Gossip::new()).collect();
        let sources = inputs.iter().map(Gossip::subscribe).collect();
        let output = Gossip::new();
        let mut collected = output.subscribe();
        let shutdown = Arc::new(AtomicBool::new(false));
        let log = Log::sink();
        let handle = {
            let output = output.clone();
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || {
                run_combinator("t", kind, sources, &output, &log, &shutdown);
            })
        };
        for (gossip, payloads) in inputs.iter().zip(feeds) {
            for payload in payloads {
                gossip.publish(PayloadUpdate::snapshot(payload));
                // Give the combinator a tick to drain each publish so
                // single-slot overwrites do not hide intermediate
                // epochs from this test's expectations.
                std::thread::sleep(Duration::from_millis(10));
            }
        }
        for gossip in &inputs {
            gossip.close();
        }
        handle.join().expect("combinator thread");
        let mut updates = Vec::new();
        while let Some(update) = collected.try_recv() {
            updates.push(update);
        }
        updates
    }

    #[test]
    fn any_forwards_the_newest_epoch() {
        let updates = run_combinator_once(
            Combinator::Any,
            vec![
                vec![VrpPayload::new(1, [vrp("10.0.0.0/24", 1)])],
                vec![VrpPayload::new(3, [vrp("11.0.0.0/24", 2)])],
            ],
        );
        let last = updates.last().expect("an update");
        assert_eq!(last.epoch(), 3);
        assert!(last.payload.vrps().contains(&vrp("11.0.0.0/24", 2)));
    }

    #[test]
    fn merge_unions_and_sums_epochs() {
        let updates = run_combinator_once(
            Combinator::Merge,
            vec![
                vec![VrpPayload::new(2, [vrp("10.0.0.0/24", 1)])],
                vec![VrpPayload::new(5, [vrp("11.0.0.0/24", 2)])],
            ],
        );
        let last = updates.last().expect("an update");
        assert_eq!(last.epoch(), 7, "epoch is the sum of source epochs");
        assert_eq!(last.payload.len(), 2);
    }

    #[test]
    fn diff_subtracts_the_second_source() {
        let updates = run_combinator_once(
            Combinator::Diff,
            vec![
                vec![VrpPayload::new(
                    2,
                    [vrp("10.0.0.0/24", 1), vrp("11.0.0.0/24", 2)],
                )],
                vec![VrpPayload::new(3, [vrp("11.0.0.0/24", 2)])],
            ],
        );
        let last = updates.last().expect("an update");
        assert_eq!(
            last.payload.vrps().iter().copied().collect::<Vec<_>>(),
            [vrp("10.0.0.0/24", 1)]
        );
    }

    #[test]
    fn merge_waits_for_every_source() {
        // Only one of two sources has reported: no output yet.
        let updates = run_combinator_once(
            Combinator::Merge,
            vec![vec![VrpPayload::new(2, [vrp("10.0.0.0/24", 1)])], vec![]],
        );
        assert!(updates.is_empty(), "partial unions must not be published");
    }

    /// Write a throwaway SLURM file under the OS temp dir.
    fn slurm_file(name: &str, body: &str) -> PathBuf {
        let path =
            std::env::temp_dir().join(format!("ripki-proxy-{}-{name}.json", std::process::id()));
        std::fs::write(&path, body).expect("write slurm file");
        path
    }

    /// Wait out idle polls until the unit publishes.
    fn recv_update(sub: &mut Subscription) -> PayloadUpdate {
        for _ in 0..200 {
            match sub.recv_timeout(Duration::from_millis(50)) {
                Wait::Update(update) => return update,
                Wait::TimedOut => {}
                Wait::Closed => panic!("slurm unit closed without publishing"),
            }
        }
        panic!("slurm unit never published");
    }

    const UNIT_SLURM: &str = r#"{
        "slurmVersion": 1,
        "validationOutputFilters": {
            "prefixFilters": [{ "prefix": "10.0.0.0/24", "comment": "drop" }],
            "bgpsecFilters": []
        },
        "locallyAddedAssertions": {
            "prefixAssertions": [{ "prefix": "192.0.2.0/24", "asn": 64500 }],
            "bgpsecAssertions": []
        }
    }"#;

    #[test]
    fn slurm_unit_applies_exceptions_delta_aware() {
        let file = slurm_file("delta-aware", UNIT_SLURM);
        let source = Gossip::new();
        let output = Gossip::new();
        let mut out = output.subscribe();
        let shutdown = Arc::new(AtomicBool::new(false));
        let handle = {
            let config = SlurmUnitConfig {
                file: file.clone(),
                poll: Duration::from_millis(10),
            };
            let sub = source.subscribe();
            let output = output.clone();
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || {
                run_slurm_unit("s", &config, sub, &output, &Log::sink(), &shutdown);
            })
        };

        let p1 = VrpPayload::new(1, [vrp("10.0.0.0/24", 64496), vrp("10.1.0.0/24", 64497)]);
        source.publish(PayloadUpdate::snapshot(p1.clone()));
        let first = recv_update(&mut out);
        assert_eq!(first.epoch(), 1);
        assert!(
            !first.payload.vrps().contains(&vrp("10.0.0.0/24", 64496)),
            "filtered VRP must not pass"
        );
        assert!(
            first.payload.vrps().contains(&vrp("192.0.2.0/24", 64500)),
            "asserted VRP must appear"
        );

        // A chaining churn delta stays incremental: the output carries a
        // mapped delta, not a rebuilt snapshot.
        let p2 = VrpPayload::new(
            2,
            [
                vrp("10.0.0.0/24", 64496),
                vrp("10.1.0.0/24", 64497),
                vrp("10.2.0.0/24", 64498),
            ],
        );
        source.publish(PayloadUpdate::from_previous(&p1, p2));
        let second = recv_update(&mut out);
        assert_eq!(second.epoch(), 2);
        let delta = second.delta.expect("delta-aware output");
        assert_eq!((delta.from_epoch, delta.to_epoch), (1, 2));
        assert_eq!(delta.announced, [vrp("10.2.0.0/24", 64498)]);
        assert!(
            second.payload.vrps().contains(&vrp("192.0.2.0/24", 64500)),
            "assertion survives churn"
        );

        source.close();
        handle.join().expect("slurm unit thread");
        let _ = std::fs::remove_file(file);
    }

    #[test]
    fn slurm_unit_hot_reloads_at_a_new_epoch() {
        let file = slurm_file("hot-reload", UNIT_SLURM);
        let source = Gossip::new();
        let output = Gossip::new();
        let mut out = output.subscribe();
        let shutdown = Arc::new(AtomicBool::new(false));
        let handle = {
            let config = SlurmUnitConfig {
                file: file.clone(),
                poll: Duration::from_millis(10),
            };
            let sub = source.subscribe();
            let output = output.clone();
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || {
                run_slurm_unit("s", &config, sub, &output, &Log::sink(), &shutdown);
            })
        };

        let p1 = VrpPayload::new(1, [vrp("10.0.0.0/24", 64496), vrp("10.1.0.0/24", 64497)]);
        source.publish(PayloadUpdate::snapshot(p1.clone()));
        let first = recv_update(&mut out);
        assert_eq!(first.epoch(), 1);
        assert!(!first.payload.vrps().contains(&vrp("10.0.0.0/24", 64496)));

        // Rewrite the file without the filter: the unit must republish
        // the held base at a NEW epoch, with the dropped VRP restored.
        std::thread::sleep(Duration::from_millis(50));
        std::fs::write(&file, r#"{ "slurmVersion": 1 }"#).expect("rewrite slurm file");
        let reloaded = recv_update(&mut out);
        assert_eq!(reloaded.epoch(), 2, "reload publishes a fresh epoch");
        assert!(
            reloaded.payload.vrps().contains(&vrp("10.0.0.0/24", 64496)),
            "former filter no longer applies"
        );
        assert!(
            !reloaded
                .payload
                .vrps()
                .contains(&vrp("192.0.2.0/24", 64500)),
            "former assertion no longer applies"
        );
        let delta = reloaded.delta.expect("reload chains from the held epoch");
        assert_eq!((delta.from_epoch, delta.to_epoch), (1, 2));

        // Source deltas keep chaining after the reload, shifted by the
        // reload's epoch offset.
        let p2 = VrpPayload::new(2, [vrp("10.0.0.0/24", 64496)]);
        source.publish(PayloadUpdate::from_previous(&p1, p2));
        let shifted = recv_update(&mut out);
        assert_eq!(shifted.epoch(), 3);
        let delta = shifted.delta.expect("still delta-aware after reload");
        assert_eq!((delta.from_epoch, delta.to_epoch), (2, 3));

        source.close();
        handle.join().expect("slurm unit thread");
        let _ = std::fs::remove_file(file);
    }

    #[test]
    fn engine_unit_publishes_initial_and_churn_epochs() {
        let gossip = Gossip::new();
        let mut sub = gossip.subscribe();
        let shutdown = AtomicBool::new(false);
        run_engine_unit(
            "e",
            &EngineUnitConfig {
                domains: 40,
                seed: 7,
                churn_seed: 9,
                epochs: 2,
                interval: Duration::ZERO,
            },
            &gossip,
            &Log::sink(),
            &shutdown,
        );
        let mut epochs = Vec::new();
        while let Some(update) = sub.recv() {
            epochs.push(update.epoch());
        }
        assert_eq!(*epochs.last().expect("epochs"), 3, "1 initial + 2 churn");
    }
}
