//! ripki-proxy: a composable VRP distribution fabric.
//!
//! The RiPKI study argues that RPKI-filtered serving only deploys if
//! the *distribution* side is operationally cheap: one validator's
//! output must fan out to many relying parties over whatever transport
//! they already speak. This crate refactors the repository's
//! one-process pipeline (engine → serve/rtr) into RTRTR-style building
//! blocks, declared in a small TOML file and wired at startup:
//!
//! * **Units** ingest payloads: a local [`StudyEngine`] run
//!   ([`units::run_engine_unit`]), an RTR client with reconnect/resume
//!   ([`units::run_rtr_unit`]), or a conditional `/vrps.json` poller
//!   ([`units::run_json_unit`]). Combinators (`any`, `merge`, `diff`)
//!   are units whose input is other units.
//! * **Targets** fan out: an RTR cache server ([`targets`]) and a
//!   JSON/CSV/metrics HTTP exporter.
//! * The [`comms::Gossip`] watch channel carries [`VrpPayload`] epochs
//!   between them with monotonicity enforced at both ends.
//!
//! Because every hop speaks [`ripki_payload::VrpPayload`], a chain of
//! proxies is transparent: the VRP set a router receives N hops
//! downstream is byte-identical to the engine's, and its RTR serial
//! stays in lockstep with the engine's epoch (the multi-process chain
//! test in `crates/cli` demonstrates exactly that).
//!
//! [`StudyEngine`]: ripki::engine::StudyEngine
//! [`VrpPayload`]: ripki_payload::VrpPayload

pub mod comms;
pub mod config;
pub mod http;
pub mod log;
pub mod manager;
pub mod targets;
pub mod units;

pub use comms::{Gossip, Subscription, Wait};
pub use config::{ConfigError, ProxyConfig};
pub use log::Log;
pub use manager::{FabricError, Manager};
