//! A shared line logger injected by the embedding binary.
//!
//! The fabric never prints on its own (ripki-lint R4 reserves stdout
//! for the CLI): every unit, combinator, and target writes through a
//! [`Log`] handed in by whoever started the manager — the CLI passes
//! stdout, in-process tests pass a captured buffer or a sink.

use std::fmt;
use std::io::Write;
use std::sync::{Arc, Mutex};

/// A cloneable, thread-safe line sink.
#[derive(Clone)]
pub struct Log {
    sink: Arc<Mutex<Box<dyn Write + Send>>>,
}

impl fmt::Debug for Log {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Log")
    }
}

impl Log {
    /// Log through an arbitrary writer.
    pub fn to(sink: Box<dyn Write + Send>) -> Log {
        Log {
            sink: Arc::new(Mutex::new(sink)),
        }
    }

    /// Discard everything (tests and benches).
    pub fn sink() -> Log {
        Log::to(Box::new(std::io::sink()))
    }

    /// Write one line and flush it, so piped readers (the multi-process
    /// chain test greps our output live) see it immediately. Logging is
    /// best-effort: a dead sink never takes the fabric down.
    pub fn line(&self, msg: &fmt::Arguments<'_>) {
        let mut sink = self.sink.lock().expect("log sink poisoned");
        let _ = writeln!(sink, "{msg}");
        let _ = sink.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Default)]
    struct Capture(Arc<Mutex<Vec<u8>>>);

    impl Write for Capture {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().expect("capture").extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn lines_are_written_and_flushed() {
        let capture = Capture::default();
        let log = Log::to(Box::new(capture.clone()));
        log.line(&format_args!("hello {}", 7));
        let text = String::from_utf8(capture.0.lock().expect("capture").clone()).expect("utf8");
        assert_eq!(text, "hello 7\n");
    }
}
