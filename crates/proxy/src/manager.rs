//! The fabric manager: builds a running pipeline from a parsed
//! [`ProxyConfig`], owns every thread in it, and tears it down.
//!
//! Wiring is name-based and declaration-order independent: every unit
//! gets a [`Gossip`] up front, then producers (units), transforms
//! (combinators), and consumers (targets) are spawned against those
//! channels. A reference to an undeclared unit is a startup error, not
//! a silently dead hop.

use crate::comms::Gossip;
use crate::config::{ConfigError, ProxyConfig, Section};
use crate::log::Log;
use crate::targets::{start_http_target, start_rtr_target, TargetHandle};
use crate::units::{
    run_combinator, run_engine_unit, run_json_unit, run_rtr_unit, run_slurm_unit, Combinator,
    EngineUnitConfig, JsonUnitConfig, RtrUnitConfig, SlurmUnitConfig,
};
use ripki_slurm::SlurmFile;
use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Why a pipeline could not be started.
#[derive(Debug)]
pub enum FabricError {
    /// The declaration is malformed or inconsistent.
    Config(ConfigError),
    /// A listener could not be bound.
    Io(io::Error),
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::Config(e) => e.fmt(f),
            FabricError::Io(e) => write!(f, "proxy i/o error: {e}"),
        }
    }
}

impl std::error::Error for FabricError {}

impl From<ConfigError> for FabricError {
    fn from(e: ConfigError) -> FabricError {
        FabricError::Config(e)
    }
}

impl From<io::Error> for FabricError {
    fn from(e: io::Error) -> FabricError {
        FabricError::Io(e)
    }
}

fn wiring_error(message: impl Into<String>) -> FabricError {
    FabricError::Config(ConfigError {
        line: 0,
        message: message.into(),
    })
}

/// A validated unit declaration, ready to spawn.
enum UnitPlan {
    Engine(EngineUnitConfig),
    Rtr(RtrUnitConfig),
    Json(JsonUnitConfig),
    Slurm(SlurmUnitConfig, String),
    Combinator(Combinator, Vec<String>),
}

/// Check that `source` names another declared unit.
fn check_source(config: &ProxyConfig, name: &str, source: &str) -> Result<(), FabricError> {
    if source == name {
        return Err(wiring_error(format!(
            "[units.{name}] lists itself as a source",
        )));
    }
    if !config.units.iter().any(|(n, _)| n == source) {
        return Err(wiring_error(format!(
            "[units.{name}] references undeclared unit {source:?}",
        )));
    }
    Ok(())
}

enum TargetKind {
    Rtr,
    Http,
}

/// A validated target declaration, ready to bind.
struct TargetPlan {
    name: String,
    kind: TargetKind,
    listen: String,
    unit: String,
}

/// Validate every unit section: types, required keys, and source
/// references (forward references are fine — names resolve against the
/// whole declaration).
fn plan_units(config: &ProxyConfig) -> Result<Vec<(String, UnitPlan)>, FabricError> {
    let mut plans = Vec::new();
    for (name, table) in &config.units {
        let section = Section::new("units", name, table);
        let kind = section.str("type")?;
        let plan = match kind {
            "engine" => {
                let seed = section.int_or("seed", 42)?;
                UnitPlan::Engine(EngineUnitConfig {
                    domains: usize::try_from(section.int_or("domains", 150)?)
                        .map_err(|_| wiring_error("domains out of range"))?,
                    seed,
                    churn_seed: section.int_or("churn-seed", seed ^ 0x5eed)?,
                    epochs: section.int_or("epochs", 5)?,
                    interval: Duration::from_millis(section.int_or("interval-ms", 0)?),
                })
            }
            "rtr" => UnitPlan::Rtr(RtrUnitConfig {
                connect: section.str("connect")?.to_string(),
                poll: Duration::from_millis(section.int_or("poll-ms", 100)?),
            }),
            "json" => UnitPlan::Json(JsonUnitConfig {
                url: section.str("url")?.to_string(),
                poll: Duration::from_millis(section.int_or("poll-ms", 200)?),
            }),
            "slurm" => {
                let file = std::path::PathBuf::from(section.str("file")?);
                // Fail the whole pipeline now if the exception file is
                // malformed — a typo must never silently change which
                // routes get dropped (the unit re-loads at spawn and on
                // every mtime change).
                SlurmFile::load(&file).map_err(|e| wiring_error(format!("[units.{name}]: {e}")))?;
                let source = section.str("source")?.to_string();
                check_source(config, name, &source)?;
                UnitPlan::Slurm(
                    SlurmUnitConfig {
                        file,
                        poll: Duration::from_millis(section.int_or("poll-ms", 100)?),
                    },
                    source,
                )
            }
            combinator => {
                let Some(kind) = Combinator::from_kind(combinator) else {
                    return Err(wiring_error(format!(
                        "[units.{name}] has unknown type {combinator:?} \
                         (expected engine, rtr, json, slurm, any, merge, or diff)",
                    )));
                };
                let sources = section.list("sources")?.to_vec();
                if sources.is_empty() {
                    return Err(wiring_error(format!(
                        "[units.{name}] needs at least one source",
                    )));
                }
                for source in &sources {
                    check_source(config, name, source)?;
                }
                UnitPlan::Combinator(kind, sources)
            }
        };
        plans.push((name.clone(), plan));
    }
    Ok(plans)
}

/// Validate every target section against the declared units.
fn plan_targets(config: &ProxyConfig) -> Result<Vec<TargetPlan>, FabricError> {
    let mut plans = Vec::new();
    for (name, table) in &config.targets {
        let section = Section::new("targets", name, table);
        let kind = match section.str("type")? {
            "rtr" => TargetKind::Rtr,
            "http" => TargetKind::Http,
            other => {
                return Err(wiring_error(format!(
                    "[targets.{name}] has unknown type {other:?} (expected rtr or http)",
                )));
            }
        };
        let unit = section.str("unit")?.to_string();
        if !config.units.iter().any(|(n, _)| n == &unit) {
            return Err(wiring_error(format!(
                "[targets.{name}] references undeclared unit {unit:?}",
            )));
        }
        plans.push(TargetPlan {
            name: name.clone(),
            kind,
            listen: section.str("listen")?.to_string(),
            unit,
        });
    }
    Ok(plans)
}

/// A running fabric: all threads of all units, combinators, and
/// targets, plus the shared shutdown flag.
pub struct Manager {
    shutdown: Arc<AtomicBool>,
    gossips: Vec<Gossip>,
    /// Threads that finish on their own once their input drains
    /// (engine units, combinators, target consumers).
    finite: Vec<JoinHandle<()>>,
    /// Threads that only stop on shutdown (rtr/json ingest units).
    service: Vec<JoinHandle<()>>,
    targets: Vec<TargetHandle>,
}

impl Manager {
    /// Parse and start a pipeline in one step.
    pub fn from_toml(text: &str, log: &Log) -> Result<Manager, FabricError> {
        let config = ProxyConfig::parse(text)?;
        Manager::start(&config, log)
    }

    /// Start every stage of `config`. The declaration is validated in
    /// full *before* any thread spawns or socket binds, so a bad
    /// pipeline never half-starts. Returns once all listeners are bound
    /// (their addresses have been logged) and all threads are running.
    pub fn start(config: &ProxyConfig, log: &Log) -> Result<Manager, FabricError> {
        let units = plan_units(config)?;
        let targets = plan_targets(config)?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let gossips: BTreeMap<String, Gossip> = config
            .units
            .iter()
            .map(|(name, _)| (name.clone(), Gossip::new()))
            .collect();

        let mut manager = Manager {
            shutdown: Arc::clone(&shutdown),
            gossips: gossips.values().cloned().collect(),
            finite: Vec::new(),
            service: Vec::new(),
            targets: Vec::new(),
        };

        // Targets first: binding is the only fallible step left, and
        // with no units running yet a bind failure tears down cleanly.
        for plan in targets {
            let feed = gossips[&plan.unit].subscribe();
            let started = match plan.kind {
                TargetKind::Rtr => start_rtr_target(&plan.name, &plan.listen, feed, log, &shutdown),
                TargetKind::Http => {
                    start_http_target(&plan.name, &plan.listen, feed, log, &shutdown)
                }
            };
            match started {
                Ok(handle) => manager.targets.push(handle),
                Err(e) => {
                    manager.shutdown();
                    return Err(e.into());
                }
            }
        }

        for (name, plan) in units {
            let gossip = gossips[&name].clone();
            let log = log.clone();
            let shutdown_flag = Arc::clone(&shutdown);
            match plan {
                UnitPlan::Engine(unit) => manager.finite.push(std::thread::spawn(move || {
                    run_engine_unit(&name, &unit, &gossip, &log, &shutdown_flag);
                })),
                UnitPlan::Rtr(unit) => manager.service.push(std::thread::spawn(move || {
                    run_rtr_unit(&name, &unit, &gossip, &log, &shutdown_flag);
                })),
                UnitPlan::Json(unit) => manager.service.push(std::thread::spawn(move || {
                    run_json_unit(&name, &unit, &gossip, &log, &shutdown_flag);
                })),
                UnitPlan::Slurm(unit, source) => {
                    let source = gossips[&source].subscribe();
                    manager.finite.push(std::thread::spawn(move || {
                        run_slurm_unit(&name, &unit, source, &gossip, &log, &shutdown_flag);
                    }));
                }
                UnitPlan::Combinator(kind, sources) => {
                    let sources = sources
                        .iter()
                        .map(|source| gossips[source].subscribe())
                        .collect();
                    manager.finite.push(std::thread::spawn(move || {
                        run_combinator(&name, kind, sources, &gossip, &log, &shutdown_flag);
                    }));
                }
            }
        }

        Ok(manager)
    }

    /// The bound address of every target, in declaration order.
    pub fn target_addrs(&self) -> Vec<(String, SocketAddr)> {
        self.targets
            .iter()
            .map(|t| (t.name.clone(), t.addr))
            .collect()
    }

    /// Block until every self-terminating stage has drained: engine
    /// units have published their last epoch, combinators have seen all
    /// sources close, and target consumers have installed the final
    /// payload. Targets keep *serving* that final state afterwards.
    ///
    /// Only meaningful for pipelines rooted at finite units (`engine`
    /// with an epoch budget); an `rtr`/`json`-fed pipeline never drains
    /// on its own — use [`shutdown`](Self::shutdown) instead.
    pub fn drain(&mut self) {
        for handle in self.finite.drain(..) {
            let _ = handle.join();
        }
        for target in &mut self.targets {
            if let Some(consume) = target.consume.take() {
                let _ = consume.join();
            }
        }
    }

    /// Stop everything: raise the shutdown flag, close all gossip
    /// channels, wake every accept loop, and join every thread.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for gossip in &self.gossips {
            gossip.close();
        }
        // Accept loops only check the flag between connections; poke
        // each listener so they notice.
        for target in &self.targets {
            let _ = TcpStream::connect(target.addr);
        }
        for handle in self.finite.drain(..) {
            let _ = handle.join();
        }
        for handle in self.service.drain(..) {
            let _ = handle.join();
        }
        for target in &mut self.targets {
            if let Some(consume) = target.consume.take() {
                let _ = consume.join();
            }
            if let Some(accept) = target.accept.take() {
                let _ = accept.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn engine_pipeline_reaches_both_targets_in_lockstep() {
        let toml = r#"
[units.world]
type = "engine"
domains = 40
seed = 11
epochs = 2

[units.feed]
type = "any"
sources = ["world"]

[targets.cache]
type = "rtr"
listen = "127.0.0.1:0"
unit = "feed"

[targets.export]
type = "http"
listen = "127.0.0.1:0"
unit = "feed"
"#;
        let log = Log::sink();
        let mut manager = Manager::from_toml(toml, &log).expect("start");
        let addrs: BTreeMap<String, SocketAddr> = manager.target_addrs().into_iter().collect();
        manager.drain();

        // RTR target: a real client sync sees the final epoch.
        let stream = TcpStream::connect(addrs["cache"]).expect("connect rtr");
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .expect("timeout");
        let mut client = ripki_rtr::Client::new(stream);
        client.sync().expect("sync");
        let rtr_payload = client.payload().expect("rtr payload");
        assert_eq!(rtr_payload.epoch(), 3, "initial epoch + 2 churn epochs");

        // HTTP target serves the byte-identical set.
        let response = crate::http::get(
            &format!("http://{}/vrps.json", addrs["export"]),
            &[],
            Duration::from_secs(2),
        )
        .expect("fetch export");
        assert_eq!(response.status, 200);
        let text = std::str::from_utf8(&response.body).expect("utf8");
        let http_payload = ripki_payload::json::parse_vrps_json(text).expect("parse export");
        assert_eq!(http_payload, rtr_payload, "targets are in lockstep");

        manager.shutdown();
    }

    #[test]
    fn bad_wiring_is_a_startup_error() {
        let log = Log::sink();
        for (toml, needle) in [
            (
                "[units.a]\ntype = \"any\"\nsources = [\"ghost\"]",
                "undeclared unit",
            ),
            ("[units.a]\ntype = \"any\"\nsources = [\"a\"]", "itself"),
            ("[units.a]\ntype = \"flux\"", "unknown type"),
            (
                "[units.a]\ntype = \"engine\"\n[targets.t]\ntype = \"rtr\"\nlisten = \"127.0.0.1:0\"\nunit = \"ghost\"",
                "undeclared unit",
            ),
            (
                "[units.a]\ntype = \"engine\"\n[targets.t]\ntype = \"smoke\"\nlisten = \"127.0.0.1:0\"\nunit = \"a\"",
                "unknown type",
            ),
        ] {
            match Manager::from_toml(toml, &log) {
                Err(e) => {
                    let message = e.to_string();
                    assert!(message.contains(needle), "{message:?} missing {needle:?}");
                }
                Ok(manager) => {
                    manager.shutdown();
                    panic!("accepted bad wiring: {toml}");
                }
            }
        }
    }
}
