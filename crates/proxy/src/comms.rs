//! The gossip channel connecting units, combinators, and targets.
//!
//! A watch-style single-slot channel: publishers overwrite the slot
//! with the newest [`PayloadUpdate`], subscribers wake and read it.
//! Only the *latest* update is retained — a slow subscriber skips
//! intermediate epochs rather than queueing them (it resynchronizes
//! from the update's full payload; the delta only applies when it
//! chains, exactly the RTR Cache Reset discipline).
//!
//! This module is one of the lint catalog's *blessed epoch modules*
//! (R5): it may touch `epoch`-named fields directly and in exchange
//! carries the fabric's monotonicity enforcement at both ends:
//!
//! * [`Gossip::publish`] **refuses** updates that do not advance the
//!   published epoch (returns `false`; a unit replaying an old epoch is
//!   a no-op, not a poison pill), and
//! * [`Subscription::recv`] **asserts** that observed epochs strictly
//!   increase — a subscriber can never witness a serial regression, no
//!   matter how hops are composed.

use ripki_payload::PayloadUpdate;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Slot state shared between one publisher and its subscribers.
struct Slot {
    /// Newest update published so far.
    update: Option<PayloadUpdate>,
    /// Bumped on every accepted publish; subscribers diff against it.
    seq: u64,
    /// Set once the publisher is done; subscribers drain and stop.
    closed: bool,
}

struct Channel {
    slot: Mutex<Slot>,
    cond: Condvar,
}

/// The publishing half of a gossip channel (unit or combinator output).
/// Clones share the same slot, so the manager can hand one clone to the
/// producing thread and keep another for wiring subscribers.
#[derive(Clone)]
pub struct Gossip {
    shared: Arc<Channel>,
}

impl Default for Gossip {
    fn default() -> Gossip {
        Gossip::new()
    }
}

impl Gossip {
    /// A fresh channel with nothing published.
    pub fn new() -> Gossip {
        Gossip {
            shared: Arc::new(Channel {
                slot: Mutex::new(Slot {
                    update: None,
                    seq: 0,
                    closed: false,
                }),
                cond: Condvar::new(),
            }),
        }
    }

    /// Publish an update. Accepted (and `true`) only when it advances
    /// the published epoch; replays and regressions are refused so
    /// subscribers can rely on strict monotonicity.
    pub fn publish(&self, update: PayloadUpdate) -> bool {
        let mut slot = self.shared.slot.lock().expect("gossip slot poisoned");
        if let Some(current) = &slot.update {
            if update.epoch() <= current.epoch() {
                return false;
            }
        }
        slot.update = Some(update);
        slot.seq += 1;
        self.shared.cond.notify_all();
        true
    }

    /// The newest published epoch, if any.
    pub fn latest_epoch(&self) -> Option<u64> {
        let slot = self.shared.slot.lock().expect("gossip slot poisoned");
        slot.update.as_ref().map(PayloadUpdate::epoch)
    }

    /// Mark the channel finished. Subscribers drain the final update
    /// (if unseen) and then observe the close.
    pub fn close(&self) {
        let mut slot = self.shared.slot.lock().expect("gossip slot poisoned");
        slot.closed = true;
        self.shared.cond.notify_all();
    }

    /// A new subscription that will see every epoch from the next
    /// publish on (plus the currently held one, if any).
    pub fn subscribe(&self) -> Subscription {
        Subscription {
            shared: Arc::clone(&self.shared),
            seen_seq: 0,
            last_epoch: None,
        }
    }
}

/// What a bounded wait on a subscription yielded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Wait {
    /// A new update arrived.
    Update(PayloadUpdate),
    /// Nothing new within the timeout; poll again.
    TimedOut,
    /// The publisher closed and everything published has been seen.
    Closed,
}

/// The receiving half of a gossip channel.
pub struct Subscription {
    shared: Arc<Channel>,
    seen_seq: u64,
    last_epoch: Option<u64>,
}

impl Subscription {
    /// Block until an unseen update is available (or the channel
    /// closes). `None` means closed-and-drained.
    pub fn recv(&mut self) -> Option<PayloadUpdate> {
        let mut slot = self.shared.slot.lock().expect("gossip slot poisoned");
        loop {
            if slot.seq > self.seen_seq {
                return Some(Self::take(&mut self.seen_seq, &mut self.last_epoch, &slot));
            }
            if slot.closed {
                return None;
            }
            slot = self.shared.cond.wait(slot).expect("gossip slot poisoned");
        }
    }

    /// Like [`recv`](Self::recv) but bounded: give up after `timeout`
    /// so pollers can interleave shutdown checks.
    pub fn recv_timeout(&mut self, timeout: Duration) -> Wait {
        let mut slot = self.shared.slot.lock().expect("gossip slot poisoned");
        if slot.seq <= self.seen_seq && !slot.closed {
            let (guard, _) = self
                .shared
                .cond
                .wait_timeout(slot, timeout)
                .expect("gossip slot poisoned");
            slot = guard;
        }
        if slot.seq > self.seen_seq {
            return Wait::Update(Self::take(&mut self.seen_seq, &mut self.last_epoch, &slot));
        }
        if slot.closed {
            return Wait::Closed;
        }
        Wait::TimedOut
    }

    /// An unseen update if one is ready right now, without blocking.
    pub fn try_recv(&mut self) -> Option<PayloadUpdate> {
        let slot = self.shared.slot.lock().expect("gossip slot poisoned");
        (slot.seq > self.seen_seq)
            .then(|| Self::take(&mut self.seen_seq, &mut self.last_epoch, &slot))
    }

    /// The last epoch this subscription observed.
    pub fn last_epoch(&self) -> Option<u64> {
        self.last_epoch
    }

    fn take(seen_seq: &mut u64, last_epoch: &mut Option<u64>, slot: &Slot) -> PayloadUpdate {
        *seen_seq = slot.seq;
        let update = slot.update.clone().expect("seq advanced without an update");
        // The fabric-wide invariant (ripki-lint R5's bargain): across
        // any composition of units, combinators, and targets, a
        // subscriber never observes the epoch move backwards or stall
        // on a delivery.
        if let Some(last) = *last_epoch {
            assert!(
                update.epoch() > last,
                "gossip delivered a non-monotonic epoch ({} after {})",
                update.epoch(),
                last,
            );
        }
        *last_epoch = Some(update.epoch());
        update
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripki_net::Asn;
    use ripki_payload::{VrpPayload, VrpTriple};

    fn payload(epoch: u64, n: u32) -> PayloadUpdate {
        PayloadUpdate::snapshot(VrpPayload::new(
            epoch,
            (0..n).map(|i| VrpTriple {
                prefix: format!("10.{}.{}.0/24", i / 256, i % 256)
                    .parse()
                    .expect("prefix"),
                max_length: 24,
                asn: Asn::new(i),
            }),
        ))
    }

    #[test]
    fn subscriber_sees_latest_update() {
        let gossip = Gossip::new();
        let mut sub = gossip.subscribe();
        assert!(gossip.publish(payload(1, 2)));
        assert_eq!(sub.recv().expect("update").epoch(), 1);
        assert_eq!(sub.try_recv(), None);
    }

    #[test]
    fn slow_subscriber_skips_to_newest() {
        let gossip = Gossip::new();
        let mut sub = gossip.subscribe();
        assert!(gossip.publish(payload(1, 1)));
        assert!(gossip.publish(payload(2, 2)));
        assert!(gossip.publish(payload(3, 3)));
        let update = sub.recv().expect("update");
        assert_eq!(update.epoch(), 3, "intermediate epochs are skipped");
        assert_eq!(sub.try_recv(), None);
    }

    #[test]
    fn replay_and_regression_are_refused() {
        let gossip = Gossip::new();
        assert!(gossip.publish(payload(5, 1)));
        assert!(!gossip.publish(payload(5, 2)), "same epoch refused");
        assert!(!gossip.publish(payload(4, 2)), "regression refused");
        assert_eq!(gossip.latest_epoch(), Some(5));
    }

    #[test]
    fn close_drains_then_ends() {
        let gossip = Gossip::new();
        let mut sub = gossip.subscribe();
        assert!(gossip.publish(payload(1, 1)));
        gossip.close();
        assert_eq!(sub.recv().expect("final update").epoch(), 1);
        assert_eq!(sub.recv(), None);
        assert_eq!(sub.recv_timeout(Duration::from_millis(1)), Wait::Closed);
    }

    #[test]
    fn next_timeout_times_out_when_quiet() {
        let gossip = Gossip::new();
        let mut sub = gossip.subscribe();
        assert_eq!(sub.recv_timeout(Duration::from_millis(1)), Wait::TimedOut);
        assert!(gossip.publish(payload(1, 1)));
        assert!(matches!(
            sub.recv_timeout(Duration::from_millis(100)),
            Wait::Update(_)
        ));
    }

    #[test]
    fn cross_thread_handoff() {
        let gossip = Gossip::new();
        let mut sub = gossip.subscribe();
        let handle = std::thread::spawn(move || {
            let mut epochs = Vec::new();
            while let Some(update) = sub.recv() {
                epochs.push(update.epoch());
            }
            epochs
        });
        for epoch in 1..=20 {
            assert!(gossip.publish(payload(epoch, 1)));
        }
        gossip.close();
        let seen = handle.join().expect("subscriber thread");
        assert!(!seen.is_empty());
        assert!(seen.windows(2).all(|w| w[0] < w[1]), "monotonic: {seen:?}");
        assert_eq!(*seen.last().expect("at least one"), 20);
    }
}
