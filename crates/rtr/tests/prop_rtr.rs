//! Property tests for the RTR wire format and cache/client convergence.

use proptest::prelude::*;
use ripki_bgp::rov::VrpTriple;
use ripki_net::{Asn, IpPrefix, Ipv4Prefix};
use ripki_rtr::pdu::{ErrorCode, Pdu};
use ripki_rtr::CacheServer;
use std::net::Ipv4Addr;

fn arb_pdu() -> impl Strategy<Value = Pdu> {
    prop_oneof![
        (any::<u16>(), any::<u32>()).prop_map(|(s, n)| Pdu::SerialNotify {
            session_id: s,
            serial: n
        }),
        (any::<u16>(), any::<u32>()).prop_map(|(s, n)| Pdu::SerialQuery {
            session_id: s,
            serial: n
        }),
        Just(Pdu::ResetQuery),
        any::<u16>().prop_map(|s| Pdu::CacheResponse { session_id: s }),
        (
            any::<bool>(),
            0u8..=32,
            0u8..=32,
            any::<u32>(),
            any::<u32>()
        )
            .prop_map(|(a, pl, ml, pfx, asn)| Pdu::Ipv4Prefix {
                announce: a,
                prefix_len: pl,
                max_len: ml,
                prefix: Ipv4Addr::from(pfx),
                asn: Asn::new(asn),
            }),
        (
            any::<bool>(),
            0u8..=128,
            0u8..=128,
            any::<u128>(),
            any::<u32>()
        )
            .prop_map(|(a, pl, ml, pfx, asn)| Pdu::Ipv6Prefix {
                announce: a,
                prefix_len: pl,
                max_len: ml,
                prefix: std::net::Ipv6Addr::from(pfx),
                asn: Asn::new(asn),
            }),
        (any::<u16>(), any::<u32>()).prop_map(|(s, n)| Pdu::EndOfData {
            session_id: s,
            serial: n
        }),
        Just(Pdu::CacheReset),
        (
            0u16..8,
            prop::collection::vec(any::<u8>(), 0..64),
            proptest::string::string_regex("[ -~]{0,40}").unwrap()
        )
            .prop_map(|(c, pdu, text)| Pdu::ErrorReport {
                code: ErrorCode::from_code(c).unwrap(),
                erroneous_pdu: pdu,
                text,
            }),
    ]
}

proptest! {
    /// Every PDU round-trips exactly, and consumes exactly its length.
    #[test]
    fn pdu_roundtrip(pdu in arb_pdu()) {
        let bytes = pdu.encode();
        let (back, used) = Pdu::decode(&bytes).unwrap().unwrap();
        prop_assert_eq!(back, pdu);
        prop_assert_eq!(used, bytes.len());
        // Length header matches reality.
        let declared = u32::from_be_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        prop_assert_eq!(declared as usize, bytes.len());
    }

    /// Decoding arbitrary bytes never panics — it returns Ok(None),
    /// Ok(Some), or a typed error.
    #[test]
    fn decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        let _ = Pdu::decode(&bytes);
    }

    /// Two PDUs back to back decode independently of chunking.
    #[test]
    fn stream_reassembly(a in arb_pdu(), b in arb_pdu(), split in any::<usize>()) {
        let mut wire = a.encode();
        wire.extend(b.encode());
        let cut = split % (wire.len() + 1);
        // Feed in two chunks through the incremental decoder manually.
        let mut buf: Vec<u8> = wire[..cut].to_vec();
        let mut seen = Vec::new();
        loop {
            match Pdu::decode(&buf).unwrap() {
                Some((pdu, used)) => {
                    buf.drain(..used);
                    seen.push(pdu);
                    if seen.len() == 2 {
                        break;
                    }
                }
                None => {
                    buf.extend_from_slice(&wire[cut..]);
                    prop_assert!(buf.len() >= wire.len() - cut);
                }
            }
        }
        prop_assert_eq!(seen, vec![a, b]);
    }

    /// Cache + client converge: after any sequence of updates, a client
    /// syncing incrementally holds exactly the cache's current set.
    #[test]
    fn cache_client_convergence(
        updates in prop::collection::vec(
            prop::collection::btree_set((any::<u16>(), 1u32..500), 0..12),
            1..6,
        ),
        sync_after in prop::collection::vec(any::<bool>(), 1..6),
    ) {
        use std::os::unix::net::UnixStream;
        use std::sync::Arc;
        let cache = Arc::new(CacheServer::new(1));
        let (a, b) = UnixStream::pair().unwrap();
        let server_cache = cache.clone();
        let handle = std::thread::spawn(move || {
            let _ = server_cache.serve_connection(b);
        });
        let mut client = ripki_rtr::Client::new(a);
        let mut last: std::collections::BTreeSet<VrpTriple> = Default::default();
        for (i, set) in updates.iter().enumerate() {
            let vrps: std::collections::BTreeSet<VrpTriple> = set
                .iter()
                .map(|(slot, asn)| VrpTriple {
                    prefix: IpPrefix::V4(
                        Ipv4Prefix::new(
                            Ipv4Addr::new(10, (*slot >> 8) as u8, (*slot & 0xff) as u8, 0),
                            24,
                        )
                        .unwrap(),
                    ),
                    max_length: 24,
                    asn: Asn::new(*asn),
                })
                .collect();
            cache.update(vrps.clone());
            last = vrps;
            // Sometimes skip syncing to force multi-delta catch-up.
            if *sync_after.get(i % sync_after.len()).unwrap_or(&true) {
                client.sync().unwrap();
                prop_assert_eq!(client.vrps(), &last);
            }
        }
        client.sync().unwrap();
        prop_assert_eq!(client.vrps(), &last);
        drop(client);
        let _ = handle.join();
    }
}
