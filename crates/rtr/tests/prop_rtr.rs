//! Property tests for the RTR wire format and cache/client convergence.
// Tests may panic freely; the crate's `unwrap_used` deny targets the
// PDU codec and serving path.
#![allow(clippy::unwrap_used)]

use proptest::prelude::*;
use ripki_bgp::rov::VrpTriple;
use ripki_net::{Asn, IpPrefix, Ipv4Prefix};
use ripki_rtr::pdu::{ErrorCode, Pdu};
use ripki_rtr::CacheServer;
use std::net::Ipv4Addr;

fn arb_pdu() -> impl Strategy<Value = Pdu> {
    prop_oneof![
        (any::<u16>(), any::<u32>()).prop_map(|(s, n)| Pdu::SerialNotify {
            session_id: s,
            serial: n
        }),
        (any::<u16>(), any::<u32>()).prop_map(|(s, n)| Pdu::SerialQuery {
            session_id: s,
            serial: n
        }),
        Just(Pdu::ResetQuery),
        any::<u16>().prop_map(|s| Pdu::CacheResponse { session_id: s }),
        (
            any::<bool>(),
            0u8..=32,
            0u8..=32,
            any::<u32>(),
            any::<u32>()
        )
            .prop_map(|(a, pl, ml, pfx, asn)| Pdu::Ipv4Prefix {
                announce: a,
                prefix_len: pl,
                max_len: ml,
                prefix: Ipv4Addr::from(pfx),
                asn: Asn::new(asn),
            }),
        (
            any::<bool>(),
            0u8..=128,
            0u8..=128,
            any::<u128>(),
            any::<u32>()
        )
            .prop_map(|(a, pl, ml, pfx, asn)| Pdu::Ipv6Prefix {
                announce: a,
                prefix_len: pl,
                max_len: ml,
                prefix: std::net::Ipv6Addr::from(pfx),
                asn: Asn::new(asn),
            }),
        (any::<u16>(), any::<u32>()).prop_map(|(s, n)| Pdu::EndOfData {
            session_id: s,
            serial: n
        }),
        Just(Pdu::CacheReset),
        (
            0u16..8,
            prop::collection::vec(any::<u8>(), 0..64),
            proptest::string::string_regex("[ -~]{0,40}").unwrap()
        )
            .prop_map(|(c, pdu, text)| Pdu::ErrorReport {
                code: ErrorCode::from_code(c).unwrap(),
                erroneous_pdu: pdu,
                text,
            }),
    ]
}

proptest! {
    /// Every PDU round-trips exactly, and consumes exactly its length.
    #[test]
    fn pdu_roundtrip(pdu in arb_pdu()) {
        let bytes = pdu.encode();
        let (back, used) = Pdu::decode(&bytes).unwrap().unwrap();
        prop_assert_eq!(back, pdu);
        prop_assert_eq!(used, bytes.len());
        // Length header matches reality.
        let declared = u32::from_be_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        prop_assert_eq!(declared as usize, bytes.len());
    }

    /// Decoding arbitrary bytes never panics — it returns Ok(None),
    /// Ok(Some), or a typed error.
    #[test]
    fn decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        let _ = Pdu::decode(&bytes);
    }

    /// Two PDUs back to back decode independently of chunking.
    #[test]
    fn stream_reassembly(a in arb_pdu(), b in arb_pdu(), split in any::<usize>()) {
        let mut wire = a.encode();
        wire.extend(b.encode());
        let cut = split % (wire.len() + 1);
        // Feed in two chunks through the incremental decoder manually.
        let mut buf: Vec<u8> = wire[..cut].to_vec();
        let mut seen = Vec::new();
        loop {
            match Pdu::decode(&buf).unwrap() {
                Some((pdu, used)) => {
                    buf.drain(..used);
                    seen.push(pdu);
                    if seen.len() == 2 {
                        break;
                    }
                }
                None => {
                    buf.extend_from_slice(&wire[cut..]);
                    prop_assert!(buf.len() >= wire.len() - cut);
                }
            }
        }
        prop_assert_eq!(seen, vec![a, b]);
    }

    /// Cache + client converge: after any sequence of updates, a client
    /// syncing incrementally holds exactly the cache's current set.
    #[test]
    fn cache_client_convergence(
        updates in prop::collection::vec(
            prop::collection::btree_set((any::<u16>(), 1u32..500), 0..12),
            1..6,
        ),
        sync_after in prop::collection::vec(any::<bool>(), 1..6),
    ) {
        use std::os::unix::net::UnixStream;
        use std::sync::Arc;
        let cache = Arc::new(CacheServer::new(1));
        let (a, b) = UnixStream::pair().unwrap();
        let server_cache = cache.clone();
        let handle = std::thread::spawn(move || {
            let _ = server_cache.serve_connection(b);
        });
        let mut client = ripki_rtr::Client::new(a);
        let mut last: std::collections::BTreeSet<VrpTriple> = Default::default();
        for (i, set) in updates.iter().enumerate() {
            let vrps: std::collections::BTreeSet<VrpTriple> = set
                .iter()
                .map(|(slot, asn)| VrpTriple {
                    prefix: IpPrefix::V4(
                        Ipv4Prefix::new(
                            Ipv4Addr::new(10, (*slot >> 8) as u8, (*slot & 0xff) as u8, 0),
                            24,
                        )
                        .unwrap(),
                    ),
                    max_length: 24,
                    asn: Asn::new(*asn),
                })
                .collect();
            cache.update(vrps.clone());
            last = vrps;
            // Sometimes skip syncing to force multi-delta catch-up.
            if *sync_after.get(i % sync_after.len()).unwrap_or(&true) {
                client.sync().unwrap();
                prop_assert_eq!(client.vrps(), &last);
            }
        }
        client.sync().unwrap();
        prop_assert_eq!(client.vrps(), &last);
        drop(client);
        let _ = handle.join();
    }
}

// ---- decoder fuzzing: malformed and truncated wire input ------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// A strict prefix of any valid encoding is *incomplete*, never a
    /// parse and never an error — the incremental decoder must keep
    /// asking for bytes until the declared length is buffered.
    #[test]
    fn truncated_pdu_is_incomplete_not_an_error(
        pdu in arb_pdu(),
        cut in any::<prop::sample::Index>(),
    ) {
        let bytes = pdu.encode();
        let cut = cut.index(bytes.len()); // 0..len: strictly shorter
        match Pdu::decode(&bytes[..cut]) {
            Ok(None) => {}
            Ok(Some(_)) => prop_assert!(false, "complete parse from a strict prefix"),
            Err(e) => prop_assert!(false, "truncation errored: {e:?}"),
        }
    }

    /// Single-byte corruption of a valid PDU never panics: the decoder
    /// yields a parse within bounds, asks for more bytes (a corrupted
    /// length field), or returns a typed protocol error.
    #[test]
    fn corrupted_pdu_never_panics(
        pdu in arb_pdu(),
        at in any::<prop::sample::Index>(),
        to in any::<u8>(),
    ) {
        let mut bytes = pdu.encode();
        let i = at.index(bytes.len());
        bytes[i] = to;
        match Pdu::decode(&bytes) {
            Ok(Some((_, used))) => prop_assert!(used <= bytes.len()),
            Ok(None) => {}
            Err(_) => {}
        }
    }

    /// A router speaking garbage gets a clean session teardown: the
    /// cache emits only well-formed PDUs, and when it rejects the
    /// stream it says so with an RTR Error Report — never a panic,
    /// never malformed bytes on the wire.
    #[test]
    fn garbage_session_ends_in_error_report(
        bytes in prop::collection::vec(any::<u8>(), 1..96),
    ) {
        use std::io::{Read, Write};
        use std::os::unix::net::UnixStream;
        let cache = CacheServer::new(9);
        cache.update([VrpTriple {
            prefix: IpPrefix::V4(Ipv4Prefix::new(Ipv4Addr::new(10, 0, 0, 0), 24).unwrap()),
            max_length: 24,
            asn: Asn::new(64500),
        }]);
        let (mut a, b) = UnixStream::pair().unwrap();
        let handle = std::thread::spawn(move || cache.serve_connection(b));
        a.write_all(&bytes).unwrap();
        a.shutdown(std::net::Shutdown::Write).unwrap();
        let mut received = Vec::new();
        a.read_to_end(&mut received).unwrap();
        let outcome = handle.join().expect("serve_connection must not panic");

        // Everything the cache wrote decodes as a PDU sequence.
        let mut rest: &[u8] = &received;
        let mut pdus = Vec::new();
        loop {
            match Pdu::decode(rest) {
                Ok(Some((pdu, used))) => {
                    rest = &rest[used..];
                    pdus.push(pdu);
                }
                Ok(None) => break,
                Err(e) => prop_assert!(false, "cache wrote malformed bytes: {e:?}"),
            }
        }
        prop_assert!(rest.is_empty(), "trailing bytes after the last PDU");
        // A rejected stream is always announced with an Error Report.
        if outcome.is_err() {
            prop_assert!(
                matches!(pdus.last(), Some(Pdu::ErrorReport { .. })),
                "session failed without an Error Report: {pdus:?}"
            );
        }
    }
}
