//! Serial Notify over real TCP: the cache pushes when new data lands;
//! the router absorbs the notify and pulls the delta.
// Tests may panic freely; the crate's `unwrap_used` deny targets the
// PDU codec and serving path.
#![allow(clippy::unwrap_used)]

use ripki_bgp::rov::VrpTriple;
use ripki_net::Asn;
use ripki_rtr::{CacheServer, Client, SyncOutcome};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn vrp(prefix: &str, asn: u32) -> VrpTriple {
    VrpTriple {
        prefix: prefix.parse().unwrap(),
        max_length: 24,
        asn: Asn::new(asn),
    }
}

#[test]
fn notify_reaches_idle_router() {
    let cache = Arc::new(CacheServer::new(5));
    cache.update([vrp("10.0.0.0/24", 1)]);

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server_cache = cache.clone();
    std::thread::spawn(move || {
        let (conn, _) = listener.accept().unwrap();
        let _ = server_cache.serve_tcp_with_notify(conn, Duration::from_millis(20));
    });

    let mut router = Client::new(TcpStream::connect(addr).unwrap());
    let outcome = router.sync().unwrap();
    assert_eq!(
        outcome,
        SyncOutcome::Updated {
            serial: 1,
            announced: 1,
            withdrawn: 0
        }
    );
    assert!(!router.needs_sync());

    // New validation run while the router is idle.
    cache.update([vrp("10.0.0.0/24", 1), vrp("10.0.1.0/24", 2)]);
    // Give the notify poller time to fire, then sync: the client absorbs
    // the pending Serial Notify before the Cache Response and applies the
    // delta.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let outcome = loop {
        match router.sync() {
            Ok(o) => break o,
            Err(e) => {
                if std::time::Instant::now() > deadline {
                    panic!("sync failed repeatedly: {e}");
                }
            }
        }
    };
    assert_eq!(
        outcome,
        SyncOutcome::Updated {
            serial: 2,
            announced: 1,
            withdrawn: 0
        }
    );
    assert_eq!(router.vrps().len(), 2);
    // The notify was recorded at some point before or during the sync.
    assert_eq!(router.state().unwrap().1, 2);
    assert!(!router.needs_sync());
}

#[test]
fn needs_sync_reflects_notified_serial() {
    let cache = Arc::new(CacheServer::new(6));
    cache.update([vrp("10.9.0.0/24", 9)]);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server_cache = cache.clone();
    std::thread::spawn(move || {
        let (conn, _) = listener.accept().unwrap();
        let _ = server_cache.serve_tcp_with_notify(conn, Duration::from_millis(10));
    });
    let stream = TcpStream::connect(addr).unwrap();
    // Keep a handle to toggle the socket's read timeout around polls.
    let ctrl = stream.try_clone().unwrap();
    let mut router = Client::new(stream);
    router.sync().unwrap();
    assert!(!router.needs_sync());
    cache.update([vrp("10.9.1.0/24", 9)]);
    // Poll until the pushed notify arrives (the poller may be slow
    // under load, so spin on a deadline rather than a fixed sleep).
    ctrl.set_read_timeout(Some(Duration::from_millis(50)))
        .unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while router.notified_serial() != Some(2) {
        assert!(std::time::Instant::now() < deadline, "notify never arrived");
        router.poll_notify().unwrap();
    }
    assert!(router.needs_sync());
    ctrl.set_read_timeout(None).unwrap();
    router.sync().unwrap();
    assert_eq!(router.notified_serial(), Some(2));
    assert_eq!(router.state().unwrap().1, 2);
    assert!(!router.needs_sync());
}
