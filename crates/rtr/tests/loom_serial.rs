//! Loom model of RTR serial-number wrap (RFC 1982 / RFC 8210 §5.1).
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"` (CI's static-analysis
//! lane):
//!
//! ```sh
//! RUSTFLAGS="--cfg loom" cargo test -p ripki-rtr --test loom_serial
//! ```
//!
//! The invariant: when the cache serial wraps `0xFFFF_FFFF -> 0`, a
//! router still holding the pre-wrap serial must be forced through a
//! Cache Reset — it must never receive a delta response across the wrap
//! boundary, because RFC 1982 comparisons are ambiguous there. Routers
//! querying concurrently with the wrapping install may legitimately see
//! either the pre-wrap world (empty delta, serial `MAX`) or the
//! post-wrap reset; what they must never see is a stale delta chain.
//!
//! The vendored `loom` is an offline stand-in (bounded randomized
//! stress, not exhaustive model checking — see `vendor/loom`).
#![cfg(loom)]
// Test code: unwrap on fixture plumbing is fine here, the crate-level
// deny targets the PDU codec.
#![allow(clippy::unwrap_used)]

use loom::thread;
use ripki_bgp::rov::VrpTriple;
use ripki_net::Asn;
use ripki_rtr::cache::{serial_lt, CacheServer};
use ripki_rtr::pdu::Pdu;
use std::sync::Arc;

fn vrp(third_octet: u8) -> VrpTriple {
    VrpTriple {
        prefix: format!("10.0.{third_octet}.0/24").parse().unwrap(),
        max_length: 24,
        asn: Asn::new(64500),
    }
}

#[test]
fn serial_wrap_forces_cache_reset_not_stale_deltas() {
    loom::model(|| {
        let cache = Arc::new(CacheServer::new(9));
        // Seed the cache at the edge of sequence space with history.
        assert!(cache.install_snapshot(u32::MAX - 1, [vrp(1)]));
        assert!(cache.install_snapshot(u32::MAX, [vrp(1), vrp(2)]));

        // Routers holding the pre-wrap serial query while the wrapping
        // install races with them.
        let routers: Vec<_> = (0..2)
            .map(|_| {
                let cache = Arc::clone(&cache);
                thread::spawn(move || {
                    let reply = cache.handle_query(&Pdu::SerialQuery {
                        session_id: 9,
                        serial: u32::MAX,
                    });
                    match reply.first() {
                        // Post-wrap: history is gone, restart required.
                        Some(Pdu::CacheReset) => {}
                        // Pre-wrap: router is current; the response must
                        // be the empty delta ending at serial MAX, never
                        // a delta chain crossing the wrap.
                        Some(Pdu::CacheResponse { .. }) => {
                            assert_eq!(
                                reply.last(),
                                Some(&Pdu::EndOfData {
                                    session_id: 9,
                                    serial: u32::MAX,
                                }),
                                "delta response crossed the serial wrap: {reply:?}"
                            );
                        }
                        other => panic!("unexpected head PDU {other:?}"),
                    }
                })
            })
            .collect();

        let writer = {
            let cache = Arc::clone(&cache);
            thread::spawn(move || {
                // Numerically contiguous (MAX -> 0) but across the wrap:
                // must clear history rather than record a delta.
                assert!(cache.install_snapshot(0, [vrp(1), vrp(2), vrp(3)]));
            })
        };

        for router in routers {
            router.join().unwrap();
        }
        writer.join().unwrap();

        // After the wrap settles: serial is 0, and the pre-wrap serial
        // can only resync via Cache Reset.
        assert_eq!(cache.serial(), 0);
        assert!(serial_lt(u32::MAX, 0), "RFC 1982: 0 succeeds MAX");
        let reply = cache.handle_query(&Pdu::SerialQuery {
            session_id: 9,
            serial: u32::MAX,
        });
        assert_eq!(reply, vec![Pdu::CacheReset]);
    });
}
