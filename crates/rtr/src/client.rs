//! The router side of RTR: a synchronous client state machine.
//!
//! A router keeps `(session_id, serial)` plus the VRP set. Each
//! [`Client::sync`] either performs a Reset Query (first contact, or
//! after a Cache Reset) or a Serial Query, applies the announce/withdraw
//! records, and hands back a summary. The resulting VRP set plugs
//! straight into [`ripki_bgp::rov::RouteOriginValidator`].
//!
//! For proxy duty — where the client is a long-lived ingest unit, not a
//! one-shot test fixture — the plain [`Client`] is wrapped by
//! [`PersistentClient`]: it owns a connect factory instead of a single
//! stream, survives connection drops by carrying the
//! `(session_id, serial)` context and VRP set across reconnects (so a
//! resumed session issues an incremental Serial Query, not a full
//! refetch), backs off with capped exponential delays, and degrades to
//! a full resync only when the cache forces one (Cache Reset after a
//! serial gap, or a session id change after a cache restart).

use crate::pdu::{read_pdu, ErrorCode, Pdu, PduError};
use ripki_bgp::rov::{RouteOriginValidator, VrpTriple};
use ripki_net::{IpPrefix, Ipv4Prefix, Ipv6Prefix};
use ripki_payload::VrpPayload;
use std::collections::BTreeSet;
use std::fmt;
use std::io::{Read, Write};
use std::time::Duration;

/// Client-side failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Transport or decoding problem.
    Pdu(PduError),
    /// The cache sent an Error Report.
    CacheError {
        /// The reported code.
        code: ErrorCode,
        /// The reported diagnostic text.
        text: String,
    },
    /// The cache sent something that violates the protocol state machine.
    ProtocolViolation(&'static str),
    /// A withdraw for a VRP we do not hold (RFC 6810 §10 code 6).
    WithdrawalOfUnknown(VrpTriple),
    /// An announce for a VRP we already hold (RFC 6810 §10 code 7).
    DuplicateAnnouncement(VrpTriple),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Pdu(e) => write!(f, "{e}"),
            ClientError::CacheError { code, text } => {
                write!(f, "cache reported {code}: {text}")
            }
            ClientError::ProtocolViolation(what) => {
                write!(f, "protocol violation: {what}")
            }
            ClientError::WithdrawalOfUnknown(v) => {
                write!(f, "withdrawal of unknown record {v:?}")
            }
            ClientError::DuplicateAnnouncement(v) => {
                write!(f, "duplicate announcement {v:?}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<PduError> for ClientError {
    fn from(e: PduError) -> ClientError {
        ClientError::Pdu(e)
    }
}

/// What a sync accomplished.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyncOutcome {
    /// State updated to `serial`; counts of applied records.
    Updated {
        /// The serial now held.
        serial: u32,
        /// Announcements applied.
        announced: usize,
        /// Withdrawals applied.
        withdrawn: usize,
    },
}

/// An RTR client over any blocking byte stream.
pub struct Client<S: Read + Write> {
    stream: S,
    buf: Vec<u8>,
    /// `(session_id, serial)` once synchronized.
    state: Option<(u16, u32)>,
    vrps: BTreeSet<VrpTriple>,
    /// Latest serial announced by an unsolicited Serial Notify.
    notified_serial: Option<u32>,
}

fn pdu_vrp(
    announce: bool,
    prefix: IpPrefix,
    max_len: u8,
    asn: ripki_net::Asn,
) -> (bool, VrpTriple) {
    (
        announce,
        VrpTriple {
            prefix,
            max_length: max_len,
            asn,
        },
    )
}

impl<S: Read + Write> Client<S> {
    /// Wrap a connected stream.
    pub fn new(stream: S) -> Client<S> {
        Client {
            stream,
            buf: Vec::new(),
            state: None,
            vrps: BTreeSet::new(),
            notified_serial: None,
        }
    }

    /// Wrap a freshly connected stream, resuming from context salvaged
    /// off a dead connection (see [`Client::into_state`]). With a
    /// `Some` state the first [`sync`](Self::sync) issues an
    /// incremental Serial Query instead of refetching the full set —
    /// the cache decides whether the gap is still bridgeable or forces
    /// a Cache Reset.
    pub fn resume(stream: S, state: Option<(u16, u32)>, vrps: BTreeSet<VrpTriple>) -> Client<S> {
        Client {
            stream,
            buf: Vec::new(),
            state,
            vrps,
            notified_serial: None,
        }
    }

    /// Tear the client down, salvaging the `(session_id, serial)`
    /// context and VRP set for a future [`Client::resume`] on a new
    /// connection.
    pub fn into_state(self) -> (Option<(u16, u32)>, BTreeSet<VrpTriple>) {
        (self.state, self.vrps)
    }

    /// The `(session_id, serial)` pair, once synchronized.
    pub fn state(&self) -> Option<(u16, u32)> {
        self.state
    }

    /// The VRPs currently held.
    pub fn vrps(&self) -> &BTreeSet<VrpTriple> {
        &self.vrps
    }

    /// The serial most recently announced by an unsolicited Serial
    /// Notify (RFC 6810 §5.2), if any arrived. A value newer than
    /// [`state`](Self::state)'s serial means a [`sync`](Self::sync) is
    /// due.
    pub fn notified_serial(&self) -> Option<u32> {
        self.notified_serial
    }

    /// Whether the cache has announced data newer than what we hold.
    pub fn needs_sync(&self) -> bool {
        match (self.notified_serial, self.state) {
            (Some(n), Some((_, held))) => n != held,
            (Some(_), None) => true,
            _ => false,
        }
    }

    /// Build an origin validator from the current VRP set.
    pub fn to_validator(&self) -> RouteOriginValidator {
        RouteOriginValidator::from_vrps(self.vrps.iter().copied())
    }

    /// The current VRP set as an epoch-stamped payload (`None` before
    /// the first sync). The epoch is the RTR serial widened to `u64`,
    /// mirroring [`VrpPayload::serial`]'s truncation in the other
    /// direction.
    pub fn payload(&self) -> Option<VrpPayload> {
        self.state
            .map(|(_, serial)| VrpPayload::new(u64::from(serial), self.vrps.iter().copied()))
    }

    /// Absorb unsolicited Serial Notifies sitting in the transport
    /// without issuing a query, returning the newest serial absorbed
    /// (`Ok(None)` when nothing was pending).
    ///
    /// The stream must have a read timeout (or be non-blocking), since
    /// a quiet cache otherwise blocks the read forever; a timed-out
    /// read is reported as "nothing pending". Anything other than a
    /// Serial Notify outside a query/response exchange is a protocol
    /// violation.
    pub fn poll_notify(&mut self) -> Result<Option<u32>, ClientError> {
        let mut latest = None;
        loop {
            match read_pdu(&mut self.stream, &mut self.buf) {
                Ok(Pdu::SerialNotify { serial, .. }) => {
                    self.notified_serial = Some(serial);
                    latest = Some(serial);
                }
                Ok(_) => {
                    return Err(ClientError::ProtocolViolation(
                        "unsolicited PDU other than Serial Notify",
                    ))
                }
                Err(PduError::Io(msg))
                    if msg.contains("timed out")
                        || msg.contains("WouldBlock")
                        || msg.contains("Resource temporarily unavailable") =>
                {
                    return Ok(latest);
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Synchronize with the cache: Serial Query when we have state,
    /// Reset Query otherwise; falls back to a Reset Query when the cache
    /// answers Cache Reset.
    pub fn sync(&mut self) -> Result<SyncOutcome, ClientError> {
        let query = match self.state {
            Some((session_id, serial)) => Pdu::SerialQuery { session_id, serial },
            None => Pdu::ResetQuery,
        };
        match self.exchange(&query)? {
            Some(outcome) => Ok(outcome),
            None => {
                // Cache Reset: drop state and start over.
                self.state = None;
                self.vrps.clear();
                match self.exchange(&Pdu::ResetQuery)? {
                    Some(outcome) => Ok(outcome),
                    None => Err(ClientError::ProtocolViolation(
                        "Cache Reset in response to Reset Query",
                    )),
                }
            }
        }
    }

    /// Send one query and apply the response. `Ok(None)` means the cache
    /// sent a Cache Reset.
    fn exchange(&mut self, query: &Pdu) -> Result<Option<SyncOutcome>, ClientError> {
        self.stream
            .write_all(&query.encode())
            .map_err(|e| PduError::Io(e.to_string()))?;
        self.stream
            .flush()
            .map_err(|e| PduError::Io(e.to_string()))?;

        // Unsolicited Serial Notifies may arrive at any time; absorb them.
        let first = loop {
            match read_pdu(&mut self.stream, &mut self.buf)? {
                Pdu::SerialNotify { serial, .. } => {
                    self.notified_serial = Some(serial);
                }
                other => break other,
            }
        };
        let session_id = match first {
            Pdu::CacheResponse { session_id } => session_id,
            Pdu::CacheReset => return Ok(None),
            Pdu::ErrorReport { code, text, .. } => {
                return Err(ClientError::CacheError { code, text })
            }
            _ => return Err(ClientError::ProtocolViolation("expected Cache Response")),
        };
        if let Some((held_session, _)) = self.state {
            if held_session != session_id {
                return Err(ClientError::ProtocolViolation(
                    "session id changed mid-session",
                ));
            }
        }

        let mut announced = 0usize;
        let mut withdrawn = 0usize;
        // Stage records; apply only when End of Data arrives intact.
        let mut staged: Vec<(bool, VrpTriple)> = Vec::new();
        let serial = loop {
            match read_pdu(&mut self.stream, &mut self.buf)? {
                Pdu::SerialNotify { serial, .. } => {
                    self.notified_serial = Some(serial);
                }
                Pdu::Ipv4Prefix {
                    announce,
                    prefix_len,
                    max_len,
                    prefix,
                    asn,
                } => {
                    let prefix = IpPrefix::V4(
                        Ipv4Prefix::new(prefix, prefix_len)
                            .map_err(|_| ClientError::ProtocolViolation("bad v4 prefix"))?,
                    );
                    staged.push(pdu_vrp(announce, prefix, max_len, asn));
                }
                Pdu::Ipv6Prefix {
                    announce,
                    prefix_len,
                    max_len,
                    prefix,
                    asn,
                } => {
                    let prefix = IpPrefix::V6(
                        Ipv6Prefix::new(prefix, prefix_len)
                            .map_err(|_| ClientError::ProtocolViolation("bad v6 prefix"))?,
                    );
                    staged.push(pdu_vrp(announce, prefix, max_len, asn));
                }
                Pdu::EndOfData {
                    serial,
                    session_id: eod_session,
                } => {
                    if eod_session != session_id {
                        return Err(ClientError::ProtocolViolation(
                            "End of Data session mismatch",
                        ));
                    }
                    break serial;
                }
                // The cache noticed mid-response that it cannot finish
                // the delta (history evicted under it, serial wrapped):
                // discard everything staged and start over via Reset
                // Query, exactly as for an up-front Cache Reset.
                Pdu::CacheReset => return Ok(None),
                Pdu::ErrorReport { code, text, .. } => {
                    return Err(ClientError::CacheError { code, text })
                }
                _ => {
                    return Err(ClientError::ProtocolViolation(
                        "unexpected PDU inside response",
                    ))
                }
            }
        };
        for (announce, vrp) in staged {
            if announce {
                if !self.vrps.insert(vrp) {
                    return Err(ClientError::DuplicateAnnouncement(vrp));
                }
                announced += 1;
            } else {
                if !self.vrps.remove(&vrp) {
                    return Err(ClientError::WithdrawalOfUnknown(vrp));
                }
                withdrawn += 1;
            }
        }
        self.state = Some((session_id, serial));
        Ok(Some(SyncOutcome::Updated {
            serial,
            announced,
            withdrawn,
        }))
    }
}

/// Capped exponential backoff schedule for reconnect attempts.
///
/// Pure duration bookkeeping — it never sleeps or reads a clock itself,
/// so callers stay testable with zero delays.
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    current: Duration,
}

impl Backoff {
    /// A schedule starting at `base` and doubling up to `cap`.
    pub fn new(base: Duration, cap: Duration) -> Backoff {
        Backoff {
            base,
            cap,
            current: base,
        }
    }

    /// The delay to wait before the next attempt; doubles the
    /// following one (capped).
    pub fn next_delay(&mut self) -> Duration {
        let delay = self.current;
        self.current = self.current.saturating_mul(2).min(self.cap);
        delay
    }

    /// Return to the base delay after a successful attempt.
    pub fn reset(&mut self) {
        self.current = self.base;
    }
}

impl Default for Backoff {
    /// 100 ms doubling to a 5 s ceiling.
    fn default() -> Backoff {
        Backoff::new(Duration::from_millis(100), Duration::from_secs(5))
    }
}

/// A reconnecting RTR client for proxy duty: owns a connect factory
/// instead of a single stream and keeps the `(session_id, serial)`
/// context plus VRP set alive across connection drops.
///
/// Recovery policy per failure class:
///
/// - **Transport errors** (connect refused, mid-exchange EOF): the
///   context is salvaged with [`Client::into_state`], the next
///   connection resumes with [`Client::resume`], and the retry waits
///   out a capped exponential [`Backoff`]. A resumed session issues an
///   incremental Serial Query — not a full refetch — so a blip costs
///   one delta, not the whole set.
/// - **Cache restart** (session id changed in-band, or the cache
///   rejects our session as corrupt data): the salvaged context is
///   void; it is discarded and the next connection starts from a Reset
///   Query.
/// - **Everything else** (genuine protocol violations, error reports
///   like "no data available") is surfaced to the caller unchanged.
pub struct PersistentClient<S: Read + Write, F: FnMut() -> std::io::Result<S>> {
    connect: F,
    client: Option<Client<S>>,
    /// Context carried while between connections; authoritative only
    /// when `client` is `None`.
    state: Option<(u16, u32)>,
    vrps: BTreeSet<VrpTriple>,
    backoff: Backoff,
    max_attempts: u32,
    sleep: fn(Duration),
}

impl<S: Read + Write, F: FnMut() -> std::io::Result<S>> PersistentClient<S, F> {
    /// A persistent client around a connect factory. No connection is
    /// made until the first [`sync`](Self::sync).
    pub fn new(connect: F) -> PersistentClient<S, F> {
        PersistentClient {
            connect,
            client: None,
            state: None,
            vrps: BTreeSet::new(),
            backoff: Backoff::default(),
            max_attempts: 8,
            sleep: std::thread::sleep,
        }
    }

    /// Replace the reconnect backoff schedule (tests use zero delays).
    pub fn with_backoff(mut self, backoff: Backoff) -> PersistentClient<S, F> {
        self.backoff = backoff;
        self
    }

    /// Cap on consecutive failed attempts within one
    /// [`sync`](Self::sync) before the last error is surfaced
    /// (default 8).
    pub fn with_max_attempts(mut self, n: u32) -> PersistentClient<S, F> {
        self.max_attempts = n.max(1);
        self
    }

    /// The `(session_id, serial)` pair, once synchronized — survives
    /// between connections.
    pub fn state(&self) -> Option<(u16, u32)> {
        self.client.as_ref().map_or(self.state, Client::state)
    }

    /// The VRPs currently held — survive between connections.
    pub fn vrps(&self) -> &BTreeSet<VrpTriple> {
        self.client.as_ref().map_or(&self.vrps, Client::vrps)
    }

    /// The current VRP set as an epoch-stamped payload (`None` before
    /// the first successful sync).
    pub fn payload(&self) -> Option<VrpPayload> {
        match &self.client {
            Some(client) => client.payload(),
            None => self
                .state
                .map(|(_, serial)| VrpPayload::new(u64::from(serial), self.vrps.iter().copied())),
        }
    }

    /// Whether a connection is currently established.
    pub fn is_connected(&self) -> bool {
        self.client.is_some()
    }

    /// Drop the current connection (if any), salvaging the sync
    /// context for the next one.
    pub fn disconnect(&mut self) {
        if let Some(client) = self.client.take() {
            let (state, vrps) = client.into_state();
            self.state = state;
            self.vrps = vrps;
        }
    }

    /// Absorb unsolicited Serial Notifies without issuing a query (see
    /// [`Client::poll_notify`]). `Ok(None)` when not connected or
    /// nothing was pending; a dead connection is torn down (context
    /// salvaged) and reported as nothing pending — the next
    /// [`sync`](Self::sync) reconnects.
    pub fn poll_notify(&mut self) -> Result<Option<u32>, ClientError> {
        let Some(client) = self.client.as_mut() else {
            return Ok(None);
        };
        match client.poll_notify() {
            Ok(latest) => Ok(latest),
            Err(ClientError::Pdu(PduError::Io(_))) => {
                self.disconnect();
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }

    /// Synchronize with the cache, transparently (re)connecting and
    /// retrying per the recovery policy above. Fails only after
    /// `max_attempts` consecutive recoverable failures or on the first
    /// unrecoverable error.
    pub fn sync(&mut self) -> Result<SyncOutcome, ClientError> {
        let mut failures = 0u32;
        loop {
            if self.client.is_none() {
                match (self.connect)() {
                    Ok(stream) => {
                        self.client = Some(Client::resume(
                            stream,
                            self.state,
                            std::mem::take(&mut self.vrps),
                        ));
                    }
                    Err(e) => {
                        let err = ClientError::Pdu(PduError::Io(e.to_string()));
                        failures += 1;
                        if failures >= self.max_attempts {
                            return Err(err);
                        }
                        (self.sleep)(self.backoff.next_delay());
                        continue;
                    }
                }
            }
            let client = self.client.as_mut().expect("connected above");
            match client.sync() {
                Ok(outcome) => {
                    self.backoff.reset();
                    return Ok(outcome);
                }
                Err(err @ ClientError::Pdu(PduError::Io(_))) => {
                    // Connection died: salvage context, retry on a
                    // fresh connection with an incremental query.
                    self.disconnect();
                    failures += 1;
                    if failures >= self.max_attempts {
                        return Err(err);
                    }
                    (self.sleep)(self.backoff.next_delay());
                }
                Err(err @ ClientError::ProtocolViolation("session id changed mid-session")) => {
                    // The cache restarted under us; our incremental
                    // context is void. Start over from nothing.
                    self.client = None;
                    self.state = None;
                    self.vrps.clear();
                    failures += 1;
                    if failures >= self.max_attempts {
                        return Err(err);
                    }
                    (self.sleep)(self.backoff.next_delay());
                }
                Err(
                    err @ ClientError::CacheError {
                        code: ErrorCode::CorruptData,
                        ..
                    },
                ) if self.state().is_some() => {
                    // The cache rejected the session we presented
                    // (RFC 6810 answers a foreign session id with
                    // Corrupt Data): same story as an in-band session
                    // change.
                    self.client = None;
                    self.state = None;
                    self.vrps.clear();
                    failures += 1;
                    if failures >= self.max_attempts {
                        return Err(err);
                    }
                    (self.sleep)(self.backoff.next_delay());
                }
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
// Tests may panic freely; the `unwrap_used` deny targets the PDU codec.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::cache::CacheServer;
    use ripki_net::Asn;
    use std::os::unix::net::UnixStream;
    use std::sync::Arc;

    fn vrp(prefix: &str, ml: u8, asn: u32) -> VrpTriple {
        VrpTriple {
            prefix: prefix.parse().unwrap(),
            max_length: ml,
            asn: Asn::new(asn),
        }
    }

    /// Spin up a cache on one end of a socket pair.
    fn connect(cache: Arc<CacheServer>) -> (Client<UnixStream>, std::thread::JoinHandle<()>) {
        let (a, b) = UnixStream::pair().expect("socketpair");
        let handle = std::thread::spawn(move || {
            let _ = cache.serve_connection(b);
        });
        (Client::new(a), handle)
    }

    #[test]
    fn initial_reset_sync() {
        let cache = Arc::new(CacheServer::new(11));
        cache.update([vrp("10.0.0.0/16", 20, 100), vrp("2001:db8::/32", 32, 200)]);
        let (mut client, _h) = connect(cache.clone());
        let outcome = client.sync().unwrap();
        assert_eq!(
            outcome,
            SyncOutcome::Updated {
                serial: 1,
                announced: 2,
                withdrawn: 0
            }
        );
        assert_eq!(client.state(), Some((11, 1)));
        assert_eq!(client.vrps().len(), 2);
        let validator = client.to_validator();
        assert_eq!(
            validator.validate(&"10.0.0.0/18".parse().unwrap(), Asn::new(100)),
            ripki_bgp::rov::RpkiState::Valid
        );
    }

    #[test]
    fn incremental_sync_applies_delta() {
        let cache = Arc::new(CacheServer::new(11));
        cache.update([vrp("10.0.0.0/16", 16, 100)]);
        let (mut client, _h) = connect(cache.clone());
        client.sync().unwrap();

        cache.update([vrp("11.0.0.0/16", 16, 200)]); // withdraw 10/16, announce 11/16
        let outcome = client.sync().unwrap();
        assert_eq!(
            outcome,
            SyncOutcome::Updated {
                serial: 2,
                announced: 1,
                withdrawn: 1
            }
        );
        assert_eq!(client.vrps().len(), 1);
        assert!(client.vrps().contains(&vrp("11.0.0.0/16", 16, 200)));
    }

    #[test]
    fn noop_sync_when_current() {
        let cache = Arc::new(CacheServer::new(11));
        cache.update([vrp("10.0.0.0/16", 16, 100)]);
        let (mut client, _h) = connect(cache);
        client.sync().unwrap();
        let outcome = client.sync().unwrap();
        assert_eq!(
            outcome,
            SyncOutcome::Updated {
                serial: 1,
                announced: 0,
                withdrawn: 0
            }
        );
    }

    #[test]
    fn stale_client_recovers_via_cache_reset() {
        let cache = Arc::new(CacheServer::new(11).with_max_history(1));
        cache.update([vrp("10.0.0.0/16", 16, 100)]);
        let (mut client, _h) = connect(cache.clone());
        client.sync().unwrap();
        // Age the client's serial out of the history window.
        for i in 0..4 {
            cache.update([vrp(&format!("10.{i}.0.0/16"), 16, 100)]);
        }
        let outcome = client.sync().unwrap();
        match outcome {
            SyncOutcome::Updated {
                serial,
                announced,
                withdrawn,
            } => {
                assert_eq!(serial, 5);
                assert_eq!(announced, 1, "full reload of the current set");
                assert_eq!(withdrawn, 0);
            }
        }
        assert_eq!(client.vrps().len(), 1);
        assert!(client.vrps().contains(&vrp("10.3.0.0/16", 16, 100)));
    }

    #[test]
    fn empty_cache_error_is_reported() {
        let cache = Arc::new(CacheServer::new(11));
        let (mut client, _h) = connect(cache);
        match client.sync() {
            Err(ClientError::CacheError { code, .. }) => {
                assert_eq!(code, ErrorCode::NoDataAvailable);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn many_vrps_over_the_wire() {
        let cache = Arc::new(CacheServer::new(3));
        let vrps: Vec<VrpTriple> = (0..2000u32)
            .map(|i| vrp(&format!("10.{}.{}.0/24", i / 256, i % 256), 24, i))
            .collect();
        cache.update(vrps.clone());
        let (mut client, _h) = connect(cache);
        let outcome = client.sync().unwrap();
        assert_eq!(
            outcome,
            SyncOutcome::Updated {
                serial: 1,
                announced: 2000,
                withdrawn: 0
            }
        );
        assert_eq!(client.vrps().len(), 2000);
    }

    #[test]
    fn multiple_clients_share_one_cache() {
        let cache = Arc::new(CacheServer::new(5));
        cache.update([vrp("10.0.0.0/16", 16, 1)]);
        let (mut c1, _h1) = connect(cache.clone());
        let (mut c2, _h2) = connect(cache.clone());
        c1.sync().unwrap();
        c2.sync().unwrap();
        assert_eq!(c1.vrps(), c2.vrps());
    }

    /// The resume-after-serial-gap scenario: a dropped connection no
    /// longer loses the `(session_id, serial)` context. The salvaged
    /// state rides over to a fresh connection and the next sync is an
    /// incremental Serial Query covering exactly the missed serials.
    #[test]
    fn resume_after_serial_gap_is_incremental() {
        let cache = Arc::new(CacheServer::new(11));
        cache.update([vrp("10.0.0.0/16", 16, 1), vrp("11.0.0.0/16", 16, 2)]);
        let (mut client, _h) = connect(cache.clone());
        client.sync().unwrap();

        // Connection drops; the world moves on by two serials.
        let (state, vrps) = client.into_state();
        assert_eq!(state, Some((11, 1)));
        cache.update([
            vrp("10.0.0.0/16", 16, 1),
            vrp("11.0.0.0/16", 16, 2),
            vrp("12.0.0.0/16", 16, 3),
        ]);
        cache.update([
            vrp("10.0.0.0/16", 16, 1),
            vrp("12.0.0.0/16", 16, 3),
            vrp("13.0.0.0/16", 16, 4),
        ]);

        let (a, b) = UnixStream::pair().expect("socketpair");
        let cache2 = cache.clone();
        let _h2 = std::thread::spawn(move || {
            let _ = cache2.serve_connection(b);
        });
        let mut resumed = Client::resume(a, state, vrps);
        let outcome = resumed.sync().unwrap();
        // Only the gap's delta crosses the wire, not the full set.
        assert_eq!(
            outcome,
            SyncOutcome::Updated {
                serial: 3,
                announced: 2,
                withdrawn: 1
            }
        );
        assert_eq!(resumed.state(), Some((11, 3)));
        assert_eq!(resumed.vrps().len(), 3);
        assert_eq!(
            resumed.payload().unwrap(),
            cache.payload().unwrap(),
            "resumed set is byte-identical to the cache's"
        );
    }

    /// A transcript stream: reads come from a canned PDU script,
    /// writes vanish. Lets a test exercise server behaviors the real
    /// `CacheServer` never emits (e.g. a mid-response Cache Reset).
    struct Scripted(std::io::Cursor<Vec<u8>>);

    impl std::io::Read for Scripted {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.0.read(buf)
        }
    }

    impl std::io::Write for Scripted {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn cache_reset_mid_stream_discards_staged_records() {
        let good = vrp("11.0.0.0/16", 16, 2);
        let mut script = Vec::new();
        // First exchange: the cache starts answering, then bails with
        // a mid-stream Cache Reset. The staged 10/16 must NOT apply.
        script.extend(Pdu::CacheResponse { session_id: 7 }.encode());
        script.extend(
            Pdu::Ipv4Prefix {
                announce: true,
                prefix_len: 16,
                max_len: 16,
                prefix: "10.0.0.0".parse().unwrap(),
                asn: Asn::new(1),
            }
            .encode(),
        );
        script.extend(Pdu::CacheReset.encode());
        // Recovery exchange (the client's follow-up Reset Query).
        script.extend(Pdu::CacheResponse { session_id: 7 }.encode());
        script.extend(
            Pdu::Ipv4Prefix {
                announce: true,
                prefix_len: 16,
                max_len: 16,
                prefix: "11.0.0.0".parse().unwrap(),
                asn: Asn::new(2),
            }
            .encode(),
        );
        script.extend(
            Pdu::EndOfData {
                session_id: 7,
                serial: 5,
            }
            .encode(),
        );

        let mut client = Client::new(Scripted(std::io::Cursor::new(script)));
        let outcome = client.sync().unwrap();
        assert_eq!(
            outcome,
            SyncOutcome::Updated {
                serial: 5,
                announced: 1,
                withdrawn: 0
            }
        );
        assert_eq!(client.vrps().iter().copied().collect::<Vec<_>>(), [good]);
        assert_eq!(client.state(), Some((7, 5)));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let mut b = Backoff::new(Duration::from_millis(100), Duration::from_millis(400));
        assert_eq!(b.next_delay(), Duration::from_millis(100));
        assert_eq!(b.next_delay(), Duration::from_millis(200));
        assert_eq!(b.next_delay(), Duration::from_millis(400));
        assert_eq!(b.next_delay(), Duration::from_millis(400), "capped");
        b.reset();
        assert_eq!(b.next_delay(), Duration::from_millis(100));
    }

    type SharedEnds = Arc<std::sync::Mutex<Vec<UnixStream>>>;

    /// A connect factory over `cache`: each call makes a socketpair,
    /// serves the far end from a thread, and parks a clone of it in
    /// `ends` so the test can sever the connection server-side.
    fn factory(
        cache: Arc<CacheServer>,
        ends: SharedEnds,
        connects: Arc<std::sync::atomic::AtomicUsize>,
    ) -> impl FnMut() -> std::io::Result<UnixStream> {
        move || {
            connects.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            let (a, b) = UnixStream::pair()?;
            ends.lock().unwrap().push(b.try_clone()?);
            let cache = cache.clone();
            std::thread::spawn(move || {
                let _ = cache.serve_connection(b);
            });
            Ok(a)
        }
    }

    fn sever_newest(ends: &SharedEnds) {
        let end = ends.lock().unwrap().pop().expect("an open connection");
        end.shutdown(std::net::Shutdown::Both).expect("shutdown");
    }

    #[test]
    fn persistent_client_resumes_incrementally_after_drop() {
        let cache = Arc::new(CacheServer::new(11));
        cache.update([vrp("10.0.0.0/16", 16, 1), vrp("11.0.0.0/16", 16, 2)]);
        let ends: SharedEnds = Arc::default();
        let connects = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let mut pc = PersistentClient::new(factory(cache.clone(), ends.clone(), connects.clone()))
            .with_backoff(Backoff::new(Duration::ZERO, Duration::ZERO));
        let first = pc.sync().unwrap();
        assert_eq!(
            first,
            SyncOutcome::Updated {
                serial: 1,
                announced: 2,
                withdrawn: 0
            }
        );

        // The cache side drops the connection, then publishes serial 2.
        sever_newest(&ends);
        cache.update([
            vrp("10.0.0.0/16", 16, 1),
            vrp("11.0.0.0/16", 16, 2),
            vrp("12.0.0.0/16", 16, 3),
        ]);
        let second = pc.sync().unwrap();
        assert_eq!(
            second,
            SyncOutcome::Updated {
                serial: 2,
                announced: 1,
                withdrawn: 0
            },
            "resumed sync carries only the delta, not a refetch"
        );
        assert_eq!(pc.state(), Some((11, 2)));
        assert_eq!(pc.vrps().len(), 3);
        assert_eq!(connects.load(std::sync::atomic::Ordering::SeqCst), 2);
    }

    #[test]
    fn persistent_client_discards_context_on_cache_restart() {
        // The "cache" restarts between connections: a new session id
        // and a fresh serial space.
        let before = Arc::new(CacheServer::new(5));
        before.update([vrp("10.0.0.0/16", 16, 1)]);
        let after = Arc::new(CacheServer::new(9));
        after.update([vrp("12.0.0.0/16", 16, 3)]);

        let ends: SharedEnds = Arc::default();
        let connects = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let mut pc = {
            let (before, after) = (before.clone(), after.clone());
            let (ends, connects) = (ends.clone(), connects.clone());
            PersistentClient::new(move || {
                let n = connects.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                let cache = if n == 0 {
                    before.clone()
                } else {
                    after.clone()
                };
                let (a, b) = UnixStream::pair()?;
                ends.lock().unwrap().push(b.try_clone()?);
                std::thread::spawn(move || {
                    let _ = cache.serve_connection(b);
                });
                Ok(a)
            })
            .with_backoff(Backoff::new(Duration::ZERO, Duration::ZERO))
        };
        pc.sync().unwrap();
        assert_eq!(pc.state(), Some((5, 1)));

        sever_newest(&ends);
        let outcome = pc.sync().unwrap();
        // The restarted cache rejects session 5; the client discards
        // its context and resyncs from scratch against session 9.
        assert_eq!(
            outcome,
            SyncOutcome::Updated {
                serial: 1,
                announced: 1,
                withdrawn: 0
            }
        );
        assert_eq!(pc.state(), Some((9, 1)));
        assert_eq!(
            pc.vrps().iter().copied().collect::<Vec<_>>(),
            [vrp("12.0.0.0/16", 16, 3)]
        );
        assert_eq!(
            connects.load(std::sync::atomic::Ordering::SeqCst),
            3,
            "resume attempt plus the post-restart full resync"
        );
    }

    #[test]
    fn persistent_client_gives_up_after_max_attempts() {
        let attempts = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let counter = attempts.clone();
        let mut pc = PersistentClient::<UnixStream, _>::new(move || {
            counter.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionRefused,
                "refused",
            ))
        })
        .with_backoff(Backoff::new(Duration::ZERO, Duration::ZERO))
        .with_max_attempts(3);
        match pc.sync() {
            Err(ClientError::Pdu(PduError::Io(msg))) => assert!(msg.contains("refused")),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(attempts.load(std::sync::atomic::Ordering::SeqCst), 3);
    }
}
