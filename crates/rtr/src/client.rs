//! The router side of RTR: a synchronous client state machine.
//!
//! A router keeps `(session_id, serial)` plus the VRP set. Each
//! [`Client::sync`] either performs a Reset Query (first contact, or
//! after a Cache Reset) or a Serial Query, applies the announce/withdraw
//! records, and hands back a summary. The resulting VRP set plugs
//! straight into [`ripki_bgp::rov::RouteOriginValidator`].

use crate::pdu::{read_pdu, ErrorCode, Pdu, PduError};
use ripki_bgp::rov::{RouteOriginValidator, VrpTriple};
use ripki_net::{IpPrefix, Ipv4Prefix, Ipv6Prefix};
use std::collections::BTreeSet;
use std::fmt;
use std::io::{Read, Write};

/// Client-side failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Transport or decoding problem.
    Pdu(PduError),
    /// The cache sent an Error Report.
    CacheError {
        /// The reported code.
        code: ErrorCode,
        /// The reported diagnostic text.
        text: String,
    },
    /// The cache sent something that violates the protocol state machine.
    ProtocolViolation(&'static str),
    /// A withdraw for a VRP we do not hold (RFC 6810 §10 code 6).
    WithdrawalOfUnknown(VrpTriple),
    /// An announce for a VRP we already hold (RFC 6810 §10 code 7).
    DuplicateAnnouncement(VrpTriple),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Pdu(e) => write!(f, "{e}"),
            ClientError::CacheError { code, text } => {
                write!(f, "cache reported {code}: {text}")
            }
            ClientError::ProtocolViolation(what) => {
                write!(f, "protocol violation: {what}")
            }
            ClientError::WithdrawalOfUnknown(v) => {
                write!(f, "withdrawal of unknown record {v:?}")
            }
            ClientError::DuplicateAnnouncement(v) => {
                write!(f, "duplicate announcement {v:?}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<PduError> for ClientError {
    fn from(e: PduError) -> ClientError {
        ClientError::Pdu(e)
    }
}

/// What a sync accomplished.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyncOutcome {
    /// State updated to `serial`; counts of applied records.
    Updated {
        /// The serial now held.
        serial: u32,
        /// Announcements applied.
        announced: usize,
        /// Withdrawals applied.
        withdrawn: usize,
    },
}

/// An RTR client over any blocking byte stream.
pub struct Client<S: Read + Write> {
    stream: S,
    buf: Vec<u8>,
    /// `(session_id, serial)` once synchronized.
    state: Option<(u16, u32)>,
    vrps: BTreeSet<VrpTriple>,
    /// Latest serial announced by an unsolicited Serial Notify.
    notified_serial: Option<u32>,
}

fn pdu_vrp(
    announce: bool,
    prefix: IpPrefix,
    max_len: u8,
    asn: ripki_net::Asn,
) -> (bool, VrpTriple) {
    (
        announce,
        VrpTriple {
            prefix,
            max_length: max_len,
            asn,
        },
    )
}

impl<S: Read + Write> Client<S> {
    /// Wrap a connected stream.
    pub fn new(stream: S) -> Client<S> {
        Client {
            stream,
            buf: Vec::new(),
            state: None,
            vrps: BTreeSet::new(),
            notified_serial: None,
        }
    }

    /// The `(session_id, serial)` pair, once synchronized.
    pub fn state(&self) -> Option<(u16, u32)> {
        self.state
    }

    /// The VRPs currently held.
    pub fn vrps(&self) -> &BTreeSet<VrpTriple> {
        &self.vrps
    }

    /// The serial most recently announced by an unsolicited Serial
    /// Notify (RFC 6810 §5.2), if any arrived. A value newer than
    /// [`state`](Self::state)'s serial means a [`sync`](Self::sync) is
    /// due.
    pub fn notified_serial(&self) -> Option<u32> {
        self.notified_serial
    }

    /// Whether the cache has announced data newer than what we hold.
    pub fn needs_sync(&self) -> bool {
        match (self.notified_serial, self.state) {
            (Some(n), Some((_, held))) => n != held,
            (Some(_), None) => true,
            _ => false,
        }
    }

    /// Build an origin validator from the current VRP set.
    pub fn to_validator(&self) -> RouteOriginValidator {
        RouteOriginValidator::from_vrps(self.vrps.iter().copied())
    }

    /// Absorb unsolicited Serial Notifies sitting in the transport
    /// without issuing a query, returning the newest serial absorbed
    /// (`Ok(None)` when nothing was pending).
    ///
    /// The stream must have a read timeout (or be non-blocking), since
    /// a quiet cache otherwise blocks the read forever; a timed-out
    /// read is reported as "nothing pending". Anything other than a
    /// Serial Notify outside a query/response exchange is a protocol
    /// violation.
    pub fn poll_notify(&mut self) -> Result<Option<u32>, ClientError> {
        let mut latest = None;
        loop {
            match read_pdu(&mut self.stream, &mut self.buf) {
                Ok(Pdu::SerialNotify { serial, .. }) => {
                    self.notified_serial = Some(serial);
                    latest = Some(serial);
                }
                Ok(_) => {
                    return Err(ClientError::ProtocolViolation(
                        "unsolicited PDU other than Serial Notify",
                    ))
                }
                Err(PduError::Io(msg))
                    if msg.contains("timed out")
                        || msg.contains("WouldBlock")
                        || msg.contains("Resource temporarily unavailable") =>
                {
                    return Ok(latest);
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Synchronize with the cache: Serial Query when we have state,
    /// Reset Query otherwise; falls back to a Reset Query when the cache
    /// answers Cache Reset.
    pub fn sync(&mut self) -> Result<SyncOutcome, ClientError> {
        let query = match self.state {
            Some((session_id, serial)) => Pdu::SerialQuery { session_id, serial },
            None => Pdu::ResetQuery,
        };
        match self.exchange(&query)? {
            Some(outcome) => Ok(outcome),
            None => {
                // Cache Reset: drop state and start over.
                self.state = None;
                self.vrps.clear();
                match self.exchange(&Pdu::ResetQuery)? {
                    Some(outcome) => Ok(outcome),
                    None => Err(ClientError::ProtocolViolation(
                        "Cache Reset in response to Reset Query",
                    )),
                }
            }
        }
    }

    /// Send one query and apply the response. `Ok(None)` means the cache
    /// sent a Cache Reset.
    fn exchange(&mut self, query: &Pdu) -> Result<Option<SyncOutcome>, ClientError> {
        self.stream
            .write_all(&query.encode())
            .map_err(|e| PduError::Io(e.to_string()))?;
        self.stream
            .flush()
            .map_err(|e| PduError::Io(e.to_string()))?;

        // Unsolicited Serial Notifies may arrive at any time; absorb them.
        let first = loop {
            match read_pdu(&mut self.stream, &mut self.buf)? {
                Pdu::SerialNotify { serial, .. } => {
                    self.notified_serial = Some(serial);
                }
                other => break other,
            }
        };
        let session_id = match first {
            Pdu::CacheResponse { session_id } => session_id,
            Pdu::CacheReset => return Ok(None),
            Pdu::ErrorReport { code, text, .. } => {
                return Err(ClientError::CacheError { code, text })
            }
            _ => return Err(ClientError::ProtocolViolation("expected Cache Response")),
        };
        if let Some((held_session, _)) = self.state {
            if held_session != session_id {
                return Err(ClientError::ProtocolViolation(
                    "session id changed mid-session",
                ));
            }
        }

        let mut announced = 0usize;
        let mut withdrawn = 0usize;
        // Stage records; apply only when End of Data arrives intact.
        let mut staged: Vec<(bool, VrpTriple)> = Vec::new();
        let serial = loop {
            match read_pdu(&mut self.stream, &mut self.buf)? {
                Pdu::SerialNotify { serial, .. } => {
                    self.notified_serial = Some(serial);
                }
                Pdu::Ipv4Prefix {
                    announce,
                    prefix_len,
                    max_len,
                    prefix,
                    asn,
                } => {
                    let prefix = IpPrefix::V4(
                        Ipv4Prefix::new(prefix, prefix_len)
                            .map_err(|_| ClientError::ProtocolViolation("bad v4 prefix"))?,
                    );
                    staged.push(pdu_vrp(announce, prefix, max_len, asn));
                }
                Pdu::Ipv6Prefix {
                    announce,
                    prefix_len,
                    max_len,
                    prefix,
                    asn,
                } => {
                    let prefix = IpPrefix::V6(
                        Ipv6Prefix::new(prefix, prefix_len)
                            .map_err(|_| ClientError::ProtocolViolation("bad v6 prefix"))?,
                    );
                    staged.push(pdu_vrp(announce, prefix, max_len, asn));
                }
                Pdu::EndOfData {
                    serial,
                    session_id: eod_session,
                } => {
                    if eod_session != session_id {
                        return Err(ClientError::ProtocolViolation(
                            "End of Data session mismatch",
                        ));
                    }
                    break serial;
                }
                Pdu::ErrorReport { code, text, .. } => {
                    return Err(ClientError::CacheError { code, text })
                }
                _ => {
                    return Err(ClientError::ProtocolViolation(
                        "unexpected PDU inside response",
                    ))
                }
            }
        };
        for (announce, vrp) in staged {
            if announce {
                if !self.vrps.insert(vrp) {
                    return Err(ClientError::DuplicateAnnouncement(vrp));
                }
                announced += 1;
            } else {
                if !self.vrps.remove(&vrp) {
                    return Err(ClientError::WithdrawalOfUnknown(vrp));
                }
                withdrawn += 1;
            }
        }
        self.state = Some((session_id, serial));
        Ok(Some(SyncOutcome::Updated {
            serial,
            announced,
            withdrawn,
        }))
    }
}

#[cfg(test)]
// Tests may panic freely; the `unwrap_used` deny targets the PDU codec.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::cache::CacheServer;
    use ripki_net::Asn;
    use std::os::unix::net::UnixStream;
    use std::sync::Arc;

    fn vrp(prefix: &str, ml: u8, asn: u32) -> VrpTriple {
        VrpTriple {
            prefix: prefix.parse().unwrap(),
            max_length: ml,
            asn: Asn::new(asn),
        }
    }

    /// Spin up a cache on one end of a socket pair.
    fn connect(cache: Arc<CacheServer>) -> (Client<UnixStream>, std::thread::JoinHandle<()>) {
        let (a, b) = UnixStream::pair().expect("socketpair");
        let handle = std::thread::spawn(move || {
            let _ = cache.serve_connection(b);
        });
        (Client::new(a), handle)
    }

    #[test]
    fn initial_reset_sync() {
        let cache = Arc::new(CacheServer::new(11));
        cache.update([vrp("10.0.0.0/16", 20, 100), vrp("2001:db8::/32", 32, 200)]);
        let (mut client, _h) = connect(cache.clone());
        let outcome = client.sync().unwrap();
        assert_eq!(
            outcome,
            SyncOutcome::Updated {
                serial: 1,
                announced: 2,
                withdrawn: 0
            }
        );
        assert_eq!(client.state(), Some((11, 1)));
        assert_eq!(client.vrps().len(), 2);
        let validator = client.to_validator();
        assert_eq!(
            validator.validate(&"10.0.0.0/18".parse().unwrap(), Asn::new(100)),
            ripki_bgp::rov::RpkiState::Valid
        );
    }

    #[test]
    fn incremental_sync_applies_delta() {
        let cache = Arc::new(CacheServer::new(11));
        cache.update([vrp("10.0.0.0/16", 16, 100)]);
        let (mut client, _h) = connect(cache.clone());
        client.sync().unwrap();

        cache.update([vrp("11.0.0.0/16", 16, 200)]); // withdraw 10/16, announce 11/16
        let outcome = client.sync().unwrap();
        assert_eq!(
            outcome,
            SyncOutcome::Updated {
                serial: 2,
                announced: 1,
                withdrawn: 1
            }
        );
        assert_eq!(client.vrps().len(), 1);
        assert!(client.vrps().contains(&vrp("11.0.0.0/16", 16, 200)));
    }

    #[test]
    fn noop_sync_when_current() {
        let cache = Arc::new(CacheServer::new(11));
        cache.update([vrp("10.0.0.0/16", 16, 100)]);
        let (mut client, _h) = connect(cache);
        client.sync().unwrap();
        let outcome = client.sync().unwrap();
        assert_eq!(
            outcome,
            SyncOutcome::Updated {
                serial: 1,
                announced: 0,
                withdrawn: 0
            }
        );
    }

    #[test]
    fn stale_client_recovers_via_cache_reset() {
        let cache = Arc::new(CacheServer::new(11).with_max_history(1));
        cache.update([vrp("10.0.0.0/16", 16, 100)]);
        let (mut client, _h) = connect(cache.clone());
        client.sync().unwrap();
        // Age the client's serial out of the history window.
        for i in 0..4 {
            cache.update([vrp(&format!("10.{i}.0.0/16"), 16, 100)]);
        }
        let outcome = client.sync().unwrap();
        match outcome {
            SyncOutcome::Updated {
                serial,
                announced,
                withdrawn,
            } => {
                assert_eq!(serial, 5);
                assert_eq!(announced, 1, "full reload of the current set");
                assert_eq!(withdrawn, 0);
            }
        }
        assert_eq!(client.vrps().len(), 1);
        assert!(client.vrps().contains(&vrp("10.3.0.0/16", 16, 100)));
    }

    #[test]
    fn empty_cache_error_is_reported() {
        let cache = Arc::new(CacheServer::new(11));
        let (mut client, _h) = connect(cache);
        match client.sync() {
            Err(ClientError::CacheError { code, .. }) => {
                assert_eq!(code, ErrorCode::NoDataAvailable);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn many_vrps_over_the_wire() {
        let cache = Arc::new(CacheServer::new(3));
        let vrps: Vec<VrpTriple> = (0..2000u32)
            .map(|i| vrp(&format!("10.{}.{}.0/24", i / 256, i % 256), 24, i))
            .collect();
        cache.update(vrps.clone());
        let (mut client, _h) = connect(cache);
        let outcome = client.sync().unwrap();
        assert_eq!(
            outcome,
            SyncOutcome::Updated {
                serial: 1,
                announced: 2000,
                withdrawn: 0
            }
        );
        assert_eq!(client.vrps().len(), 2000);
    }

    #[test]
    fn multiple_clients_share_one_cache() {
        let cache = Arc::new(CacheServer::new(5));
        cache.update([vrp("10.0.0.0/16", 16, 1)]);
        let (mut c1, _h1) = connect(cache.clone());
        let (mut c2, _h2) = connect(cache.clone());
        c1.sync().unwrap();
        c2.sync().unwrap();
        assert_eq!(c1.vrps(), c2.vrps());
    }
}
